//! `hdc` — Human-Drone Communication in Collaborative Environments.
//!
//! A from-scratch Rust reproduction of *Conceptual Design of Human-Drone
//! Communication in Collaborative Environments* (Doran, Reif, Oehler, Stöhr,
//! Capone — ZHAW, DSN 2020): the marshalling-sign language, the SAX-based
//! recognition pipeline, the LED-ring and flight-pattern signalling, the
//! negotiation protocol, and the cherry-orchard use case, with every
//! substrate (geometry, rasterisation, time-series, drone simulation,
//! synthetic signaller) implemented in this workspace.
//!
//! This meta-crate re-exports the member crates under stable names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geometry`] | `hdc-geometry` | vectors, transforms, camera model |
//! | [`raster`] | `hdc-raster` | images, contours, morphology |
//! | [`timeseries`] | `hdc-timeseries` | z-norm, PAA, DTW |
//! | [`sax`] | `hdc-sax` | SAX words, MINDIST, template index |
//! | [`figure`] | `hdc-figure` | synthetic signaller rendering |
//! | [`vision`] | `hdc-vision` | the recognition pipeline + baselines |
//! | [`drone`] | `hdc-drone` | drone sim, flight patterns, LED ring |
//! | [`core`] | `hdc-core` | the language, protocol, sessions |
//! | [`orchard`] | `hdc-orchard` | the orchard mission simulation |
//!
//! # Quickstart
//!
//! ```
//! use hdc::figure::{render_sign, MarshallingSign, ViewSpec};
//! use hdc::vision::{PipelineConfig, RecognitionPipeline};
//!
//! // calibrate from the canonical full-on views (the paper's protocol)
//! let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
//! pipeline.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
//!
//! // a worker shows "No" from 15° off-axis
//! let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(15.0, 5.0, 3.0));
//! let result = pipeline.recognize(&frame);
//! assert_eq!(result.decision.as_deref(), Some("No"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hdc_core as core;
pub use hdc_drone as drone;
pub use hdc_figure as figure;
pub use hdc_geometry as geometry;
pub use hdc_orchard as orchard;
pub use hdc_raster as raster;
pub use hdc_sax as sax;
pub use hdc_timeseries as timeseries;
pub use hdc_vision as vision;
