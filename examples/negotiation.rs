//! The Figure 3 scenario, end to end: a drone needs the space a worker
//! occupies. It approaches, pokes, waits for the attention sign, flies a
//! rectangle to request the area, and acts on the recognised Yes/No — with
//! every camera frame actually rendered and recognised.
//!
//! Run with: `cargo run --release --example negotiation`

use hdc::core::{CollaborationSession, Role, SessionConfig};

fn main() {
    for (title, role, consents, seed) in [
        ("worker who consents", Role::Worker, true, 42),
        ("worker who refuses", Role::Worker, false, 43),
        ("untrained visitor", Role::Visitor, true, 44),
    ] {
        println!("=== negotiation with a {title} ===");
        let config = SessionConfig::for_role(role, consents, seed);
        let report = CollaborationSession::new(config).run_report();
        println!("{}", report.log);
        println!(
            "outcome: {} after {:.1} s ({} frames, {} recognised)\n",
            report.outcome, report.duration_s, report.frames_processed, report.frames_recognized
        );
    }
}
