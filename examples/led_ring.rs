//! The all-round LED ring of Figure 1: navigation colours an observer sees
//! from different bearings, the all-red danger mode, and the discarded
//! vertical take-off/landing array with its confusion problem.
//!
//! Run with: `cargo run --release --example led_ring`

use hdc::drone::{LedMode, LedRing, VerticalAnimation, VerticalArray};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("=== navigation ring (drone heading east) ===");
    let ring = LedRing::new(LedMode::Navigation);
    println!(
        "body-frame snapshot (from nose, clockwise): {}",
        ring.snapshot()
    );
    println!("\nobserver bearing → colour seen:");
    for bearing_deg in (0..360).step_by(45) {
        let bearing = (bearing_deg as f64).to_radians();
        let color = ring.color_toward(0.0, bearing);
        println!("  {bearing_deg:>3}°  {color}");
    }

    println!("\n=== danger mode (safety function triggered) ===");
    let danger = LedRing::new(LedMode::Danger);
    println!("snapshot: {}", danger.snapshot());
    println!(
        "default mode is danger (fail-safe): {:?}",
        LedRing::default().mode()
    );

    println!("\n=== the discarded vertical array ===");
    let up = VerticalArray::new(VerticalAnimation::TakeOff);
    println!("take-off sweep over one period:");
    for step in 0..5 {
        let t = step as f64 * 0.2;
        let frame = up.frame(t);
        let bar: String = frame.iter().map(|on| if *on { '#' } else { '.' }).collect();
        println!("  t={t:.1}s  [{bar}]  (bottom→top)");
    }

    println!("\nobserver accuracy vs observation noise (why it was discarded):");
    println!("{:>12} {:>12}", "flip prob", "accuracy");
    let mut rng = SmallRng::seed_from_u64(1);
    for flip in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let trials = 400;
        let correct = (0..trials)
            .filter(|_| {
                up.observe_direction(3, 0.45, flip, &mut rng) == Some(VerticalAnimation::TakeOff)
            })
            .count();
        println!(
            "{:>12.1} {:>11.0}%",
            flip,
            100.0 * correct as f64 / trials as f64
        );
    }
}
