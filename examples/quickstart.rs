//! Quickstart: recognise a marshalling sign from a rendered drone-camera
//! frame, exactly as the paper's Figure 4 setup (altitude 5 m, horizontal
//! distance 3 m).
//!
//! Run with: `cargo run --release --example quickstart`

use hdc::figure::{render_sign, MarshallingSign, ViewSpec};
use hdc::raster::threshold::binarize;
use hdc::raster::{io::ascii_art, largest_component, Connectivity};
use hdc::vision::{PipelineConfig, RecognitionPipeline};

fn main() {
    // 1. Calibrate the pipeline from the canonical 0°-azimuth views.
    let canonical = ViewSpec::paper_default(0.0, 5.0, 3.0);
    let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
    pipeline.calibrate_from_views(&canonical);
    println!(
        "calibrated: {} templates, acceptance threshold {:.2}\n",
        pipeline.template_count(),
        pipeline.config().accept_threshold
    );

    // 2. Render each sign as the drone camera would see it and recognise it.
    for sign in MarshallingSign::ALL {
        let frame = render_sign(sign, &canonical);
        let result = pipeline.recognize(&frame);
        println!(
            "shown: {:<16} recognised: {:<16} distance {:>6.3}   [{}]",
            sign.label(),
            result.decision.as_deref().unwrap_or("(rejected)"),
            result.best.as_ref().map(|m| m.distance).unwrap_or(f64::NAN),
            result.timings
        );
        if let Some(word) = &result.word {
            println!("  SAX word: {word}");
        }
    }

    // 3. Show one silhouette as ASCII art (downsampled) for the curious.
    let frame = render_sign(MarshallingSign::No, &canonical);
    let mask = binarize(&frame, 128);
    let (blob, comp) = largest_component(&mask, Connectivity::Eight).expect("figure visible");
    println!(
        "\n'No' silhouette ({} px, bbox {:?}):",
        comp.area, comp.bbox
    );
    // crop + downsample by 4 for the terminal
    let mut small = hdc::raster::Bitmap::new((comp.width() / 4).max(1), (comp.height() / 4).max(1));
    for y in 0..small.height() {
        for x in 0..small.width() {
            let sx = comp.bbox.0 + x * 4;
            let sy = comp.bbox.1 + y * 4;
            small.set(x, y, blob.get(sx, sy) == Some(true));
        }
    }
    println!("{}", ascii_art(&small));
}
