//! Dynamic marshalling signals (the paper's future work): a worker waves the
//! drone off mid-negotiation. The temporal recogniser reads the oscillation
//! and the protocol treats it as an emphatic "no, go away" from any state.
//!
//! Run with: `cargo run --release --example wave_off`

use hdc::core::{
    CollaborationSession, HumanScript, NegotiationConfig, NegotiationMachine, NegotiationState,
    Role, SessionConfig, SessionOutcome,
};
use hdc::figure::{render_pose, MarshallingSign, Pose, ViewSpec};
use hdc::raster::threshold::binarize;
use hdc::vision::dynamic::{DynamicConfig, DynamicDecision, DynamicRecognizer};

fn main() {
    let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
    let mut recognizer = DynamicRecognizer::new(DynamicConfig::default());

    println!("phase 1: the worker holds the static 'AttentionGained' sign");
    for i in 0..20 {
        let t = i as f64 * 0.1;
        let frame = render_pose(Pose::for_sign(MarshallingSign::AttentionGained), &view);
        recognizer.push(t, &binarize(&frame, 128));
    }
    println!("  window decision: {:?}\n", recognizer.decision());

    println!("phase 2: the worker starts waving the drone off (1 Hz)");
    recognizer.reset();
    let mut detected_at = None;
    for i in 0..30 {
        let t = i as f64 * 0.1;
        let frame = render_pose(Pose::wave_off_phase(t), &view);
        recognizer.push(t, &binarize(&frame, 128));
        if detected_at.is_none() && recognizer.decision() == DynamicDecision::WaveOff {
            detected_at = Some(t);
        }
    }
    match detected_at {
        Some(t) => println!("  wave-off detected after {t:.1} s of waving\n"),
        None => println!("  wave-off NOT detected\n"),
    }

    println!("phase 3: the protocol reacts");
    let mut machine = NegotiationMachine::new(NegotiationConfig::default());
    machine.start(0.0);
    machine.on_arrived(2.0);
    machine.on_pattern_complete(4.0);
    println!("  state before wave-off: {}", machine.state());
    let actions = machine.on_wave_off(5.0);
    println!("  wave-off actions     : {actions:?}");
    println!("  state after wave-off : {}", machine.state());
    assert_eq!(machine.state(), NegotiationState::Denied);

    println!("\nphase 4: the full closed loop, scripted so any seed works");
    // A scripted human waves the drone off with fixed latency and perfect
    // facing — no RNG in the behaviour, so the outcome is seed-independent.
    for seed in [0, 42, 0xDEAD_BEEF] {
        let config =
            SessionConfig::for_role(Role::Worker, false, seed).with_script(HumanScript::wave_off());
        let report = CollaborationSession::new(config).run_report();
        println!(
            "  seed {seed:>10}: outcome {} after {:.1} s ({} frames)",
            report.outcome, report.duration_s, report.frames_processed
        );
        assert_eq!(report.outcome, SessionOutcome::Denied);
    }
    println!("  the wave-off denies the request on every seed");
}
