//! A day in the orchard: the drone tours every fly trap in a cherry
//! plantation shared with supervisors, workers and visitors, negotiating
//! access whenever a person blocks a trap.
//!
//! Run with: `cargo run --release --example orchard_mission`

use hdc::orchard::{Mission, MissionConfig, OrchardMap};

fn main() {
    println!("=== empty orchard (baseline) ===");
    let map = OrchardMap::grid(4, 6, 4.0, 3.0);
    let config = MissionConfig {
        human_count: 0,
        ..Default::default()
    };
    let stats = Mission::new(config, map, 1).run();
    println!("{stats}\n");

    println!("=== busy orchard: 5 people about ===");
    let map = OrchardMap::grid(4, 6, 4.0, 3.0);
    let config = MissionConfig {
        human_count: 5,
        blocking_radius_m: 4.0,
        ..Default::default()
    };
    let stats = Mission::new(config, map, 2).run();
    println!("{stats}\n");

    println!("=== crowded orchard sweep: negotiation load vs people ===");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "people", "traps read", "skipped", "negotiations", "grant rate"
    );
    for people in [0u32, 2, 4, 8, 12] {
        let map = OrchardMap::grid(4, 6, 4.0, 3.0);
        let config = MissionConfig {
            human_count: people,
            blocking_radius_m: 4.0,
            ..Default::default()
        };
        let stats = Mission::new(config, map, 100 + people as u64).run();
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>11.0}%",
            people,
            stats.traps_read,
            stats.traps_skipped,
            stats.negotiations.total(),
            stats.negotiations.grant_rate() * 100.0
        );
    }
}
