//! The dead-angle experiment (paper §IV): sweep the relative azimuth and
//! watch recognition of the "No" sign degrade, then estimate the dead angle.
//!
//! Run with: `cargo run --release --example azimuth_sweep`

use hdc::figure::{render_sign, MarshallingSign, ViewSpec};
use hdc::vision::{PipelineConfig, RecognitionPipeline};

fn main() {
    let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
    pipeline.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));

    println!("sign: No | altitude 5 m | distance 3 m | canonical reference at 0°\n");
    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>10}",
        "azimuth", "distance", "lower bd", "decision", "SAX word"
    );

    let mut last_reliable = 0.0f64;
    for az in (0..=90).step_by(5) {
        let view = ViewSpec::paper_default(az as f64, 5.0, 3.0);
        let frame = render_sign(MarshallingSign::No, &view);
        let result = pipeline.recognize(&frame);
        let best = result.best.as_ref();
        let decision = result.decision.as_deref().unwrap_or("-");
        if decision == "No" {
            last_reliable = az as f64;
        }
        println!(
            "{:>7}° {:>10.3} {:>10.3} {:>14} {:>10}",
            az,
            best.map(|m| m.distance).unwrap_or(f64::NAN),
            best.map(|m| m.lower_bound).unwrap_or(f64::NAN),
            decision,
            result.word.map(|w| w.to_string()).unwrap_or_default(),
        );
    }

    // the silhouette is front/back symmetric, so the recognisable arcs are
    // ±critical around 0° and 180°; the rest is dead
    let dead = 360.0 - 4.0 * last_reliable;
    println!("\ncritical azimuth : {last_reliable:.0}° (paper: 65°)");
    println!("dead angle        : {dead:.0}° of the full circle (paper: ~100°)");
    println!("\nThe paper also notes the SAX string in the dead zone does not hint at");
    println!("which way the drone should fly to recover — the words above go erratic");
    println!("rather than drifting monotonically.");
}
