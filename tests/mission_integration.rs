//! Orchard-level integration: missions with the statistical and the full
//! closed-loop negotiation backends.

use hdc::core::{Role, SessionOutcome};
use hdc::geometry::Vec2;
use hdc::orchard::{
    FullLoopNegotiation, HumanActor, Mission, MissionConfig, NegotiationBackend, OrchardMap,
    StatisticalNegotiation,
};

#[test]
fn full_loop_backend_grants_to_a_consenting_supervisor() {
    let mut backend = FullLoopNegotiation;
    let mut actor = HumanActor::new(0, Role::Supervisor, Vec2::new(5.0, 5.0));
    actor.will_consent = true;
    let outcome = backend.negotiate(&actor, 3);
    assert_eq!(outcome, SessionOutcome::Granted);
}

#[test]
fn full_loop_backend_respects_refusal() {
    let mut backend = FullLoopNegotiation;
    let mut actor = HumanActor::new(0, Role::Supervisor, Vec2::new(5.0, 5.0));
    actor.will_consent = false;
    let outcome = backend.negotiate(&actor, 4);
    assert_eq!(outcome, SessionOutcome::Denied);
}

#[test]
fn statistical_backend_matches_full_loop_for_supervisors() {
    // the fast statistical model should agree with the closed loop on the
    // easiest population (supervisors): near-certain resolution
    let mut stat = StatisticalNegotiation;
    let mut grants = 0;
    let n = 50;
    for seed in 0..n {
        let mut actor = HumanActor::new(0, Role::Supervisor, Vec2::ZERO);
        actor.will_consent = true;
        if stat.negotiate(&actor, seed) == SessionOutcome::Granted {
            grants += 1;
        }
    }
    assert!(
        grants as f64 / n as f64 > 0.9,
        "statistical grant rate {grants}/{n}"
    );
}

#[test]
fn mission_with_full_loop_backend_completes() {
    // a tiny orchard with one stationary worker standing on a trap
    let map = OrchardMap::grid(1, 2, 4.0, 6.0);
    // we inject our own blocker through the backend
    let cfg = MissionConfig {
        human_count: 0,
        ..Default::default()
    };
    let mut mission = Mission::with_backend(cfg, map, 5, Box::new(FullLoopNegotiation));
    let stats = mission.run();
    assert_eq!(stats.traps_read, 2);
}

#[test]
fn crowding_monotonically_increases_negotiation_load() {
    let run = |people: u32| {
        let map = OrchardMap::grid(3, 4, 4.0, 3.0);
        let cfg = MissionConfig {
            human_count: people,
            blocking_radius_m: 4.0,
            ..Default::default()
        };
        Mission::new(cfg, map, 17).run()
    };
    let quiet = run(0);
    let busy = run(10);
    assert_eq!(quiet.negotiations.total(), 0);
    assert!(busy.negotiations.total() > 0);
    assert!(busy.traps_read <= quiet.traps_read);
}

#[test]
fn every_trap_is_accounted_for() {
    for people in [0u32, 3, 7] {
        let map = OrchardMap::grid(3, 3, 4.0, 3.0);
        let cfg = MissionConfig {
            human_count: people,
            ..Default::default()
        };
        let stats = Mission::new(cfg, map, 23).run();
        assert_eq!(
            stats.traps_read + stats.traps_skipped,
            9,
            "people={people}: every trap is read or consciously skipped"
        );
    }
}
