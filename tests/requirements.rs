//! Requirement traceability: one integration check per derived requirement
//! (R1–R10 in `hdc_core::REQUIREMENTS`).

use hdc::core::{
    NegotiationConfig, NegotiationMachine, ProtocolAction, RequirementId, REQUIREMENTS,
};
use hdc::drone::{
    Drone, DroneConfig, DroneEvent, FlightPattern, LedColor, LedMode, LedRing, VerticalAnimation,
    VerticalArray,
};
use hdc::figure::{render_sign, MarshallingSign, ViewSpec};
use hdc::vision::{FrameBudget, PipelineConfig, RecognitionPipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn registry_is_complete() {
    assert_eq!(REQUIREMENTS.len(), 10);
    for (i, r) in REQUIREMENTS.iter().enumerate() {
        assert_eq!(r.id, RequirementId(i as u8 + 1));
    }
}

#[test]
fn r1_direction_readable_from_lights() {
    // flying east vs west flips the colour a fixed observer sees
    let ring = LedRing::new(LedMode::Navigation);
    let north_observer = std::f64::consts::FRAC_PI_2;
    let east = ring.color_toward(0.0, north_observer);
    let west = ring.color_toward(std::f64::consts::PI, north_observer);
    assert_eq!(east, LedColor::Red);
    assert_eq!(west, LedColor::Green);
}

#[test]
fn r2_danger_is_default_and_forced_on_trigger() {
    assert_eq!(LedRing::default().mode(), LedMode::Danger);
    let mut drone = Drone::new(DroneConfig::default());
    drone.execute_pattern(FlightPattern::TakeOff {
        target_altitude: 4.0,
    });
    while drone.is_executing() {
        drone.tick(0.05);
    }
    drone.trigger_safety("test");
    assert_eq!(drone.ring().mode(), LedMode::Danger);
}

#[test]
fn r3_no_request_before_attention() {
    let mut m = NegotiationMachine::new(NegotiationConfig::default());
    m.start(0.0);
    m.on_arrived(1.0);
    m.on_pattern_complete(2.0);
    // a premature Yes must not produce the rectangle or entry
    let actions = m.on_sign(Some(MarshallingSign::Yes), 3.0);
    assert!(actions.is_empty());
}

#[test]
fn r4_entry_requires_yes() {
    let mut m = NegotiationMachine::new(NegotiationConfig::default());
    m.start(0.0);
    m.on_arrived(1.0);
    m.on_pattern_complete(2.0);
    m.on_sign(Some(MarshallingSign::AttentionGained), 3.0);
    m.on_pattern_complete(4.0);
    let no_actions = m.on_sign(Some(MarshallingSign::No), 5.0);
    assert!(!no_actions.contains(&ProtocolAction::EnterArea));
    assert!(no_actions.contains(&ProtocolAction::Retreat));
}

#[test]
fn r5_lights_out_only_after_rotors_stop() {
    let mut drone = Drone::new(DroneConfig::default());
    drone.execute_pattern(FlightPattern::TakeOff {
        target_altitude: 3.0,
    });
    while drone.is_executing() {
        drone.tick(0.05);
    }
    drone.drain_events();
    drone.execute_pattern(FlightPattern::Landing);
    while drone.is_executing() {
        drone.tick(0.05);
    }
    let events = drone.drain_events();
    let rotors = events
        .iter()
        .position(|e| *e == DroneEvent::RotorsStopped)
        .unwrap();
    let lights = events
        .iter()
        .position(|e| *e == DroneEvent::LightsOut)
        .unwrap();
    assert!(rotors < lights);
}

#[test]
fn r6_minimum_sign_set_is_three_unique_signs() {
    assert_eq!(MarshallingSign::ALL.len(), 3);
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    let words: Vec<String> = p
        .index()
        .templates()
        .iter()
        .map(|t| t.word.to_string())
        .collect();
    let mut unique = words.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), 3, "words: {words:?}");
}

#[test]
fn r7_denial_leads_to_retreat() {
    let mut m = NegotiationMachine::new(NegotiationConfig::default());
    m.start(0.0);
    m.on_arrived(1.0);
    m.on_pattern_complete(2.0);
    m.on_sign(Some(MarshallingSign::AttentionGained), 3.0);
    m.on_pattern_complete(4.0);
    let actions = m.on_sign(Some(MarshallingSign::No), 5.0);
    assert!(actions.contains(&ProtocolAction::Retreat));
}

#[test]
fn r8_realtime_budget_met() {
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
    // median of a few runs to dodge scheduler noise; debug builds are slower,
    // so measure against the 30 fps budget with generous headroom in release
    // and a 3 fps sanity floor in debug
    let mut totals: Vec<u64> = (0..9)
        .map(|_| p.recognize(&frame).timings.total_us())
        .collect();
    totals.sort_unstable();
    let median = totals[4];
    let budget = if cfg!(debug_assertions) {
        FrameBudget::from_fps(3.0)
    } else {
        FrameBudget::thirty_fps()
    };
    assert!(
        budget.budget_us() >= median,
        "median {median} µs exceeds budget {} µs",
        budget.budget_us()
    );
}

#[test]
fn r9_ambiguous_views_rejected_not_guessed() {
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    // near the side view all signs collapse; the pipeline must reject, not pick
    for sign in MarshallingSign::ALL {
        let frame = render_sign(sign, &ViewSpec::paper_default(80.0, 5.0, 3.0));
        assert_eq!(p.recognize(&frame).decision, None, "{sign} at 80°");
    }
}

#[test]
fn r10_vertical_array_unreliable_under_noise() {
    let mut rng = SmallRng::seed_from_u64(10);
    let arr = VerticalArray::new(VerticalAnimation::Landing);
    let trials = 200;
    let correct = (0..trials)
        .filter(|_| {
            arr.observe_direction(3, 0.45, 0.3, &mut rng) == Some(VerticalAnimation::Landing)
        })
        .count();
    assert!(
        (correct as f64) < 0.7 * trials as f64,
        "the discarded array must not be reliable: {correct}/{trials}"
    );
}
