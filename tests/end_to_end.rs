//! Cross-crate integration: render → segment → signature → SAX → decision,
//! exercised through the public `hdc` facade.

use hdc::figure::{render_pose, render_sign, MarshallingSign, Pose, ViewSpec};
use hdc::raster::noise;
use hdc::vision::{PipelineConfig, RecognitionPipeline, SegmentationMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn calibrated() -> RecognitionPipeline {
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    p
}

#[test]
fn all_signs_recognised_through_the_facade() {
    let p = calibrated();
    for sign in MarshallingSign::ALL {
        let frame = render_sign(sign, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        assert_eq!(p.recognize(&frame).decision.as_deref(), Some(sign.label()));
    }
}

#[test]
fn recognition_is_deterministic() {
    let p = calibrated();
    let frame = render_sign(
        MarshallingSign::Yes,
        &ViewSpec::paper_default(10.0, 4.0, 3.0),
    );
    let a = p.recognize(&frame);
    let b = p.recognize(&frame);
    assert_eq!(a.decision, b.decision);
    assert_eq!(a.word, b.word);
    let (da, db) = (a.best.unwrap().distance, b.best.unwrap().distance);
    assert_eq!(da, db);
}

#[test]
fn recognition_survives_moderate_sensor_noise() {
    let p = calibrated();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut ok = 0;
    let trials = 15;
    for _ in 0..trials {
        let mut frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(5.0, 5.0, 3.0));
        noise::add_gaussian(&mut frame, 10.0, &mut rng);
        if p.recognize(&frame).decision.as_deref() == Some("No") {
            ok += 1;
        }
    }
    assert!(ok >= trials - 1, "noise robustness: {ok}/{trials}");
}

#[test]
fn image_plane_rotation_is_free_for_the_signature() {
    // rotate the camera frame by 90° (drone banking): the contour signature
    // is rotation invariant via circular-shift matching, so the decision holds
    let p = calibrated();
    let frame = render_sign(
        MarshallingSign::Yes,
        &ViewSpec::paper_default(0.0, 5.0, 3.0),
    );
    // rotate the image 90°
    let mut rotated = hdc::raster::GrayImage::new(frame.height(), frame.width());
    for (x, y, v) in frame.iter() {
        rotated.set(frame.height() - 1 - y, x, v);
    }
    let r = p.recognize(&rotated);
    assert_eq!(
        r.decision.as_deref(),
        Some("Yes"),
        "90°-rolled frame must still match (distance {:?})",
        r.best.map(|m| m.distance)
    );
}

#[test]
fn distractor_poses_do_not_false_accept_as_yes() {
    // waving may read as "No" (fails safe); nothing may read as "Yes"
    let p = calibrated();
    for (name, pose) in [
        ("neutral", Pose::neutral()),
        ("waving", Pose::waving()),
        ("akimbo", Pose::akimbo()),
    ] {
        let frame = render_pose(pose, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let d = p.recognize(&frame).decision;
        assert_ne!(d.as_deref(), Some("Yes"), "{name} must never grant access");
    }
}

#[test]
fn otsu_and_fixed_threshold_agree_on_clean_frames() {
    let mut fixed = RecognitionPipeline::new(PipelineConfig::default());
    fixed.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    let cfg = PipelineConfig {
        segmentation: SegmentationMode::Otsu,
        ..Default::default()
    };
    let mut otsu = RecognitionPipeline::new(cfg);
    otsu.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    for sign in MarshallingSign::ALL {
        let frame = render_sign(sign, &ViewSpec::paper_default(10.0, 4.5, 3.0));
        assert_eq!(
            fixed.recognize(&frame).decision,
            otsu.recognize(&frame).decision,
            "{sign}"
        );
    }
}

#[test]
fn pipeline_handles_pathological_frames() {
    let p = calibrated();
    // all black
    let black = hdc::raster::GrayImage::new(640, 480);
    assert!(p.recognize(&black).decision.is_none());
    // all white (one giant blob, no interior structure)
    let white = hdc::raster::GrayImage::filled(640, 480, 255);
    assert!(p.recognize(&white).decision.is_none());
    // random noise
    let mut rng = SmallRng::seed_from_u64(2);
    let mut noisy = hdc::raster::GrayImage::new(640, 480);
    noise::add_salt_pepper(&mut noisy, 0.5, &mut rng);
    let r = p.recognize(&noisy);
    assert!(
        r.decision.is_none(),
        "pure noise must be rejected: {:?}",
        r.decision
    );
}

#[test]
fn two_people_in_frame_dominant_one_wins() {
    use hdc::figure::{paint_signaller, Signaller};
    use hdc::geometry::Vec2;
    let p = calibrated();
    let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
    let cam = view.camera();
    let mut frame = hdc::raster::GrayImage::new(view.width, view.height);
    // the near signaller shows Yes; a distant bystander stands neutral
    let near = view.signaller(Pose::for_sign(MarshallingSign::Yes));
    let far = Signaller::new(
        Vec2::new(2.0, 6.0),
        std::f64::consts::FRAC_PI_2,
        Pose::neutral(),
    );
    paint_signaller(&far, &cam, &mut frame);
    paint_signaller(&near, &cam, &mut frame);
    let r = p.recognize(&frame);
    assert_eq!(
        r.decision.as_deref(),
        Some("Yes"),
        "largest blob is the negotiating partner"
    );
}
