//! Property-based tests of the negotiation protocol: for *any* interleaving
//! of events, the safety-critical invariants hold.

use hdc::core::{NegotiationConfig, NegotiationMachine, ProtocolAction, SessionOutcome};
use hdc::figure::MarshallingSign;
use proptest::prelude::*;

/// An abstract protocol stimulus.
#[derive(Debug, Clone, Copy)]
enum Stimulus {
    Arrived,
    PatternComplete,
    Sign(Option<MarshallingSign>),
    Clock(f64),
    Safety,
}

fn stimulus() -> impl Strategy<Value = Stimulus> {
    prop_oneof![
        2 => Just(Stimulus::Arrived),
        4 => Just(Stimulus::PatternComplete),
        2 => Just(Stimulus::Sign(Some(MarshallingSign::AttentionGained))),
        2 => Just(Stimulus::Sign(Some(MarshallingSign::Yes))),
        2 => Just(Stimulus::Sign(Some(MarshallingSign::No))),
        2 => Just(Stimulus::Sign(None)),
        3 => (0.1f64..20.0).prop_map(Stimulus::Clock),
        1 => Just(Stimulus::Safety),
    ]
}

/// Replays a stimulus sequence, collecting every action with the machine
/// state *at the moment the action was emitted*.
fn replay(seq: &[Stimulus]) -> (NegotiationMachine, Vec<(f64, ProtocolAction, bool)>) {
    let mut m = NegotiationMachine::new(NegotiationConfig::default());
    let mut now = 0.0;
    let mut actions = Vec::new();
    let mut yes_seen = false;
    let record = |now: f64,
                  acts: Vec<ProtocolAction>,
                  yes_seen: bool,
                  out: &mut Vec<(f64, ProtocolAction, bool)>| {
        for a in acts {
            out.push((now, a, yes_seen));
        }
    };
    record(now, m.start(now), yes_seen, &mut actions);
    for s in seq {
        now += 0.1;
        match s {
            Stimulus::Arrived => record(now, m.on_arrived(now), yes_seen, &mut actions),
            Stimulus::PatternComplete => {
                record(now, m.on_pattern_complete(now), yes_seen, &mut actions)
            }
            Stimulus::Sign(sign) => {
                // note Yes *before* recording, so an EnterArea caused by this
                // very sign counts as justified
                if *sign == Some(MarshallingSign::Yes) {
                    // only counts when the machine is actually listening
                    if m.state() == hdc::core::NegotiationState::AwaitingAnswer {
                        yes_seen = true;
                    }
                }
                record(now, m.on_sign(*sign, now), yes_seen, &mut actions);
            }
            Stimulus::Clock(dt) => {
                now += dt;
                record(now, m.poll(now), yes_seen, &mut actions);
            }
            Stimulus::Safety => record(now, m.on_safety(now), yes_seen, &mut actions),
        }
    }
    (m, actions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn never_enters_without_a_listened_yes(seq in prop::collection::vec(stimulus(), 0..60)) {
        let (_, actions) = replay(&seq);
        for (t, action, yes_seen) in &actions {
            if *action == ProtocolAction::EnterArea {
                prop_assert!(yes_seen, "EnterArea at t={t} without a Yes while awaiting answer");
            }
        }
    }

    #[test]
    fn safety_always_terminal_and_lands(seq in prop::collection::vec(stimulus(), 0..60)) {
        let (m, actions) = replay(&seq);
        let safety_fired = seq.iter().any(|s| matches!(s, Stimulus::Safety));
        if safety_fired {
            // after a safety stimulus the machine is terminal...
            prop_assert!(m.state().is_terminal());
            // ...and if the machine was still live when it fired, it landed
            let landed = actions.iter().any(|(_, a, _)| *a == ProtocolAction::DangerLand);
            let was_terminal_before = {
                // replay without the tail after the first safety to see the state then
                let first_safety = seq.iter().position(|s| matches!(s, Stimulus::Safety)).unwrap();
                let (m2, _) = replay(&seq[..first_safety]);
                m2.state().is_terminal()
            };
            prop_assert!(landed || was_terminal_before);
        }
    }

    #[test]
    fn terminal_states_are_absorbing(seq in prop::collection::vec(stimulus(), 0..80)) {
        let mut m = NegotiationMachine::new(NegotiationConfig::default());
        let mut now = 0.0;
        m.start(now);
        let mut terminal_since: Option<usize> = None;
        for (i, s) in seq.iter().enumerate() {
            now += 0.2;
            let actions = match s {
                Stimulus::Arrived => m.on_arrived(now),
                Stimulus::PatternComplete => m.on_pattern_complete(now),
                Stimulus::Sign(sign) => m.on_sign(*sign, now),
                Stimulus::Clock(dt) => {
                    now += dt;
                    m.poll(now)
                }
                Stimulus::Safety => m.on_safety(now),
            };
            if let Some(since) = terminal_since {
                prop_assert!(
                    actions.is_empty(),
                    "terminal at step {since} but step {i} emitted {actions:?}"
                );
            }
            if m.state().is_terminal() && terminal_since.is_none() {
                terminal_since = Some(i);
            }
        }
    }

    #[test]
    fn outcome_matches_state(seq in prop::collection::vec(stimulus(), 0..60)) {
        let (m, _) = replay(&seq);
        let outcome = m.outcome();
        prop_assert_eq!(m.state().is_terminal(), outcome != SessionOutcome::StillRunning);
    }

    #[test]
    fn pokes_and_requests_are_bounded(seq in prop::collection::vec(stimulus(), 0..120)) {
        let (_, actions) = replay(&seq);
        let cfg = NegotiationConfig::default();
        let pokes = actions.iter().filter(|(_, a, _)| *a == ProtocolAction::ExecutePoke).count();
        let rects = actions.iter().filter(|(_, a, _)| *a == ProtocolAction::ExecuteRectangle).count();
        prop_assert!(pokes <= cfg.max_poke_attempts as usize, "{pokes} pokes");
        // a fresh attention grant resets nothing, but requests are bounded per grant;
        // with at most max_poke_attempts grants the global bound is their product
        prop_assert!(
            rects <= (cfg.max_request_attempts as usize) * (cfg.max_poke_attempts as usize) + 1,
            "{rects} rectangles"
        );
    }
}
