//! Offline mini-implementation of the `proptest` API surface this workspace
//! uses.
//!
//! The build environment cannot reach a cargo registry, so the real crate is
//! unavailable. This stand-in keeps the same source-level API — `proptest!`,
//! `prop_assert*`, `prop_assume!`, `prop_oneof!`, `Strategy` combinators,
//! `prop::collection::vec`, `prop::num::f64::NORMAL`, `any::<T>()` and
//! `ProptestConfig` — but generates cases without shrinking: a failing case
//! reports its seed and message instead of a minimised input. Deterministic
//! per test name, so failures reproduce run-to-run.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `vec` is needed here).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s with elements from `element` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod f64 {
        //! `f64`-specific strategies.

        use crate::strategy::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy over all *normal* `f64` values (no NaN, infinity, zero or
        /// subnormals), any sign and magnitude.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalF64;

        /// All normal `f64` values.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;

            fn generate(&self, rng: &mut SmallRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.gen::<u64>());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod arbitrary {
    //! The `Arbitrary` trait: types with a canonical "any value" strategy.

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary_value(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut SmallRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut SmallRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut SmallRng) -> Self {
            f64::from_bits(rng.gen::<u64>())
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` module tree (`prop::collection`, `prop::num`, …).

        pub use crate::collection;
        pub use crate::num;
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat, ..) { body } }`.
///
/// An optional `#![proptest_config(expr)]` header sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[test] fn $name:ident ($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                // Strategies are rebuilt per case: flat-mapped strategies may
                // capture per-case state, and rebuilding matches real
                // proptest's value-tree semantics closely enough.
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (drawn input does not satisfy a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm(1u32, $strat)),+
        ])
    };
}
