//! Value-generation strategies (no shrinking).

use rand::rngs::SmallRng;
use rand::Rng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a fresh
/// value and failing cases are not minimised.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values satisfying `pred` (resampling, not rejecting the
    /// whole case).
    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        whence: R,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive values",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length specification for [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// See [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Object-safe generation, used by [`Union`] to mix strategy types.
pub trait DynStrategy<V> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut SmallRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut SmallRng) -> S::Value {
        self.generate(rng)
    }
}

/// Boxes a strategy into a weighted [`Union`] arm (used by `prop_oneof!`).
pub fn union_arm<S>(weight: u32, strategy: S) -> (u32, Box<dyn DynStrategy<S::Value>>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

/// Weighted choice among strategies sharing a value type.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof needs a positive total weight");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate_dyn(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total weight")
    }
}
