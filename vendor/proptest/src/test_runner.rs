//! Case execution: configuration, errors and the runner loop.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The input did not meet a precondition (`prop_assume!`); draw another.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (re-drawn) case with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: deterministic across runs and platforms so
    // failures reproduce, distinct per property so cases differ.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` successes; panics on the first failure.
///
/// Rejections (`prop_assume!`) are retried, with a global cap so a
/// never-satisfiable assumption cannot loop forever.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
{
    let seed = seed_for(name);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 16 + 1024;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property '{name}': {rejected} rejections before {} successes \
                         (assumption too strict?)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed after {passed} passing case(s) \
                     [seed 0x{seed:016x}]: {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failure_panics() {
        run_cases(&ProptestConfig::default(), "t", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "rejections")]
    fn endless_rejection_panics() {
        run_cases(&ProptestConfig::with_cases(4), "t", |_| {
            Err(TestCaseError::reject("never"))
        });
    }

    #[test]
    fn rejection_then_success_completes() {
        let mut flip = false;
        let mut passed = 0;
        run_cases(&ProptestConfig::with_cases(8), "t", |_| {
            flip = !flip;
            if flip {
                Err(TestCaseError::reject("every other"))
            } else {
                passed += 1;
                Ok(())
            }
        });
        assert_eq!(passed, 8);
    }
}
