//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched` — with a simple
//! calibrate-then-measure wall-clock loop and plain-text reporting instead of
//! statistics, plots and HTML. Good enough for relative comparisons in an
//! environment where the real crate cannot be downloaded.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched setup output is sized (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a group (reported alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by `iter*`.
    mean: Duration,
    iters: u64,
}

const TARGET_MEASURE: Duration = Duration::from_millis(500);

impl Bencher {
    /// Measures `routine` by running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count filling the target window.
        let probe = Instant::now();
        black_box(routine());
        let one = probe.elapsed().max(Duration::from_nanos(10));
        let iters = (TARGET_MEASURE.as_nanos() / one.as_nanos()).clamp(1, 5_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
        self.iters = iters;
    }

    /// Measures `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let probe_in = setup();
        let probe = Instant::now();
        black_box(routine(probe_in));
        let one = probe.elapsed().max(Duration::from_nanos(10));
        let iters = (TARGET_MEASURE.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / iters as u32;
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    fn run_and_report<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = b.mean.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.1} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.1} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3} µs/iter  ({} iters){}",
            self.name,
            id,
            per_iter * 1e6,
            b.iters,
            rate
        );
        self.criterion.benches_run += 1;
    }

    /// Benchmarks a closure under `id` (accepts `&str` or an owned `String`,
    /// like the real crate's `Into<BenchmarkId>` bound).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, f: F) {
        self.run_and_report(id.as_ref(), f);
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = id.name.clone();
        self.run_and_report(&name, |b| f(b, input));
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, f: F) {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            throughput: None,
        };
        group.run_and_report(id.as_ref(), f);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
