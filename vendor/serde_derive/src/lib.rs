//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace derives serde traits on many public types but never calls a
//! serializer (there is no `serde_json` dependency and no generic bound
//! requiring the traits). In the offline build the derives therefore expand
//! to nothing: the attribute positions stay valid and compilation proceeds
//! without the real `serde_derive`.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
