//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no pre-populated registry
//! cache, so the real `rand` cannot be fetched. This crate implements the
//! (small) API surface the workspace actually uses — `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64` and
//! `rngs::SmallRng` — on top of xoshiro256++, the same generator family the
//! real `SmallRng` uses on 64-bit targets. It is *not* a drop-in replacement
//! for the full crate; it exists so the reproduction builds and its seeded
//! simulations stay deterministic.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full value range via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches `rand`'s
    /// `Standard` distribution for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable between two bounds, used by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion, the
    /// standard seeding scheme for xoshiro-family generators).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&w));
            let k = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = SmallRng::seed_from_u64(6);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
