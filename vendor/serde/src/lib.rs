//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the type namespace
//! (empty marker traits) and the macro namespace (no-op derives), which is
//! all this workspace uses — types are annotated for future wire formats but
//! nothing serializes yet. The JSON artefacts the benchmark harness writes
//! are emitted by hand instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
