//! Property tests for the work pool's determinism contract:
//! `map_indexed` must equal the serial `iter().map()` for arbitrary inputs
//! and worker counts — including empty input, a single item, and item counts
//! far exceeding the worker count.

use hdc_runtime::WorkPool;
use proptest::prelude::*;

proptest! {
    #[test]
    fn map_equals_serial_map(items in prop::collection::vec(-1.0e6f64..1.0e6, 0..257),
                             workers in 1usize..9) {
        let pool = WorkPool::new(workers);
        let parallel = pool.map(&items, |x| (x * 1.5).sin());
        let serial: Vec<f64> = items.iter().map(|x| (x * 1.5).sin()).collect();
        prop_assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            // bitwise equality: same operation on the same input, any core
            prop_assert_eq!(p.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn map_indexed_equals_serial_enumerate(items in prop::collection::vec(0u64..1_000_000, 0..300),
                                           workers in 1usize..9) {
        let pool = WorkPool::new(workers);
        let parallel = pool.map_indexed(
            &items,
            |_| 0u64, // per-worker scratch the work function must not depend on
            |_, i, x| x.wrapping_mul(31).wrapping_add(i as u64),
        );
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn items_vastly_outnumbering_workers(len in 100usize..1500, workers in 1usize..5) {
        let items: Vec<usize> = (0..len).collect();
        let pool = WorkPool::new(workers);
        prop_assert_eq!(pool.map(&items, |&x| x + 1),
                        items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn workers_outnumbering_items(len in 0usize..4, workers in 4usize..17) {
        let items: Vec<usize> = (0..len).collect();
        let pool = WorkPool::new(workers);
        prop_assert_eq!(pool.map(&items, |&x| x * 3),
                        items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_worker_count_agrees(items in prop::collection::vec(0u32..9999, 0..120)) {
        let reference = WorkPool::new(1).map(&items, |&x| u64::from(x) * 7 + 1);
        for workers in [2usize, 3, 4, 8] {
            let got = WorkPool::new(workers).map(&items, |&x| u64::from(x) * 7 + 1);
            prop_assert_eq!(&got, &reference, "worker count {}", workers);
        }
    }
}
