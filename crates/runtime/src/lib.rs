//! Deterministic multi-core execution for the workspace.
//!
//! Everything above the single-frame hot path — scenario matrices, parameter
//! sweeps, fleet missions, multi-stream recognition — is embarrassingly
//! parallel: independent, seed-deterministic work items. This crate supplies
//! the one primitive they all share, a [`WorkPool`] built purely on
//! `std::thread::scope`:
//!
//! * **fixed worker count** — default [`WorkPool::auto`] (available
//!   parallelism), overridable for benchmarks and CI conformance runs;
//! * **chunked work queue** — workers claim contiguous index chunks off an
//!   atomic cursor, so scheduling is load-balanced without any channel or
//!   lock;
//! * **per-worker reusable state** — each worker owns one state value (a
//!   `FrameScratch`, an RNG, …) created once and threaded through every item
//!   it processes, preserving the allocation-free steady state of the
//!   single-frame path;
//! * **order-preserving results** — results are addressed by item index and
//!   reassembled in input order, so the output is *byte-identical regardless
//!   of worker count or scheduling*. There is no reduction step and hence no
//!   reduction-order dependence.
//!
//! The determinism contract: if `work(state, i, item)` is a pure function of
//! `(i, item)` (per-worker state may be scratch memory but must not leak
//! information between items), then `pool.map_indexed(...)` equals the
//! serial `items.iter().enumerate().map(...)` exactly, for every worker
//! count. The workspace's scratch types satisfy this by construction and
//! property tests pin it.
//!
//! No external dependencies: the build environment has no registry access
//! (see DESIGN.md), which is why this exists instead of `rayon`.
//!
//! # Example
//! ```
//! use hdc_runtime::WorkPool;
//!
//! let pool = WorkPool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod splitmix;
pub mod vclock;

pub use events::{micros_to_secs, secs_to_micros, EventHeap, ScheduleMode, Scheduled};
pub use splitmix::{mix, unit_f64, SplitMix64, GOLDEN_GAMMA};
pub use vclock::{Micros, VirtualClock};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// How many chunks each worker sees on average: small enough that chunk
/// claiming stays cheap, large enough that one slow chunk cannot starve the
/// pool (work items here are whole scenarios or frames, with highly variable
/// cost).
const CHUNKS_PER_WORKER: usize = 4;

/// A fixed-size, dependency-free, deterministic work pool.
///
/// See the crate docs for the work model and determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    workers: usize,
}

impl WorkPool {
    /// A pool with exactly `workers` workers.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a work pool needs at least one worker");
        WorkPool { workers }
    }

    /// A pool sized to the machine: one worker per available hardware
    /// thread (1 when parallelism cannot be queried).
    pub fn auto() -> Self {
        WorkPool::new(available_workers())
    }

    /// `Some(n)` → exactly `n` workers; `None` → [`WorkPool::auto`].
    ///
    /// The shape every `--threads N` flag in the workspace parses into.
    pub fn with_threads(threads: Option<usize>) -> Self {
        match threads {
            Some(n) => WorkPool::new(n),
            None => WorkPool::auto(),
        }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `work` over `items` on the pool, with one `init(worker_index)`
    /// state per worker, returning results in input order.
    ///
    /// Output is identical to the serial
    /// `items.iter().enumerate().map(|(i, it)| work(&mut init(0), i, it))`
    /// whenever `work` is a pure function of `(i, item)` — see the crate
    /// docs for the full determinism contract.
    ///
    /// # Panics
    /// Propagates the first worker panic.
    pub fn map_indexed<T, R, S>(
        &self,
        items: &[T],
        init: impl Fn(usize) -> S + Sync,
        work: impl Fn(&mut S, usize, &T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            // Serial fast path: no threads for empty, single-item, or
            // one-worker maps (also what keeps doctests cheap).
            let mut state = init(0);
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| work(&mut state, i, item))
                .collect();
        }

        let chunk = items.len().div_ceil(workers * CHUNKS_PER_WORKER).max(1);
        let chunk_count = items.len().div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let (init, work, cursor) = (&init, &work, &cursor);

        let per_worker: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut state = init(w);
                        let mut out = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= chunk_count {
                                break;
                            }
                            let start = c * chunk;
                            let end = (start + chunk).min(items.len());
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                out.push((i, work(&mut state, i, item)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Index-addressed reassembly: input order, no reduction order.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "item {i} produced twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every item index must be produced exactly once"))
            .collect()
    }

    /// Stateless convenience form of [`WorkPool::map_indexed`].
    pub fn map<T, R>(&self, items: &[T], work: impl Fn(&T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.map_indexed(items, |_| (), |_, _, item| work(item))
    }
}

impl Default for WorkPool {
    fn default() -> Self {
        WorkPool::auto()
    }
}

/// The machine's available hardware parallelism (1 when unknown): what
/// [`WorkPool::auto`] sizes to, and what benchmark metadata records so
/// committed numbers are attributable to the box that produced them.
pub fn available_workers() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--threads N` override out of a raw argument list (`None` when
/// absent → auto). Shared by `run_scenarios` and `bench_engine`.
///
/// # Panics
/// Panics with a usage message when `--threads` has no valid positive value.
pub fn threads_from_args(args: &[String]) -> Option<usize> {
    args.windows(2)
        .find(|pair| pair[0] == "--threads")
        .map(|pair| {
            pair[1]
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| panic!("--threads needs a positive integer, got {:?}", pair[1]))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..101).collect();
        for workers in [1, 2, 3, 4, 8] {
            let pool = WorkPool::new(workers);
            let doubled = pool.map(&items, |x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = WorkPool::new(8);
        assert_eq!(pool.map(&[] as &[u32], |x| *x), Vec::<u32>::new());
        assert_eq!(pool.map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker's state counts the items it processed; totals must
        // cover every item exactly once even though per-worker shares vary.
        let items: Vec<u32> = (0..57).collect();
        let pool = WorkPool::new(3);
        let counts = pool.map_indexed(
            &items,
            |_| 0usize,
            |seen, _, _| {
                *seen += 1;
                *seen
            },
        );
        // every item got a positive per-worker sequence number
        assert!(counts.iter().all(|&c| c >= 1));
        assert_eq!(counts.len(), items.len());
    }

    #[test]
    fn init_receives_distinct_worker_indices() {
        let items: Vec<u32> = (0..64).collect();
        let pool = WorkPool::new(4);
        let worker_of = pool.map_indexed(&items, |w| w, |w, _, _| *w);
        for &w in &worker_of {
            assert!(w < 4);
        }
    }

    #[test]
    fn with_threads_follows_the_flag() {
        assert_eq!(WorkPool::with_threads(Some(3)).workers(), 3);
        assert_eq!(WorkPool::with_threads(None).workers(), available_workers());
    }

    #[test]
    fn threads_flag_parsing() {
        let args = |s: &[&str]| s.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_from_args(&args(&["--bless"])), None);
        assert_eq!(threads_from_args(&args(&["--threads", "2"])), Some(2));
        assert_eq!(
            threads_from_args(&args(&["--bless", "--threads", "16"])),
            Some(16)
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        WorkPool::new(0);
    }

    #[test]
    fn worker_panics_propagate() {
        let pool = WorkPool::new(2);
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            pool.map(&items, |&x| {
                assert!(x != 17, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
