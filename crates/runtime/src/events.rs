//! A deterministic discrete-event heap for the mission schedulers.
//!
//! Lockstep simulation pays O(ticks) regardless of activity: a session that
//! waits 60 s for a negotiation timeout burns 600 `dt = 0.1` steps doing
//! nothing. The event-driven schedulers (session runner, orchard fleet,
//! scenario harness) instead keep a time-ordered heap of *typed* events —
//! sign-hold deadlines, LED pattern transitions, negotiation timeouts, link
//! retransmit/heartbeat timers, waypoint arrivals — and jump the clock from
//! one event to the next, so idle drones and quiet links cost zero work.
//!
//! **Determinism contract.** Heap order must not depend on insertion order,
//! worker count, or pointer values, or golden traces die. [`EventHeap`]
//! therefore orders entries by the tuple
//! `(time, seeded tie, session, rank, insertion seq)` where the tie is a
//! SplitMix64 finalisation of `(salt, time, session, rank)`:
//!
//! * distinct `(time, session, rank)` keys compare identically in every run
//!   with the same salt, however they were inserted;
//! * the seeded tie decorrelates same-instant events across sessions, so no
//!   session is systematically favoured at shared timestamps;
//! * truly identical keys (one session scheduling the same rank twice at one
//!   instant) fall back to insertion order, which the caller controls.
//!
//! Time is integer [`Micros`] (see `vclock`): float seconds are converted
//! once at the boundary by [`secs_to_micros`], never compared directly, so
//! heap order is bit-stable across platforms.

use crate::splitmix::{mix, GOLDEN_GAMMA};
use crate::Micros;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Converts simulation seconds to integer microseconds (round-to-nearest).
/// Negative and non-finite inputs clamp to zero — scheduling "now or
/// earlier" means "immediately" for every caller in the workspace.
pub fn secs_to_micros(t_s: f64) -> Micros {
    if t_s.is_finite() && t_s > 0.0 {
        (t_s * 1e6).round() as Micros
    } else {
        0
    }
}

/// Converts integer microseconds back to simulation seconds.
pub fn micros_to_secs(t_us: Micros) -> f64 {
    t_us as f64 * 1e-6
}

/// How a simulation driver advances its clock. Shared by the scenario
/// harness and the orchard fleet runners so both expose the same dual-mode
/// contract: `Lockstep` reproduces the pre-scheduler fixed-rate loops
/// bit-for-bit (the committed golden manifests pin it); `EventDriven` jumps
/// between due times so idle spans cost zero work (deterministic, pinned by
/// its own blessed manifest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// One tick event per fixed `dt` — bit-identical to the legacy loops.
    Lockstep,
    /// Jump straight between due times; idle spans coast.
    EventDriven,
}

/// The seeded tie-break word for an event key: a pure function of
/// `(salt, time, session, rank)`, so every run (and every worker) agrees on
/// the order of same-instant events without consulting insertion order.
fn tie_word(salt: u64, t_us: Micros, session: u64, rank: u16) -> u64 {
    mix(salt ^ mix(t_us ^ session.wrapping_mul(GOLDEN_GAMMA)) ^ u64::from(rank))
}

/// One popped event: when it was due, whose it is, and what kind it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Due time, integer microseconds.
    pub t_us: Micros,
    /// Owning session (or stream / drone) identifier.
    pub session: u64,
    /// Event-kind rank: the caller's small enum discriminant. Lower ranks
    /// win ties *within* one `(time, session)` only after the seeded tie.
    pub rank: u16,
    /// The payload.
    pub event: E,
}

#[derive(Debug)]
struct Entry<E> {
    t_us: Micros,
    tie: u64,
    session: u64,
    rank: u16,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (Micros, u64, u64, u16, u64) {
        (self.t_us, self.tie, self.session, self.rank, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// A time-ordered, seed-deterministic event heap. See the module docs for
/// the ordering contract.
#[derive(Debug)]
pub struct EventHeap<E> {
    salt: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> EventHeap<E> {
    /// An empty heap whose same-instant tie-breaks are seeded by `salt`.
    pub fn new(salt: u64) -> Self {
        EventHeap {
            salt,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` for `session` at `t_us` with event-kind `rank`.
    pub fn schedule(&mut self, t_us: Micros, session: u64, rank: u16, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            t_us,
            tie: tie_word(self.salt, t_us, session, rank),
            session,
            rank,
            seq,
            event,
        }));
    }

    /// [`EventHeap::schedule`] with the time given in simulation seconds.
    pub fn schedule_at_s(&mut self, t_s: f64, session: u64, rank: u16, event: E) {
        self.schedule(secs_to_micros(t_s), session, rank, event);
    }

    /// Due time of the next event, if any.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|Reverse(e)| e.t_us)
    }

    /// Removes and returns the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|Reverse(e)| Scheduled {
            t_us: e.t_us,
            session: e.session,
            rank: e.rank,
            event: e.event,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new(1);
        h.schedule(300, 0, 0, "c");
        h.schedule(100, 0, 0, "a");
        h.schedule(200, 0, 0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| h.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn order_is_insertion_independent_for_distinct_keys() {
        // 8 sessions × 3 ranks at one instant, inserted in two different
        // orders, must pop identically: order is a function of the keys.
        let keys: Vec<(u64, u16)> = (0..8u64)
            .flat_map(|s| (0..3u16).map(move |r| (s, r)))
            .collect();
        let run = |perm: &[(u64, u16)]| {
            let mut h = EventHeap::new(42);
            for &(s, r) in perm {
                h.schedule(500, s, r, (s, r));
            }
            std::iter::from_fn(|| h.pop().map(|e| e.event)).collect::<Vec<_>>()
        };
        let forward = run(&keys);
        let reversed = run(&keys.iter().rev().copied().collect::<Vec<_>>());
        assert_eq!(forward, reversed);
    }

    #[test]
    fn identical_keys_fall_back_to_insertion_order() {
        let mut h = EventHeap::new(7);
        h.schedule(10, 3, 1, "first");
        h.schedule(10, 3, 1, "second");
        h.schedule(10, 3, 1, "third");
        let order: Vec<&str> = std::iter::from_fn(|| h.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn salt_permutes_same_instant_ties() {
        // Same-instant events across sessions order by the seeded tie, and
        // different salts produce different permutations (no systematic
        // session favouritism).
        let order_for = |salt: u64| {
            let mut h = EventHeap::new(salt);
            for s in 0..16u64 {
                h.schedule(1000, s, 0, s);
            }
            std::iter::from_fn(|| h.pop().map(|e| e.event)).collect::<Vec<u64>>()
        };
        assert_eq!(order_for(5), order_for(5), "same salt, same order");
        assert_ne!(order_for(5), order_for(6), "salts must permute ties");
    }

    #[test]
    fn peek_matches_pop_and_seconds_convert() {
        let mut h = EventHeap::new(0);
        assert!(h.is_empty());
        h.schedule_at_s(0.5, 1, 0, ());
        h.schedule_at_s(0.1, 2, 0, ());
        assert_eq!(h.len(), 2);
        assert_eq!(h.peek_time(), Some(100_000));
        assert_eq!(h.pop().unwrap().session, 2);
        assert_eq!(h.peek_time(), Some(500_000));
    }

    #[test]
    fn seconds_conversion_is_clamped_and_round_trips() {
        assert_eq!(secs_to_micros(-1.0), 0);
        assert_eq!(secs_to_micros(f64::NAN), 0);
        assert_eq!(secs_to_micros(0.1), 100_000);
        let t = secs_to_micros(12.345_678);
        assert!((micros_to_secs(t) - 12.345_678).abs() < 1e-9);
    }
}
