//! SplitMix64: the workspace's deterministic substream generator.
//!
//! Seed-deterministic layers (the scenario sweep, the lossy channel, the
//! serving layer's arrival processes) all need the same primitive: many
//! *decorrelated* random streams derived from one root seed, where stream
//! `i`'s values are a pure function of `(seed, i)` — never of how many other
//! streams exist or in what order they are drawn. SplitMix64 is the standard
//! tool for that job: a 64-bit counter RNG whose output function is a strong
//! finaliser (Steele, Lea & Flood, *Fast splittable pseudorandom number
//! generators*, OOPSLA 2014), cheap enough to construct per stream.
//!
//! This module hosts the one shared implementation (the datalink and sweep
//! layers grew private copies before it existed; everything now routes
//! through this one). The generator itself is exact integer arithmetic, so
//! schedules built from it are bit-stable across platforms; callers that
//! need a probability get it through the one explicit bridge,
//! [`unit_f64`] / [`SplitMix64::next_unit_f64`], which maps the top 53 bits
//! of a draw to `[0, 1)` — the same word therefore yields the same `f64` on
//! every platform.

/// A SplitMix64 generator: 64 bits of state, one finaliser per draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment of the SplitMix64 reference implementation —
/// public because seed-derivation sites across the workspace (channel
/// streams, link endpoint salts) multiply indices by it before mixing.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The `index`-th decorrelated substream of `seed`: mixes the index
    /// through the output finaliser before seeding, so adjacent indices
    /// (stream 0, 1, 2, …) produce unrelated sequences — the property the
    /// serving layer's per-stream arrival processes rely on.
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut root = SplitMix64::new(seed ^ mix(index.wrapping_mul(GOLDEN_GAMMA)));
        // burn one draw so `stream(s, 0)` differs from `new(s)`
        root.next_u64();
        root
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// A value uniform in `[0, bound)` via the 128-bit multiply-shift
    /// reduction (no modulo bias worth correcting at these bound sizes, and
    /// — unlike rejection sampling — a *fixed* number of draws per call,
    /// which keeps downstream schedules easy to reason about).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) has no valid output");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// The next value as a uniform `f64` in `[0, 1)` — see [`unit_f64`].
    pub fn next_unit_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

/// Maps a random word to a uniform `f64` in `[0, 1)` with 53-bit precision:
/// the workspace-standard integer→unit-interval bridge (top 53 bits scaled
/// by 2⁻⁵³), shared so every layer that turns draws into probabilities does
/// it identically.
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The SplitMix64 output finaliser (a bijection on `u64`): public because
/// seed-derivation helpers across the workspace (`derive_seed`-style salting
/// of channel and endpoint streams) apply it directly to salted seeds.
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Reference sequence for seed 1234567 from the canonical Java
        // implementation (SplittableRandom's mix64 chain).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn streams_are_decorrelated_and_index_pure() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::stream(42, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::stream(42, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b, "adjacent substreams must differ");
        // re-deriving stream 0 reproduces it exactly (purity in the index)
        let mut again = SplitMix64::stream(42, 0);
        let a2: Vec<u64> = (0..8).map(|_| again.next_u64()).collect();
        assert_eq!(a, a2);
        // and differs from the undemuxed root generator
        let mut root = SplitMix64::new(42);
        assert_ne!(a[0], root.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers_small_bounds() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        assert_eq!(SplitMix64::new(1).below(1), 0);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_rejected() {
        SplitMix64::new(1).below(0);
    }

    #[test]
    fn unit_f64_stays_in_range_and_is_word_pure() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(unit_f64(0), 0.0);
        assert_eq!(
            unit_f64(u64::MAX),
            (((1u64 << 53) - 1) as f64) * (1.0 / (1u64 << 53) as f64)
        );
        // the struct method is exactly the free-function bridge on the draw
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        assert_eq!(a.next_unit_f64(), unit_f64(b.next_u64()));
    }
}
