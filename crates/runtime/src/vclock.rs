//! Virtual time for deterministic schedulers.
//!
//! Wall clocks poison determinism: any decision that reads one (a deadline
//! check, a timeout, a latency percentile) varies run to run and machine to
//! machine, which is fatal to golden-trace testing. The serving layer
//! therefore runs entirely on *virtual* time — integer microseconds advanced
//! explicitly by the scheduler from seeded arrival offsets and a fixed cost
//! model — and [`VirtualClock`] is the little type that enforces the two
//! rules that make virtual time trustworthy:
//!
//! * **monotonicity** — time never goes backwards ([`VirtualClock::advance_to`]
//!   panics on regression, turning scheduler ordering bugs into loud test
//!   failures instead of silently reordered traces);
//! * **explicitness** — there is no ambient "now"; every advance is a visible
//!   call site, so the decision path provably never consults the host clock.

/// Virtual microseconds: the time unit of every deterministic scheduler in
/// the workspace.
pub type Micros = u64;

/// A monotone virtual clock counting integer microseconds from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtualClock {
    now_us: Micros,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> Micros {
        self.now_us
    }

    /// Advances to the absolute time `t_us`. Advancing to the current time
    /// is a no-op (schedulers routinely process several events at one
    /// instant).
    ///
    /// # Panics
    /// Panics if `t_us` is in the past — a virtual clock that regresses
    /// means the caller processed events out of order.
    pub fn advance_to(&mut self, t_us: Micros) {
        assert!(
            t_us >= self.now_us,
            "virtual clock regression: {} -> {t_us}",
            self.now_us
        );
        self.now_us = t_us;
    }

    /// Advances by a relative duration.
    pub fn advance_by(&mut self, d_us: Micros) {
        self.now_us += d_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_to(5);
        c.advance_to(5); // same instant is fine
        c.advance_by(3);
        assert_eq!(c.now_us(), 8);
    }

    #[test]
    #[should_panic(expected = "regression")]
    fn regression_panics() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        c.advance_to(9);
    }
}
