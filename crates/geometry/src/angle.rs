//! Angle newtypes and helpers.
//!
//! The paper talks about relative azimuth in degrees (0°, 65°, the ~100° dead
//! angle); controllers work in radians. The [`Degrees`] / [`Radians`]
//! newtypes keep the two from being confused (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};
use std::fmt;

/// An angle expressed in degrees.
///
/// # Example
/// ```
/// use hdc_geometry::{Degrees, Radians};
/// let d = Degrees::new(180.0);
/// let r: Radians = d.to_radians();
/// assert!((r.value() - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Degrees(f64);

/// An angle expressed in radians.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Radians(f64);

impl Degrees {
    /// Wraps a raw degree value.
    pub const fn new(v: f64) -> Self {
        Degrees(v)
    }

    /// The raw degree value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to radians.
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }
}

impl Radians {
    /// Wraps a raw radian value.
    pub const fn new(v: f64) -> Self {
        Radians(v)
    }

    /// The raw radian value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to degrees.
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Wraps into `(-pi, pi]`.
    pub fn normalized(self) -> Radians {
        Radians(normalize_angle(self.0))
    }
}

impl fmt::Display for Degrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}°", self.0)
    }
}

impl fmt::Display for Radians {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} rad", self.0)
    }
}

impl From<Degrees> for Radians {
    fn from(d: Degrees) -> Self {
        d.to_radians()
    }
}

impl From<Radians> for Degrees {
    fn from(r: Radians) -> Self {
        r.to_degrees()
    }
}

/// Wraps an angle in radians into `(-pi, pi]`.
///
/// # Example
/// ```
/// use hdc_geometry::normalize_angle;
/// use std::f64::consts::PI;
/// assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
/// ```
pub fn normalize_angle(a: f64) -> f64 {
    let mut x = a % TAU;
    if x <= -PI {
        x += TAU;
    } else if x > PI {
        x -= TAU;
    }
    x
}

/// Signed smallest difference `b - a` between two angles, in `(-pi, pi]`.
///
/// Useful for heading controllers: the result is the shortest rotation that
/// takes heading `a` to heading `b`.
pub fn signed_angle_diff(a: f64, b: f64) -> f64 {
    normalize_angle(b - a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn degree_radian_roundtrip() {
        for deg in [-180.0, -65.0, 0.0, 45.0, 65.0, 100.0, 179.0] {
            let d = Degrees::new(deg);
            let back = d.to_radians().to_degrees();
            assert!(approx_eq(back.value(), deg, 1e-12));
        }
    }

    #[test]
    fn normalize_wraps() {
        assert!(approx_eq(normalize_angle(TAU + 0.1), 0.1, 1e-12));
        assert!(approx_eq(normalize_angle(-TAU - 0.1), -0.1, 1e-12));
        assert!(approx_eq(normalize_angle(PI), PI, 1e-12));
        assert!(approx_eq(normalize_angle(-PI), PI, 1e-12));
    }

    #[test]
    fn diff_is_shortest_path() {
        let a = 0.9 * PI;
        let b = -0.9 * PI;
        // going from +162° to -162° the short way is +36°, not -324°
        assert!(approx_eq(signed_angle_diff(a, b), 0.2 * PI, 1e-12));
        assert!(approx_eq(signed_angle_diff(b, a), -0.2 * PI, 1e-12));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Degrees::new(65.0)), "65.00°");
        assert_eq!(format!("{}", Radians::new(1.0)), "1.0000 rad");
    }
}
