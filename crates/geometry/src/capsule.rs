//! Volumetric primitives used to model the signaller's body.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// A sphere in 3-D space (used for the signaller's head).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sphere3 {
    /// Centre point.
    pub center: Vec3,
    /// Radius in metres.
    pub radius: f64,
}

impl Sphere3 {
    /// Creates a sphere.
    ///
    /// # Panics
    /// Panics in debug builds if `radius` is negative.
    pub fn new(center: Vec3, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative sphere radius");
        Sphere3 { center, radius }
    }

    /// Whether the point is inside or on the sphere.
    pub fn contains(&self, p: Vec3) -> bool {
        self.center.distance(p) <= self.radius
    }
}

/// A capsule (line segment with radius) in 3-D space.
///
/// Limbs and torso of the synthetic signaller are modelled as capsules; their
/// perspective projections become the silhouette the vision pipeline sees.
///
/// # Example
/// ```
/// use hdc_geometry::{Capsule3, Vec3};
/// let arm = Capsule3::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.6), 0.05);
/// assert!((arm.length() - 0.6).abs() < 1e-12);
/// assert!(arm.contains(Vec3::new(0.03, 0.0, 0.3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capsule3 {
    /// Segment start.
    pub a: Vec3,
    /// Segment end.
    pub b: Vec3,
    /// Radius in metres.
    pub radius: f64,
}

impl Capsule3 {
    /// Creates a capsule from segment endpoints and radius.
    ///
    /// # Panics
    /// Panics in debug builds if `radius` is negative.
    pub fn new(a: Vec3, b: Vec3, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative capsule radius");
        Capsule3 { a, b, radius }
    }

    /// Length of the core segment.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Closest point on the core segment to `p`.
    pub fn closest_point_on_segment(&self, p: Vec3) -> Vec3 {
        let ab = self.b - self.a;
        let len_sq = ab.norm_sq();
        if len_sq <= crate::EPS {
            return self.a;
        }
        let t = crate::clamp((p - self.a).dot(ab) / len_sq, 0.0, 1.0);
        self.a + ab * t
    }

    /// Distance from `p` to the capsule surface (negative inside).
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        self.closest_point_on_segment(p).distance(p) - self.radius
    }

    /// Whether the point is inside or on the capsule.
    pub fn contains(&self, p: Vec3) -> bool {
        self.signed_distance(p) <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn sphere_contains() {
        let s = Sphere3::new(Vec3::new(1.0, 1.0, 1.0), 0.5);
        assert!(s.contains(Vec3::new(1.0, 1.0, 1.4)));
        assert!(!s.contains(Vec3::new(1.0, 1.0, 1.6)));
    }

    #[test]
    fn capsule_distance_midpoint() {
        let c = Capsule3::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 0.25);
        assert!(approx_eq(
            c.signed_distance(Vec3::new(1.0, 1.0, 0.0)),
            0.75,
            1e-12
        ));
        assert!(c.contains(Vec3::new(1.0, 0.2, 0.0)));
        assert!(!c.contains(Vec3::new(1.0, 0.3, 0.0)));
    }

    #[test]
    fn capsule_distance_beyond_ends() {
        let c = Capsule3::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 0.1);
        // past end b the closest point clamps to b
        assert!(approx_eq(
            c.signed_distance(Vec3::new(2.0, 0.0, 0.0)),
            0.9,
            1e-12
        ));
        assert!(approx_eq(
            c.signed_distance(Vec3::new(-1.0, 0.0, 0.0)),
            0.9,
            1e-12
        ));
    }

    #[test]
    fn degenerate_capsule_is_sphere() {
        let c = Capsule3::new(Vec3::ZERO, Vec3::ZERO, 0.5);
        assert!(c.contains(Vec3::new(0.4, 0.0, 0.0)));
        assert!(!c.contains(Vec3::new(0.6, 0.0, 0.0)));
        assert_eq!(c.length(), 0.0);
    }
}
