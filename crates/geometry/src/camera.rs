//! Pinhole camera model.
//!
//! The drone's downward/forward-looking camera is modelled as an ideal
//! pinhole. Image coordinates follow the usual convention: origin at the
//! top-left pixel, `u` rightward, `v` downward.

use crate::{Capsule3, Iso3, Mat3, Sphere3, Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Intrinsic camera parameters.
///
/// # Example
/// ```
/// use hdc_geometry::CameraIntrinsics;
/// let intr = CameraIntrinsics::new(640, 480, 500.0);
/// assert_eq!(intr.principal_point().x, 320.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraIntrinsics {
    width: u32,
    height: u32,
    focal_px: f64,
    cx: f64,
    cy: f64,
}

impl CameraIntrinsics {
    /// Creates intrinsics with the principal point at the image centre.
    ///
    /// # Panics
    /// Panics if `width`, `height` or `focal_px` is zero/non-positive.
    pub fn new(width: u32, height: u32, focal_px: f64) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        assert!(focal_px > 0.0, "focal length must be positive");
        CameraIntrinsics {
            width,
            height,
            focal_px,
            cx: width as f64 / 2.0,
            cy: height as f64 / 2.0,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Focal length in pixels.
    pub fn focal_px(&self) -> f64 {
        self.focal_px
    }

    /// Principal point (image centre).
    pub fn principal_point(&self) -> Vec2 {
        Vec2::new(self.cx, self.cy)
    }

    /// Horizontal field of view in radians.
    pub fn horizontal_fov(&self) -> f64 {
        2.0 * (self.width as f64 / (2.0 * self.focal_px)).atan()
    }
}

/// Perspective projection of a sphere: a disk in the image plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedDisk {
    /// Disk centre in pixels.
    pub center: Vec2,
    /// Disk radius in pixels.
    pub radius: f64,
    /// Depth of the sphere centre along the optical axis, in metres.
    pub depth: f64,
}

/// Perspective projection of a capsule: a tapered 2-D capsule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedCapsule {
    /// Projection of endpoint `a` in pixels.
    pub a: Vec2,
    /// Radius at `a` in pixels.
    pub radius_a: f64,
    /// Projection of endpoint `b` in pixels.
    pub b: Vec2,
    /// Radius at `b` in pixels.
    pub radius_b: f64,
}

/// An ideal pinhole camera: extrinsic pose plus intrinsics.
///
/// The camera frame is right-handed with `+z` forward (optical axis), `+x`
/// right, `+y` down, so projected coordinates map directly to image pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinholeCamera {
    world_to_cam: Iso3,
    intrinsics: CameraIntrinsics,
    near: f64,
}

impl PinholeCamera {
    /// Default near-plane distance in metres.
    pub const DEFAULT_NEAR: f64 = 0.05;

    /// Creates a camera from an explicit world→camera transform.
    pub fn new(world_to_cam: Iso3, intrinsics: CameraIntrinsics) -> Self {
        PinholeCamera {
            world_to_cam,
            intrinsics,
            near: Self::DEFAULT_NEAR,
        }
    }

    /// Creates a camera at `eye` looking toward `target`, world-up `+z`.
    ///
    /// # Panics
    /// Panics if `eye == target` or the view direction is parallel to the
    /// world up axis (gimbal-lock configuration) — callers should offset the
    /// eye slightly for exactly-nadir shots.
    pub fn look_at(eye: Vec3, target: Vec3, intrinsics: CameraIntrinsics) -> Self {
        let forward = (target - eye)
            .normalized()
            .expect("camera eye and target must differ");
        let right = forward
            .cross(Vec3::Z)
            .normalized()
            .expect("view direction must not be parallel to world up");
        // +y down completes the right-handed (x right, y down, z forward) frame
        let down = forward.cross(right).normalized().expect("orthogonal frame");
        let rot = Mat3::from_row_vectors(right, down, forward);
        let world_to_cam = Iso3::new(rot, -(rot * eye));
        PinholeCamera {
            world_to_cam,
            intrinsics,
            near: Self::DEFAULT_NEAR,
        }
    }

    /// The camera intrinsics.
    pub fn intrinsics(&self) -> CameraIntrinsics {
        self.intrinsics
    }

    /// The world→camera transform.
    pub fn world_to_cam(&self) -> Iso3 {
        self.world_to_cam
    }

    /// Camera position in world coordinates.
    pub fn position(&self) -> Vec3 {
        self.world_to_cam.inverse().translation()
    }

    /// Transforms a world point into the camera frame.
    pub fn to_camera_frame(&self, p: Vec3) -> Vec3 {
        self.world_to_cam.apply(p)
    }

    /// Projects a world point to pixel coordinates.
    ///
    /// Returns `None` when the point lies behind (or on) the near plane.
    /// Points outside the image bounds are still returned; use
    /// [`PinholeCamera::in_frame`] to test visibility.
    pub fn project(&self, p: Vec3) -> Option<Vec2> {
        let c = self.to_camera_frame(p);
        if c.z <= self.near {
            return None;
        }
        let f = self.intrinsics.focal_px;
        Some(Vec2::new(
            f * c.x / c.z + self.intrinsics.cx,
            f * c.y / c.z + self.intrinsics.cy,
        ))
    }

    /// Whether a pixel coordinate falls inside the image.
    pub fn in_frame(&self, px: Vec2) -> bool {
        px.x >= 0.0
            && px.y >= 0.0
            && px.x < self.intrinsics.width as f64
            && px.y < self.intrinsics.height as f64
    }

    /// Projects a sphere to a disk.
    ///
    /// Returns `None` when the sphere centre is behind the near plane.
    pub fn project_sphere(&self, s: &Sphere3) -> Option<ProjectedDisk> {
        let c = self.to_camera_frame(s.center);
        if c.z <= self.near {
            return None;
        }
        let f = self.intrinsics.focal_px;
        Some(ProjectedDisk {
            center: Vec2::new(
                f * c.x / c.z + self.intrinsics.cx,
                f * c.y / c.z + self.intrinsics.cy,
            ),
            radius: f * s.radius / c.z,
            depth: c.z,
        })
    }

    /// Projects a capsule to a tapered 2-D capsule, clipping against the near
    /// plane when one endpoint is behind the camera.
    ///
    /// Returns `None` when the whole capsule is behind the near plane.
    pub fn project_capsule(&self, cap: &Capsule3) -> Option<ProjectedCapsule> {
        let mut a = self.to_camera_frame(cap.a);
        let mut b = self.to_camera_frame(cap.b);
        if a.z <= self.near && b.z <= self.near {
            return None;
        }
        // Clip the segment at the near plane if needed.
        if a.z <= self.near {
            let t = (self.near + 1e-6 - a.z) / (b.z - a.z);
            a = a.lerp(b, t);
        } else if b.z <= self.near {
            let t = (self.near + 1e-6 - b.z) / (a.z - b.z);
            b = b.lerp(a, t);
        }
        let f = self.intrinsics.focal_px;
        let pp = self.intrinsics.principal_point();
        let pa = Vec2::new(f * a.x / a.z, f * a.y / a.z) + pp;
        let pb = Vec2::new(f * b.x / b.z, f * b.y / b.z) + pp;
        Some(ProjectedCapsule {
            a: pa,
            radius_a: f * cap.radius / a.z,
            b: pb,
            radius_b: f * cap.radius / b.z,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn cam() -> PinholeCamera {
        PinholeCamera::look_at(
            Vec3::new(0.0, -3.0, 1.5),
            Vec3::new(0.0, 0.0, 1.5),
            CameraIntrinsics::new(640, 480, 500.0),
        )
    }

    #[test]
    fn center_projects_to_principal_point() {
        let c = cam();
        let px = c.project(Vec3::new(0.0, 0.0, 1.5)).unwrap();
        assert!(approx_eq(px.x, 320.0, 1e-9));
        assert!(approx_eq(px.y, 240.0, 1e-9));
    }

    #[test]
    fn point_behind_camera_invisible() {
        let c = cam();
        assert!(c.project(Vec3::new(0.0, -5.0, 1.5)).is_none());
    }

    #[test]
    fn up_in_world_is_up_in_image() {
        let c = cam();
        // a point above the target should have smaller v (image y grows down)
        let above = c.project(Vec3::new(0.0, 0.0, 2.0)).unwrap();
        assert!(above.y < 240.0);
        // a point to the camera's right (east, +x when looking north) has larger u
        let east = c.project(Vec3::new(0.5, 0.0, 1.5)).unwrap();
        assert!(east.x > 320.0);
    }

    #[test]
    fn farther_is_smaller() {
        let intr = CameraIntrinsics::new(640, 480, 500.0);
        let near_cam =
            PinholeCamera::look_at(Vec3::new(0.0, -3.0, 1.0), Vec3::new(0.0, 0.0, 1.0), intr);
        let far_cam =
            PinholeCamera::look_at(Vec3::new(0.0, -6.0, 1.0), Vec3::new(0.0, 0.0, 1.0), intr);
        let s = Sphere3::new(Vec3::new(0.0, 0.0, 1.0), 0.1);
        let d_near = near_cam.project_sphere(&s).unwrap();
        let d_far = far_cam.project_sphere(&s).unwrap();
        assert!(d_near.radius > d_far.radius);
        assert!(approx_eq(d_near.radius, 2.0 * d_far.radius, 1e-9));
    }

    #[test]
    fn capsule_projection_tapers_with_depth() {
        let c = cam();
        // capsule pointing away from the camera: far end projects smaller
        let cap = Capsule3::new(Vec3::new(0.0, 0.0, 1.5), Vec3::new(0.0, 2.0, 1.5), 0.1);
        let p = c.project_capsule(&cap).unwrap();
        assert!(p.radius_a > p.radius_b);
    }

    #[test]
    fn capsule_fully_behind_camera_is_culled() {
        let c = cam();
        let cap = Capsule3::new(Vec3::new(0.0, -5.0, 1.5), Vec3::new(0.0, -6.0, 1.5), 0.1);
        assert!(c.project_capsule(&cap).is_none());
    }

    #[test]
    fn capsule_partially_behind_is_clipped() {
        let c = cam();
        let cap = Capsule3::new(Vec3::new(0.0, -5.0, 1.5), Vec3::new(0.0, 0.0, 1.5), 0.1);
        let p = c.project_capsule(&cap).expect("front part visible");
        assert!(p.a.is_finite() && p.b.is_finite());
    }

    #[test]
    fn camera_position_recovered() {
        let eye = Vec3::new(1.0, -3.0, 2.0);
        let c = PinholeCamera::look_at(eye, Vec3::ZERO, CameraIntrinsics::new(64, 64, 50.0));
        let p = c.position();
        assert!(approx_eq(p.x, eye.x, 1e-9));
        assert!(approx_eq(p.y, eye.y, 1e-9));
        assert!(approx_eq(p.z, eye.z, 1e-9));
    }

    #[test]
    fn in_frame_bounds() {
        let c = cam();
        assert!(c.in_frame(Vec2::new(0.0, 0.0)));
        assert!(c.in_frame(Vec2::new(639.9, 479.9)));
        assert!(!c.in_frame(Vec2::new(640.0, 100.0)));
        assert!(!c.in_frame(Vec2::new(-0.1, 100.0)));
    }

    #[test]
    fn fov_is_sane() {
        let intr = CameraIntrinsics::new(640, 480, 320.0);
        // width/2 == focal ⇒ 90° horizontal FOV
        assert!(approx_eq(
            intr.horizontal_fov(),
            std::f64::consts::FRAC_PI_2,
            1e-12
        ));
    }
}
