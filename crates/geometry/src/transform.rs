//! Rigid-body transforms (rotation + translation).

use crate::{Mat3, Vec3};
use serde::{Deserialize, Serialize};

/// A rigid-body isometry in 3-D: `p ↦ R·p + t`.
///
/// Used for body→world poses of the drone and signaller, and for the camera
/// extrinsics (world→camera).
///
/// # Example
/// ```
/// use hdc_geometry::{Iso3, Mat3, Vec3};
/// let pose = Iso3::new(Mat3::rotation_z(std::f64::consts::FRAC_PI_2), Vec3::new(1.0, 0.0, 0.0));
/// let p = pose.apply(Vec3::X);
/// assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Iso3 {
    rotation: Mat3,
    translation: Vec3,
}

impl Iso3 {
    /// The identity transform.
    pub const IDENTITY: Iso3 = Iso3 {
        rotation: Mat3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a transform from a rotation and a translation.
    pub fn new(rotation: Mat3, translation: Vec3) -> Self {
        Iso3 {
            rotation,
            translation,
        }
    }

    /// Pure translation.
    pub fn from_translation(t: Vec3) -> Self {
        Iso3::new(Mat3::IDENTITY, t)
    }

    /// Pure rotation.
    pub fn from_rotation(r: Mat3) -> Self {
        Iso3::new(r, Vec3::ZERO)
    }

    /// The rotation part.
    pub fn rotation(&self) -> Mat3 {
        self.rotation
    }

    /// The translation part.
    pub fn translation(&self) -> Vec3 {
        self.translation
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Applies only the rotation (for directions, which ignore translation).
    pub fn apply_direction(&self, d: Vec3) -> Vec3 {
        self.rotation * d
    }

    /// Composition: `self ∘ other` (apply `other` first, then `self`).
    pub fn compose(&self, other: &Iso3) -> Iso3 {
        Iso3 {
            rotation: self.rotation * other.rotation,
            translation: self.rotation * other.translation + self.translation,
        }
    }

    /// The inverse transform (assumes the rotation part is orthonormal).
    pub fn inverse(&self) -> Iso3 {
        let rt = self.rotation.transpose();
        Iso3 {
            rotation: rt,
            translation: -(rt * self.translation),
        }
    }
}

impl Default for Iso3 {
    fn default() -> Self {
        Iso3::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_vec_eq(a: Vec3, b: Vec3) {
        assert!(approx_eq(a.x, b.x, 1e-12), "{a} != {b}");
        assert!(approx_eq(a.y, b.y, 1e-12), "{a} != {b}");
        assert!(approx_eq(a.z, b.z, 1e-12), "{a} != {b}");
    }

    #[test]
    fn identity_fixes_points() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_eq(Iso3::IDENTITY.apply(p), p);
    }

    #[test]
    fn inverse_undoes_apply() {
        let t = Iso3::new(
            Mat3::rotation_z(0.4) * Mat3::rotation_x(1.2),
            Vec3::new(1.0, -2.0, 0.5),
        );
        let p = Vec3::new(0.3, 0.7, -1.1);
        assert_vec_eq(t.inverse().apply(t.apply(p)), p);
        assert_vec_eq(t.apply(t.inverse().apply(p)), p);
    }

    #[test]
    fn compose_applies_right_first() {
        let rot = Iso3::from_rotation(Mat3::rotation_z(std::f64::consts::FRAC_PI_2));
        let tr = Iso3::from_translation(Vec3::X);
        // rotate then translate
        let both = tr.compose(&rot);
        assert_vec_eq(both.apply(Vec3::X), Vec3::new(1.0, 1.0, 0.0));
        // translate then rotate
        let both2 = rot.compose(&tr);
        assert_vec_eq(both2.apply(Vec3::X), Vec3::new(0.0, 2.0, 0.0));
    }

    #[test]
    fn directions_ignore_translation() {
        let t = Iso3::from_translation(Vec3::new(10.0, 10.0, 10.0));
        assert_vec_eq(t.apply_direction(Vec3::X), Vec3::X);
    }
}
