//! Axis-aligned bounding boxes in the plane.

use crate::Vec2;
use serde::{Deserialize, Serialize};

/// A 2-D axis-aligned bounding box.
///
/// # Example
/// ```
/// use hdc_geometry::{Aabb2, Vec2};
/// let b = Aabb2::from_points([Vec2::new(0.0, 1.0), Vec2::new(2.0, -1.0)]).unwrap();
/// assert_eq!(b.width(), 2.0);
/// assert_eq!(b.height(), 2.0);
/// assert!(b.contains(Vec2::new(1.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb2 {
    min: Vec2,
    max: Vec2,
}

impl Aabb2 {
    /// Creates a box from its corners.
    ///
    /// # Panics
    /// Panics in debug builds if `min` exceeds `max` on any axis.
    pub fn new(min: Vec2, max: Vec2) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y, "invalid aabb {min} {max}");
        Aabb2 { min, max }
    }

    /// Smallest box containing all points, or `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec2>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for p in it {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Aabb2 { min, max })
    }

    /// Lower-left corner.
    pub fn min(&self) -> Vec2 {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Vec2 {
        self.max
    }

    /// Box width (x extent).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height (y extent).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Box area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Whether the point lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Smallest box containing both boxes.
    pub fn union(&self, other: &Aabb2) -> Aabb2 {
        Aabb2 {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Whether two boxes overlap (including touching edges).
    pub fn intersects(&self, other: &Aabb2) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Box grown by `margin` on every side.
    ///
    /// # Panics
    /// Panics in debug builds if a negative margin would invert the box.
    pub fn expanded(&self, margin: f64) -> Aabb2 {
        Aabb2::new(
            self.min - Vec2::splat(margin),
            self.max + Vec2::splat(margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_bounds() {
        let b = Aabb2::from_points([
            Vec2::new(1.0, 5.0),
            Vec2::new(-2.0, 3.0),
            Vec2::new(0.0, 7.0),
        ])
        .unwrap();
        assert_eq!(b.min(), Vec2::new(-2.0, 3.0));
        assert_eq!(b.max(), Vec2::new(1.0, 7.0));
        assert!(Aabb2::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn containment_and_center() {
        let b = Aabb2::new(Vec2::ZERO, Vec2::new(4.0, 2.0));
        assert!(b.contains(Vec2::new(4.0, 2.0)));
        assert!(!b.contains(Vec2::new(4.1, 2.0)));
        assert_eq!(b.center(), Vec2::new(2.0, 1.0));
        assert_eq!(b.area(), 8.0);
    }

    #[test]
    fn union_and_intersection() {
        let a = Aabb2::new(Vec2::ZERO, Vec2::splat(1.0));
        let b = Aabb2::new(Vec2::splat(2.0), Vec2::splat(3.0));
        assert!(!a.intersects(&b));
        let u = a.union(&b);
        assert_eq!(u.min(), Vec2::ZERO);
        assert_eq!(u.max(), Vec2::splat(3.0));
        assert!(u.intersects(&a) && u.intersects(&b));
    }

    #[test]
    fn expansion() {
        let b = Aabb2::new(Vec2::ZERO, Vec2::splat(1.0)).expanded(0.5);
        assert_eq!(b.min(), Vec2::splat(-0.5));
        assert_eq!(b.max(), Vec2::splat(1.5));
    }
}
