//! Three-dimensional vectors.

use crate::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector (or point) with `f64` components.
///
/// The workspace convention is a right-handed, z-up world frame: x east,
/// y north, z up. Altitudes are therefore z values in metres.
///
/// # Example
/// ```
/// use hdc_geometry::Vec3;
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(v.norm(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// East component.
    pub x: f64,
    /// North component.
    pub y: f64,
    /// Up component (altitude).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along z (up).
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Embeds a planar vector at altitude `z`.
    pub fn from_xy(xy: Vec2, z: f64) -> Self {
        Vec3::new(xy.x, xy.y, z)
    }

    /// Projects onto the ground plane, dropping altitude.
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (ground-plane) distance to another point.
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        self.xy().distance(other.xy())
    }

    /// Returns the unit vector in the same direction, or `None` for the zero
    /// vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise linear interpolation toward `other`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Returns `true` when all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |acc, v| acc + v)
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Vec3::new(x, y, z)
    }
}

impl From<Vec3> for (f64, f64, f64) {
    fn from(v: Vec3) -> Self {
        (v.x, v.y, v.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.3, 1.4);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-12));
        assert!(approx_eq(c.dot(b), 0.0, 1e-12));
    }

    #[test]
    fn horizontal_distance_ignores_altitude() {
        let a = Vec3::new(0.0, 0.0, 5.0);
        let b = Vec3::new(3.0, 4.0, 1.0);
        assert_eq!(a.horizontal_distance(b), 5.0);
    }

    #[test]
    fn xy_embedding_roundtrip() {
        let v = Vec3::from_xy(Vec2::new(2.0, -1.0), 7.0);
        assert_eq!(v.xy(), Vec2::new(2.0, -1.0));
        assert_eq!(v.z, 7.0);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(2.0, -3.0, 6.0).normalized().unwrap();
        assert!(approx_eq(v.norm(), 1.0, 1e-12));
        assert!(Vec3::ZERO.normalized().is_none());
    }
}
