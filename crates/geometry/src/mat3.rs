//! 3×3 matrices for rotations and camera math.

use crate::{Vec3, EPS};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

/// A 3×3 row-major matrix.
///
/// Primarily used for rotation matrices (world→camera, body→world) and the
/// inertia-free kinematics in the drone simulator.
///
/// # Example
/// ```
/// use hdc_geometry::{Mat3, Vec3};
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v.y - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries `m[row][col]`.
    m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Builds a matrix from row-major entries.
    pub const fn from_rows(m: [[f64; 3]; 3]) -> Self {
        Mat3 { m }
    }

    /// Builds a matrix whose *rows* are the given vectors.
    pub fn from_row_vectors(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Mat3 {
            m: [[r0.x, r0.y, r0.z], [r1.x, r1.y, r1.z], [r2.x, r2.y, r2.z]],
        }
    }

    /// Builds a matrix whose *columns* are the given vectors.
    pub fn from_col_vectors(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// Entry accessor, `row` and `col` in `0..3`.
    ///
    /// # Panics
    /// Panics if `row` or `col` is out of range.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.m[row][col]
    }

    /// Rotation about the x axis by `angle` radians.
    pub fn rotation_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation about the y axis by `angle` radians.
    pub fn rotation_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation about the z axis by `angle` radians.
    pub fn rotation_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Matrix transpose. For rotation matrices this is the inverse.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix inverse, or `None` when singular.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() <= EPS {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / d;
        let c = |r0: usize, r1: usize, c0: usize, c1: usize| {
            m[r0][c0] * m[r1][c1] - m[r0][c1] * m[r1][c0]
        };
        Some(Mat3::from_rows([
            [
                c(1, 2, 1, 2) * inv_det,
                -c(0, 2, 1, 2) * inv_det,
                c(0, 1, 1, 2) * inv_det,
            ],
            [
                -c(1, 2, 0, 2) * inv_det,
                c(0, 2, 0, 2) * inv_det,
                -c(0, 1, 0, 2) * inv_det,
            ],
            [
                c(1, 2, 0, 1) * inv_det,
                -c(0, 2, 0, 1) * inv_det,
                c(0, 1, 0, 1) * inv_det,
            ],
        ]))
    }

    /// Returns `true` when the matrix is orthonormal with determinant +1
    /// (i.e. a proper rotation), within tolerance `tol`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let t = *self * self.transpose();
        let mut ortho = true;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                ortho &= (t.at(r, c) - expect).abs() <= tol;
            }
        }
        ortho && (self.det() - 1.0).abs() <= tol
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        Mat3::from_rows(out)
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            writeln!(f, "[{:+.4} {:+.4} {:+.4}]", row[0], row[1], row[2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::FRAC_PI_2;

    fn assert_vec_eq(a: Vec3, b: Vec3) {
        assert!(approx_eq(a.x, b.x, 1e-12), "{a} != {b}");
        assert!(approx_eq(a.y, b.y, 1e-12), "{a} != {b}");
        assert!(approx_eq(a.z, b.z, 1e-12), "{a} != {b}");
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_vec_eq(Mat3::IDENTITY * v, v);
        assert_eq!(Mat3::default(), Mat3::IDENTITY);
    }

    #[test]
    fn rotations_move_axes() {
        assert_vec_eq(Mat3::rotation_z(FRAC_PI_2) * Vec3::X, Vec3::Y);
        assert_vec_eq(Mat3::rotation_x(FRAC_PI_2) * Vec3::Y, Vec3::Z);
        assert_vec_eq(Mat3::rotation_y(FRAC_PI_2) * Vec3::Z, Vec3::X);
    }

    #[test]
    fn rotation_inverse_is_transpose() {
        let r = Mat3::rotation_z(0.7) * Mat3::rotation_x(-0.3);
        let inv = r.inverse().unwrap();
        let tr = r.transpose();
        for row in 0..3 {
            for col in 0..3 {
                assert!(approx_eq(inv.at(row, col), tr.at(row, col), 1e-12));
            }
        }
        assert!(r.is_rotation(1e-12));
    }

    #[test]
    fn singular_has_no_inverse() {
        let s = Mat3::from_rows([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]]);
        assert!(s.inverse().is_none());
        assert!(!s.is_rotation(1e-9));
    }

    #[test]
    fn det_of_rotation_is_one() {
        let r = Mat3::rotation_y(1.1);
        assert!(approx_eq(r.det(), 1.0, 1e-12));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat3::from_rows([[2.0, 1.0, 0.5], [0.0, 3.0, -1.0], [1.0, 0.0, 1.0]]);
        let inv = a.inverse().unwrap();
        let id = a * inv;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!(approx_eq(id.at(r, c), expect, 1e-12));
            }
        }
    }

    #[test]
    fn column_row_constructors() {
        let a = Mat3::from_col_vectors(Vec3::X, Vec3::Y, Vec3::Z);
        assert_eq!(a, Mat3::IDENTITY);
        let b = Mat3::from_row_vectors(Vec3::X, Vec3::Y, Vec3::Z);
        assert_eq!(b, Mat3::IDENTITY);
    }
}
