//! Planar polygons.

use crate::{Aabb2, Vec2};
use serde::{Deserialize, Serialize};

/// A simple planar polygon given by its vertices in order (closed implicitly).
///
/// Used for silhouette outlines, orchard plot boundaries and the rectangular
/// "request area" flight pattern.
///
/// # Example
/// ```
/// use hdc_geometry::{Polygon, Vec2};
/// let square = Polygon::rectangle(Vec2::ZERO, Vec2::new(2.0, 2.0));
/// assert_eq!(square.area(), 4.0);
/// assert!(square.contains(Vec2::new(1.0, 1.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Vec2>,
}

impl Polygon {
    /// Creates a polygon from vertices in order.
    pub fn new(vertices: Vec<Vec2>) -> Self {
        Polygon { vertices }
    }

    /// Axis-aligned rectangle from two opposite corners.
    pub fn rectangle(a: Vec2, b: Vec2) -> Self {
        let lo = a.min(b);
        let hi = a.max(b);
        Polygon::new(vec![lo, Vec2::new(hi.x, lo.y), hi, Vec2::new(lo.x, hi.y)])
    }

    /// Regular `n`-gon of given `radius` centred at `center`.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn regular(center: Vec2, radius: f64, n: usize) -> Self {
        assert!(n >= 3, "a polygon needs at least 3 vertices");
        let verts = (0..n)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / n as f64;
                center + Vec2::from_angle(a) * radius
            })
            .collect();
        Polygon::new(verts)
    }

    /// The vertices in order.
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the polygon has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Iterates over edges as `(start, end)` pairs, wrapping around.
    pub fn edges(&self) -> impl Iterator<Item = (Vec2, Vec2)> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| (self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area: positive for counter-clockwise winding.
    pub fn signed_area(&self) -> f64 {
        if self.vertices.len() < 3 {
            return 0.0;
        }
        0.5 * self.edges().map(|(a, b)| a.cross(b)).sum::<f64>()
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|(a, b)| a.distance(b)).sum()
    }

    /// Area centroid. Falls back to the vertex mean for degenerate polygons.
    pub fn centroid(&self) -> Vec2 {
        let a = self.signed_area();
        if a.abs() <= crate::EPS {
            if self.vertices.is_empty() {
                return Vec2::ZERO;
            }
            return self.vertices.iter().copied().sum::<Vec2>() / self.vertices.len() as f64;
        }
        let c: Vec2 = self
            .edges()
            .map(|(p, q)| (p + q) * p.cross(q))
            .sum::<Vec2>()
            / (6.0 * a);
        c
    }

    /// Even-odd point containment test (boundary points may go either way).
    pub fn contains(&self, p: Vec2) -> bool {
        let mut inside = false;
        for (a, b) in self.edges() {
            let crosses = (a.y > p.y) != (b.y > p.y);
            if crosses {
                let t = (p.y - a.y) / (b.y - a.y);
                let x = a.x + t * (b.x - a.x);
                if x > p.x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Bounding box, or `None` for an empty polygon.
    pub fn aabb(&self) -> Option<Aabb2> {
        Aabb2::from_points(self.vertices.iter().copied())
    }

    /// Polygon translated by `delta`.
    pub fn translated(&self, delta: Vec2) -> Polygon {
        Polygon::new(self.vertices.iter().map(|v| *v + delta).collect())
    }

    /// Polygon rotated by `angle` radians about `pivot`.
    pub fn rotated_about(&self, pivot: Vec2, angle: f64) -> Polygon {
        Polygon::new(
            self.vertices
                .iter()
                .map(|v| pivot + (*v - pivot).rotated(angle))
                .collect(),
        )
    }

    /// Polygon scaled by `factor` about `pivot`.
    pub fn scaled_about(&self, pivot: Vec2, factor: f64) -> Polygon {
        Polygon::new(
            self.vertices
                .iter()
                .map(|v| pivot + (*v - pivot) * factor)
                .collect(),
        )
    }

    /// Whether all interior angles turn the same way (convex polygon).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        if n < 4 {
            return n == 3;
        }
        let mut sign = 0i8;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let cross = (b - a).cross(c - b);
            if cross.abs() > crate::EPS {
                let s = if cross > 0.0 { 1 } else { -1 };
                if sign == 0 {
                    sign = s;
                } else if sign != s {
                    return false;
                }
            }
        }
        true
    }
}

impl FromIterator<Vec2> for Polygon {
    fn from_iter<T: IntoIterator<Item = Vec2>>(iter: T) -> Self {
        Polygon::new(iter.into_iter().collect())
    }
}

/// Convex hull of a point set (Andrew's monotone chain), counter-clockwise.
///
/// Returns fewer than 3 points when the input is degenerate.
///
/// # Example
/// ```
/// use hdc_geometry::{convex_hull, Vec2};
/// let hull = convex_hull(&[
///     Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0),
///     Vec2::new(1.0, 1.0), Vec2::new(0.0, 1.0),
///     Vec2::new(0.5, 0.5),
/// ]);
/// assert_eq!(hull.len(), 4);
/// ```
pub fn convex_hull(points: &[Vec2]) -> Vec<Vec2> {
    let mut pts: Vec<Vec2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.distance(*b) <= crate::EPS);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Vec2> = Vec::with_capacity(2 * n);
    // lower hull
    for &p in &pts {
        while hull.len() >= 2 {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if (q - r).cross(p - r) <= crate::EPS {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // upper hull
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if (q - r).cross(p - r) <= crate::EPS {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop();
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn rectangle_properties() {
        let r = Polygon::rectangle(Vec2::ZERO, Vec2::new(3.0, 2.0));
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.perimeter(), 10.0);
        assert_eq!(r.centroid(), Vec2::new(1.5, 1.0));
        assert!(r.is_convex());
        assert!(r.signed_area() > 0.0, "rectangle() winds counter-clockwise");
    }

    #[test]
    fn containment() {
        let r = Polygon::rectangle(Vec2::ZERO, Vec2::splat(1.0));
        assert!(r.contains(Vec2::splat(0.5)));
        assert!(!r.contains(Vec2::new(1.5, 0.5)));
        assert!(!r.contains(Vec2::new(-0.5, 0.5)));
    }

    #[test]
    fn regular_polygon_approaches_circle() {
        let p = Polygon::regular(Vec2::ZERO, 1.0, 360);
        assert!(approx_eq(p.area(), std::f64::consts::PI, 1e-3));
        assert!(approx_eq(p.perimeter(), std::f64::consts::TAU, 1e-3));
        assert!(p.is_convex());
    }

    #[test]
    fn concave_detected() {
        let arrow = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(1.0, 0.5),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
        ]);
        assert!(!arrow.is_convex());
    }

    #[test]
    fn transforms_preserve_area() {
        let p = Polygon::rectangle(Vec2::ZERO, Vec2::new(2.0, 1.0));
        let moved = p.translated(Vec2::new(5.0, 5.0));
        let turned = p.rotated_about(Vec2::ZERO, 1.0);
        assert!(approx_eq(moved.area(), 2.0, 1e-12));
        assert!(approx_eq(turned.area(), 2.0, 1e-12));
        let scaled = p.scaled_about(Vec2::ZERO, 2.0);
        assert!(approx_eq(scaled.area(), 8.0, 1e-12));
    }

    #[test]
    fn centroid_of_triangle() {
        let t = Polygon::new(vec![Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(0.0, 3.0)]);
        let c = t.centroid();
        assert!(approx_eq(c.x, 1.0, 1e-12));
        assert!(approx_eq(c.y, 1.0, 1e-12));
    }

    #[test]
    fn hull_strips_interior_points() {
        let hull = convex_hull(&[
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
            Vec2::new(4.0, 4.0),
            Vec2::new(0.0, 4.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(1.0, 3.0),
        ]);
        assert_eq!(hull.len(), 4);
        let hull_poly = Polygon::new(hull);
        assert!(approx_eq(hull_poly.area(), 16.0, 1e-9));
    }

    #[test]
    fn hull_of_collinear_points() {
        let hull = convex_hull(&[
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(2.0, 2.0),
        ]);
        assert!(hull.len() <= 2);
    }

    #[test]
    fn from_iterator() {
        let p: Polygon = [Vec2::ZERO, Vec2::X, Vec2::Y].into_iter().collect();
        assert_eq!(p.len(), 3);
    }
}
