//! Geometric substrate for the `hdc` workspace.
//!
//! Provides the small amount of linear algebra and computational geometry the
//! rest of the reproduction needs, implemented from scratch:
//!
//! * [`Vec2`] / [`Vec3`] vectors and [`Mat3`] matrices,
//! * rigid-body [`Iso3`] transforms,
//! * planar [`Polygon`] operations (area, centroid, containment),
//! * axis-aligned boxes ([`Aabb2`]),
//! * a [`PinholeCamera`] model used to render the synthetic signaller,
//! * [`Capsule3`] primitives used as limb volumes for silhouettes.
//!
//! # Example
//!
//! ```
//! use hdc_geometry::{Vec3, PinholeCamera, CameraIntrinsics};
//!
//! let intr = CameraIntrinsics::new(640, 480, 500.0);
//! let cam = PinholeCamera::look_at(Vec3::new(0.0, -3.0, 1.5), Vec3::new(0.0, 0.0, 1.0), intr);
//! let px = cam.project(Vec3::new(0.0, 0.0, 1.0)).expect("point in front of camera");
//! assert!((px.x - 320.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod angle;
mod camera;
mod capsule;
mod mat3;
mod polygon;
mod transform;
mod vec2;
mod vec3;

pub use aabb::Aabb2;
pub use angle::{normalize_angle, signed_angle_diff, Degrees, Radians};
pub use camera::{CameraIntrinsics, PinholeCamera, ProjectedCapsule, ProjectedDisk};
pub use capsule::{Capsule3, Sphere3};
pub use mat3::Mat3;
pub use polygon::{convex_hull, Polygon};
pub use transform::Iso3;
pub use vec2::Vec2;
pub use vec3::Vec3;

/// Numerical tolerance used by approximate comparisons across the crate.
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floats are within `tol` of each other.
///
/// # Example
/// ```
/// assert!(hdc_geometry::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Linear interpolation between `a` and `b` by factor `t` (`t = 0` gives `a`).
///
/// # Example
/// ```
/// assert_eq!(hdc_geometry::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Clamps `x` into `[lo, hi]`.
///
/// # Panics
/// Panics in debug builds if `lo > hi`.
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(-1.0, 5.0, 0.0), -1.0);
        assert_eq!(lerp(-1.0, 5.0, 1.0), 5.0);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(10.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-10.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(1.0, 1.0000000001, 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-6));
    }
}
