//! Two-dimensional vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-D vector (or point) with `f64` components.
///
/// Used throughout the workspace for image-plane coordinates (pixels) and
/// planar world coordinates.
///
/// # Example
/// ```
/// use hdc_geometry::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// Unit vector along x.
    pub const X: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// Unit vector along y.
    pub const Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a vector with both components equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Vec2 { x: v, y: v }
    }

    /// Unit vector at `angle` radians from the +x axis (counter-clockwise).
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec2::norm`]).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in the same direction, or `None` for the zero
    /// vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Perpendicular vector, rotated +90° (counter-clockwise).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Angle of the vector from the +x axis in `(-pi, pi]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Component-wise linear interpolation toward `other`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec2 {
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl DivAssign<f64> for Vec2 {
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, |acc, v| acc + v)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::X.rotated(std::f64::consts::FRAC_PI_2);
        assert!(approx_eq(v.x, 0.0, 1e-12));
        assert!(approx_eq(v.y, 1.0, 1e-12));
        assert_eq!(Vec2::X.perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!(approx_eq(v.norm(), 1.0, 1e-12));
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn angle_roundtrip() {
        for deg in [-170, -90, -45, 0, 30, 90, 179] {
            let a = (deg as f64).to_radians();
            assert!(approx_eq(Vec2::from_angle(a).angle(), a, 1e-12));
        }
    }

    #[test]
    fn sum_and_lerp() {
        let pts = [Vec2::new(1.0, 1.0), Vec2::new(3.0, 5.0)];
        let s: Vec2 = pts.iter().copied().sum();
        assert_eq!(s, Vec2::new(4.0, 6.0));
        assert_eq!(pts[0].lerp(pts[1], 0.5), Vec2::new(2.0, 3.0));
    }

    #[test]
    fn conversions_and_display() {
        let v: Vec2 = (1.0, 2.0).into();
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.0, 2.0));
        assert_eq!(format!("{v}"), "(1.0000, 2.0000)");
    }
}
