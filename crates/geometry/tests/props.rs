//! Property-based tests for the geometry substrate.

use hdc_geometry::{
    approx_eq, convex_hull, normalize_angle, signed_angle_diff, Aabb2, Iso3, Mat3, Polygon, Vec2,
    Vec3,
};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |x| {
        let span = range.end - range.start;
        range.start + (x.abs() % span)
    })
}

fn vec2_strategy() -> impl Strategy<Value = Vec2> {
    (finite_f64(-100.0..100.0), finite_f64(-100.0..100.0)).prop_map(|(x, y)| Vec2::new(x, y))
}

fn vec3_strategy() -> impl Strategy<Value = Vec3> {
    (
        finite_f64(-100.0..100.0),
        finite_f64(-100.0..100.0),
        finite_f64(-100.0..100.0),
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vec2_rotation_preserves_norm(v in vec2_strategy(), angle in finite_f64(-10.0..10.0)) {
        let r = v.rotated(angle);
        prop_assert!(approx_eq(r.norm(), v.norm(), 1e-6 * (1.0 + v.norm())));
    }

    #[test]
    fn vec2_dot_is_commutative(a in vec2_strategy(), b in vec2_strategy()) {
        prop_assert_eq!(a.dot(b), b.dot(a));
    }

    #[test]
    fn vec2_cross_antisymmetric(a in vec2_strategy(), b in vec2_strategy()) {
        prop_assert!(approx_eq(a.cross(b), -b.cross(a), 1e-6));
    }

    #[test]
    fn vec3_cross_orthogonal(a in vec3_strategy(), b in vec3_strategy()) {
        let c = a.cross(b);
        let scale = a.norm() * b.norm() + 1.0;
        prop_assert!(approx_eq(c.dot(a), 0.0, 1e-6 * scale * scale));
        prop_assert!(approx_eq(c.dot(b), 0.0, 1e-6 * scale * scale));
    }

    #[test]
    fn triangle_inequality(a in vec3_strategy(), b in vec3_strategy()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn angle_normalization_in_range(a in finite_f64(-50.0..50.0)) {
        let n = normalize_angle(a);
        prop_assert!(n > -std::f64::consts::PI - 1e-12);
        prop_assert!(n <= std::f64::consts::PI + 1e-12);
        // normalisation preserves the angle modulo 2π
        prop_assert!(approx_eq((a - n).rem_euclid(std::f64::consts::TAU), 0.0, 1e-6)
            || approx_eq((a - n).rem_euclid(std::f64::consts::TAU), std::f64::consts::TAU, 1e-6));
    }

    #[test]
    fn angle_diff_bounded(a in finite_f64(-10.0..10.0), b in finite_f64(-10.0..10.0)) {
        let d = signed_angle_diff(a, b);
        prop_assert!(d.abs() <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    fn rotation_matrices_are_rotations(ax in finite_f64(-5.0..5.0), ay in finite_f64(-5.0..5.0), az in finite_f64(-5.0..5.0)) {
        let r = Mat3::rotation_z(az) * Mat3::rotation_y(ay) * Mat3::rotation_x(ax);
        prop_assert!(r.is_rotation(1e-9));
    }

    #[test]
    fn iso3_inverse_roundtrip(t in vec3_strategy(), angle in finite_f64(-5.0..5.0), p in vec3_strategy()) {
        let iso = Iso3::new(Mat3::rotation_z(angle), t);
        let back = iso.inverse().apply(iso.apply(p));
        prop_assert!(back.distance(p) < 1e-6 * (1.0 + p.norm() + t.norm()));
    }

    #[test]
    fn aabb_contains_its_points(pts in prop::collection::vec(vec2_strategy(), 1..20)) {
        let b = Aabb2::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(b.contains(*p));
        }
    }

    #[test]
    fn polygon_translation_preserves_area(
        pts in prop::collection::vec(vec2_strategy(), 3..12),
        delta in vec2_strategy(),
    ) {
        let poly = Polygon::new(pts);
        let moved = poly.translated(delta);
        prop_assert!(approx_eq(poly.area(), moved.area(), 1e-6 * (1.0 + poly.area())));
    }

    #[test]
    fn polygon_rotation_preserves_perimeter(
        pts in prop::collection::vec(vec2_strategy(), 3..12),
        angle in finite_f64(-5.0..5.0),
    ) {
        let poly = Polygon::new(pts);
        let turned = poly.rotated_about(Vec2::ZERO, angle);
        prop_assert!(approx_eq(poly.perimeter(), turned.perimeter(), 1e-6 * (1.0 + poly.perimeter())));
    }

    #[test]
    fn convex_hull_is_convex_and_contains_points(pts in prop::collection::vec(vec2_strategy(), 3..30)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            let poly = Polygon::new(hull.clone());
            prop_assert!(poly.is_convex());
            // every input point is inside or on the hull's (slightly expanded) bounds
            let grown = poly.scaled_about(poly.centroid(), 1.0 + 1e-9);
            for p in &pts {
                let inside = grown.contains(*p)
                    || hull.iter().any(|h| h.distance(*p) < 1e-6)
                    || poly.edges().any(|(a, b)| {
                        let ab = b - a;
                        let t = ((*p - a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
                        (a + ab * t).distance(*p) < 1e-6
                    });
                prop_assert!(inside, "point {p} escaped its convex hull");
            }
        }
    }
}
