//! Seed-determinism audit: every stochastic element of the stack — human
//! behaviour, wind, frame-loss coin flips, noise bursts, mission event
//! schedules — must be a pure function of the explicit seeds, so two
//! same-seed runs produce byte-identical canonical traces.

use hdc_core::{CollaborationSession, Role, SessionConfig};
use hdc_drone::WindModel;
use hdc_geometry::Vec3;
use hdc_sim::{build_matrix, mission_cases, run_scenario};

#[test]
fn same_seed_scenarios_replay_byte_identically() {
    // RNG-heavy picks: stochastic human + wind + frame drops + noise bursts
    let interesting = [
        "baseline-worker-consenting",
        "frame-drop-heavy",
        "wind-breeze",
        "gauntlet-lossy-noisy-slow",
    ];
    let matrix = build_matrix();
    for name in interesting {
        let scenario = matrix
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("scenario {name} must exist"));
        let a = run_scenario(scenario);
        let b = run_scenario(scenario);
        assert_eq!(a.digest, b.digest, "{name}: same seed must replay exactly");
        assert_eq!(a.outcome, b.outcome, "{name}");
        assert_eq!(a.frames, b.frames, "{name}");
    }
}

#[test]
fn session_seed_pins_wind_and_human_together() {
    // one explicit u64 drives both the human RNG and the drone's wind
    // process; no ambient/default seed path remains
    let run = |seed: u64| {
        let mut cfg = SessionConfig::for_role(Role::Worker, true, seed);
        cfg.wind = WindModel::breeze(Vec3::new(1.0, 0.0, 0.0), 2.0, 1.0);
        let report = CollaborationSession::new(cfg).run_report();
        format!("{}", report.log)
    };
    assert_eq!(run(5), run(5), "same seed, same trace bytes");
    assert_ne!(
        run(5),
        run(6),
        "different seeds must steer the gusty session differently"
    );
}

#[test]
fn mission_cases_are_deterministic() {
    assert_eq!(mission_cases(), mission_cases());
}
