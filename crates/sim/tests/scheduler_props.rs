//! Property tests for the dual-mode mission scheduler.
//!
//! Three families:
//!
//! 1. **Lockstep compatibility** — the heap-choreographed lockstep driver
//!    must be *byte-identical* (trace digest, outcome, frame counters) to
//!    the pre-scheduler fixed-rate loop, for arbitrary scenarios: random
//!    roles, consent, seeds, human scripts, fault plans, and safety
//!    injections — not just the committed matrix.
//! 2. **Worker invariance** — matrix results in both scheduler modes are a
//!    pure function of the scenarios, identical at every worker count.
//! 3. **No spurious work** — in event-driven mode an idle session performs
//!    zero drone ticks between consecutive due times: quiet stretches cost
//!    O(events), not O(ticks).

use hdc_core::{
    CollaborationSession, HumanScript, Role, ScriptedResponse, SessionConfig, SessionOutcome,
};
use hdc_figure::MarshallingSign;
use hdc_sim::scenario::grade_report;
use hdc_sim::{
    run_matrix_mode, run_scenario_with, FaultKind, FaultPlan, Scenario, ScenarioResult,
    ScheduleMode,
};
use proptest::prelude::*;

/// Builds one fully specified scenario from plain picks (the proptest
/// strategies stay scalar; the structure lives here).
fn make_scenario(
    role_pick: usize,
    consent: bool,
    seed: u64,
    script_pick: usize,
    fault_pick: usize,
    inject: bool,
) -> Scenario {
    let role = [Role::Supervisor, Role::Worker, Role::Visitor][role_pick % 3];
    let mut config = SessionConfig::for_role(role, consent, seed);
    config = match script_pick % 5 {
        0 => config, // stochastic human
        1 => config.with_script(HumanScript::answering(ScriptedResponse::Sign(
            MarshallingSign::Yes,
        ))),
        2 => config.with_script(HumanScript::answering(ScriptedResponse::Sign(
            MarshallingSign::No,
        ))),
        3 => config.with_script(HumanScript::wave_off()),
        _ => config.with_script(HumanScript {
            on_poke: ScriptedResponse::Ignore,
            on_request: ScriptedResponse::Ignore,
            latency_s: 2.0,
        }),
    };
    let faults = match fault_pick % 5 {
        0 => vec![],
        1 => vec![FaultKind::DroppedFrames { probability: 0.3 }],
        2 => vec![FaultKind::DelayedResponse { delay_s: 4.0 }],
        3 => vec![FaultKind::RoleChange {
            at_s: 12.0,
            to: Role::Visitor,
        }],
        _ => vec![
            FaultKind::LinkDrop { probability: 0.2 },
            FaultKind::NoiseBurst {
                sigma: 20.0,
                period_s: 4.0,
                burst_s: 1.0,
            },
        ],
    };
    Scenario {
        name: format!("prop-{role}-{consent}-{seed}-{script_pick}-{fault_pick}").to_lowercase(),
        config,
        plan: FaultPlan { seed, faults },
        inject_safety_at: inject.then_some(8.0),
        expect: vec![],
    }
}

/// The pre-scheduler scenario driver, verbatim: a plain fixed-rate `step()`
/// loop with the safety injection checked at every tick boundary. The
/// heap-choreographed lockstep driver must reproduce it bit-for-bit.
fn run_scenario_legacy(scenario: &Scenario) -> ScenarioResult {
    let mut config = scenario.config;
    scenario.plan.apply_config(&mut config);
    let mut session = CollaborationSession::new(config);
    if let Some(brightness) = scenario.plan.led_brightness() {
        session.drone_mut().ring_mut().brightness = brightness;
    }
    session.set_faults(Box::new(scenario.plan.build()));
    let mut inject_at = scenario.inject_safety_at;
    while !session.is_done() && session.time() < config.max_duration_s {
        if let Some(at) = inject_at {
            if session.time() >= at {
                session.inject_safety("scenario fault injection");
                inject_at = None;
            }
        }
        session.step();
    }
    let report = session.into_report();
    grade_report(scenario, &report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Lockstep-compat mode is byte-identical to the legacy loop for
    // arbitrary scenarios, not just the committed matrix.
    #[test]
    fn lockstep_choreography_replays_the_legacy_loop_exactly(
        role_pick in 0usize..3,
        consent in any::<bool>(),
        seed in 0u64..400,
        script_pick in 0usize..5,
        fault_pick in 0usize..5,
        inject in any::<bool>(),
    ) {
        let scenario = make_scenario(role_pick, consent, seed, script_pick, fault_pick, inject);
        let legacy = run_scenario_legacy(&scenario);
        let lockstep = run_scenario_with(&scenario, ScheduleMode::Lockstep);
        prop_assert_eq!(&legacy.digest, &lockstep.digest,
            "{}: trace diverged from the legacy loop", scenario.name);
        prop_assert_eq!(legacy.outcome, lockstep.outcome);
        prop_assert_eq!(legacy.grade, lockstep.grade);
        prop_assert_eq!(legacy.frames, lockstep.frames);
        prop_assert_eq!(legacy.duration_s, lockstep.duration_s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Matrix fan-out is worker-invariant in both scheduler modes: digests
    // are a pure function of the scenarios.
    #[test]
    fn matrix_digests_are_worker_invariant_in_both_modes(
        seed in 0u64..200,
        consent in any::<bool>(),
    ) {
        let scenarios: Vec<Scenario> = (0..3)
            .map(|i| make_scenario(i, consent, seed + i as u64, i + 1, i, false))
            .collect();
        for mode in [ScheduleMode::Lockstep, ScheduleMode::EventDriven] {
            let serial = run_matrix_mode(&hdc_runtime::WorkPool::new(1), &scenarios, mode);
            for workers in [2usize, 3] {
                let pool = hdc_runtime::WorkPool::new(workers);
                let parallel = run_matrix_mode(&pool, &scenarios, mode);
                for (a, b) in serial.iter().zip(&parallel) {
                    prop_assert_eq!(&a.digest, &b.digest,
                        "{}: {:?} digest depends on worker count {}", a.name, mode, workers);
                    prop_assert_eq!(a.outcome, b.outcome);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Event-driven sessions never tick the drone across an idle hover gap:
    // when the next due time is more than one tick away and the drone is
    // neither executing a pattern nor flying, the gap is coasted in one
    // jump and the drone-tick counter does not move.
    #[test]
    fn idle_sessions_do_zero_drone_work_between_events(
        seed in 0u64..300,
        latency_s in 3.0f64..9.0,
        consent in any::<bool>(),
    ) {
        const TICK: f64 = CollaborationSession::TICK_S;
        let config = SessionConfig::for_role(Role::Worker, consent, seed).with_script(
            HumanScript {
                on_poke: ScriptedResponse::Sign(MarshallingSign::AttentionGained),
                on_request: ScriptedResponse::Sign(MarshallingSign::Yes),
                latency_s,
            },
        );
        let mut session = CollaborationSession::new(config);
        let mut checked_gaps = 0u32;
        let mut iterations = 0u32;
        while !session.is_done() && session.time() < config.max_duration_s {
            iterations += 1;
            prop_assert!(iterations < 20_000, "event loop failed to make progress");
            let now = session.time();
            let mut target = session.next_due_after(now);
            if target <= now || target.is_nan() {
                target = now + TICK;
            }
            let target = target.min(config.max_duration_s);
            let idle_gap = target - now > TICK + 1e-9
                && !session.drone().is_executing()
                && !session.drone().has_waypoint();
            let ticks_before = session.drone_ticks();
            session.step_to(target);
            if idle_gap {
                prop_assert_eq!(session.drone_ticks(), ticks_before,
                    "drone ticked across an idle {:.2}s gap at {:.2}s", target - now, now);
                checked_gaps += 1;
            }
        }
        prop_assert!(session.is_done(), "scripted session must terminate");
        prop_assert!(checked_gaps > 0, "the scripted session must contain idle gaps");
        let report = session.into_report();
        prop_assert_ne!(report.outcome, SessionOutcome::StillRunning);
    }
}
