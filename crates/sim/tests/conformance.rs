//! Golden-trace conformance: the committed scenario matrix must reproduce
//! the committed digests exactly, grade Pass on every scenario, and satisfy
//! the coverage floor the harness promises (all roles, all three signs,
//! every fault injector at two intensities).

use hdc_sim::scenario::{golden_event_path, golden_path, parse_manifest};
use hdc_sim::{
    build_matrix, linked_fleet_cases_mode, mission_cases, run_scenario, run_scenario_with,
    FaultKind, Grade, ScheduleMode,
};

#[test]
fn matrix_covers_roles_signs_and_all_injectors_twice() {
    let matrix = build_matrix();
    assert!(matrix.len() >= 30, "only {} scenarios", matrix.len());

    let names: Vec<&str> = matrix.iter().map(|s| s.name.as_str()).collect();
    for role in ["supervisor", "worker", "visitor"] {
        assert!(
            names.iter().any(|n| n.contains(role)),
            "no scenario names role {role}"
        );
    }

    // every injector kind appears in at least two scenarios (two intensities)
    type KindPred<'a> = &'a dyn Fn(&FaultKind) -> bool;
    let count_kind = |pred: KindPred| {
        matrix
            .iter()
            .filter(|s| s.plan.faults.iter().any(pred))
            .count()
    };
    let kinds: [(&str, KindPred); 11] = [
        ("drop", &|f| matches!(f, FaultKind::DroppedFrames { .. })),
        ("dup", &|f| matches!(f, FaultKind::DuplicatedFrames { .. })),
        ("noise", &|f| matches!(f, FaultKind::NoiseBurst { .. })),
        ("occlusion", &|f| matches!(f, FaultKind::Occlusion { .. })),
        ("drift", &|f| matches!(f, FaultKind::AzimuthDrift { .. })),
        ("facing", &|f| matches!(f, FaultKind::FacingBias { .. })),
        ("led", &|f| matches!(f, FaultKind::LedFailure { .. })),
        ("wind", &|f| matches!(f, FaultKind::WindGust { .. })),
        ("battery", &|f| matches!(f, FaultKind::BatterySag { .. })),
        ("delay", &|f| matches!(f, FaultKind::DelayedResponse { .. })),
        ("role", &|f| matches!(f, FaultKind::RoleChange { .. })),
    ];
    for (label, pred) in kinds {
        assert!(
            count_kind(pred) >= 2,
            "injector {label} must appear at two intensities"
        );
    }
}

#[test]
fn every_scenario_passes_and_matches_its_golden_digest() {
    let committed = std::fs::read_to_string(golden_path())
        .expect("committed golden manifest (bless with run_scenarios --bless)");
    let golden = parse_manifest(&committed);

    for scenario in build_matrix() {
        let result = run_scenario(&scenario);
        assert_eq!(
            result.grade,
            Grade::Pass,
            "{}: outcome {}, violations {:?}",
            result.name,
            result.outcome,
            result.violations
        );
        let (_, want_digest, want_outcome) = golden
            .iter()
            .find(|(name, _, _)| *name == result.name)
            .unwrap_or_else(|| panic!("{} missing from the golden manifest", result.name));
        assert_eq!(
            &result.digest, want_digest,
            "{}: trace drifted from the committed golden",
            result.name
        );
        assert_eq!(
            &result.outcome.to_string().to_lowercase(),
            want_outcome,
            "{}: outcome class drifted",
            result.name
        );
    }
}

#[test]
fn event_driven_scenarios_stay_safe_and_match_their_golden_digests() {
    let committed = std::fs::read_to_string(golden_event_path())
        .expect("committed event golden manifest (bless with run_scenarios --bless)");
    let golden = parse_manifest(&committed);

    for scenario in build_matrix() {
        let result = run_scenario_with(&scenario, ScheduleMode::EventDriven);
        // event mode may land in a different (still expected) outcome class
        // than lockstep, but the safety invariants are mode-independent
        assert_ne!(
            result.grade,
            Grade::Fail,
            "{}: outcome {}, violations {:?}",
            result.name,
            result.outcome,
            result.violations
        );
        let (_, want_digest, want_outcome) = golden
            .iter()
            .find(|(name, _, _)| *name == result.name)
            .unwrap_or_else(|| panic!("{} missing from the event golden manifest", result.name));
        assert_eq!(
            &result.digest, want_digest,
            "{}: event-driven trace drifted from the committed golden",
            result.name
        );
        assert_eq!(
            &result.outcome.to_string().to_lowercase(),
            want_outcome,
            "{}: event-driven outcome class drifted",
            result.name
        );
    }
}

#[test]
fn event_driven_fleet_cases_match_their_golden_digests() {
    let committed = std::fs::read_to_string(golden_event_path())
        .expect("committed event golden manifest (bless with run_scenarios --bless)");
    let golden = parse_manifest(&committed);
    for (name, digest, _) in linked_fleet_cases_mode(ScheduleMode::EventDriven) {
        let (_, want, _) = golden
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} missing from the event golden manifest"));
        assert_eq!(&digest, want, "{name}: event-driven fleet stats drifted");
    }
}

#[test]
fn mission_cases_match_their_golden_digests() {
    let committed = std::fs::read_to_string(golden_path())
        .expect("committed golden manifest (bless with run_scenarios --bless)");
    let golden = parse_manifest(&committed);
    for (name, digest, _) in mission_cases() {
        let (_, want, _) = golden
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} missing from the golden manifest"));
        assert_eq!(&digest, want, "{name}: mission stats drifted");
    }
}
