//! Parallel-execution conformance: fanning the scenario matrix and the
//! dead-angle sweep over a work pool must reproduce the serial results —
//! and the committed golden digests — byte-identically at 1, 2 and 4
//! workers.

use hdc_runtime::WorkPool;
use hdc_sim::scenario::{golden_path, parse_manifest};
use hdc_sim::sweep::{dead_angle_sweep, dead_angle_sweep_with};
use hdc_sim::{build_matrix, run_matrix_with, run_scenario};

#[test]
fn parallel_matrix_matches_serial_and_golden_at_every_worker_count() {
    let matrix = build_matrix();
    let serial: Vec<_> = matrix.iter().map(run_scenario).collect();

    let committed = std::fs::read_to_string(golden_path())
        .expect("committed golden manifest (bless with run_scenarios --bless)");
    let golden = parse_manifest(&committed);

    for workers in [1usize, 2, 4] {
        let parallel = run_matrix_with(&WorkPool::new(workers), &matrix);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.name, s.name, "{workers} workers: order must be preserved");
            assert_eq!(
                p.digest, s.digest,
                "{}: digest drifted at {workers} workers",
                p.name
            );
            assert_eq!(p.outcome, s.outcome, "{}", p.name);
            assert_eq!(p.grade, s.grade, "{}", p.name);
            assert_eq!(p.frames, s.frames, "{}", p.name);
            let (_, want_digest, _) = golden
                .iter()
                .find(|(n, _, _)| *n == p.name)
                .unwrap_or_else(|| panic!("{} missing from the golden manifest", p.name));
            assert_eq!(
                &p.digest, want_digest,
                "{}: parallel run drifted from the committed golden at {workers} workers",
                p.name
            );
        }
    }
}

#[test]
fn parallel_sweep_matches_serial_at_every_worker_count() {
    let serial = dead_angle_sweep(5);
    for workers in [1usize, 2, 4] {
        assert_eq!(
            dead_angle_sweep_with(&WorkPool::new(workers), 5),
            serial,
            "sweep drifted at {workers} workers"
        );
    }
}
