//! Named scenarios, the matrix runner, and the safety-invariant checks.
//!
//! A [`Scenario`] is a session configuration plus a [`FaultPlan`] and an
//! expected outcome class. [`build_matrix`] expands
//! {role × sign × consent × fault plan} into the committed scenario set;
//! [`run_scenario`] executes one scenario through the full closed loop and
//! grades it:
//!
//! * **Pass** — expected outcome class and every safety invariant held,
//! * **Degrade** — the session terminated and the invariants held, but the
//!   fault load pushed it into a different (still safe) outcome,
//! * **Fail** — an invariant was violated or the session did not terminate.
//!
//! The invariants are the paper's dependability claims: area entry only
//! after a recognised Yes (R4), a wave-off is always honoured, the danger
//! posture is terminal (no actions after `DangerLand`, ring latched all-red
//! whenever the safety function engaged), and negotiation time is bounded.

use crate::fault::{FaultKind, FaultPlan};
use crate::trace::{canonical_trace, digest_hex};
use hdc_core::{
    CollaborationSession, HumanScript, LogEntry, ProtocolAction, Role, ScriptedResponse,
    SessionConfig, SessionOutcome, SessionReport,
};
use hdc_drone::LedMode;
use hdc_figure::MarshallingSign;
use hdc_link::LinkQuality;
use hdc_orchard::{
    run_linked_fleet_mode, LinkedFleetConfig, Mission, MissionConfig, OrchardMap, RadioFailure,
};
use hdc_runtime::{micros_to_secs, EventHeap, ScheduleMode};

/// A named, fully specified scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique scenario name (the golden-manifest key).
    pub name: String,
    /// Session configuration (faults in the plan may still adjust it).
    pub config: SessionConfig,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Fire an external safety fault at this simulated time.
    pub inject_safety_at: Option<f64>,
    /// Accepted outcome classes; empty accepts any terminal outcome.
    pub expect: Vec<SessionOutcome>,
}

/// How a scenario fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grade {
    /// Expected outcome, invariants held.
    Pass,
    /// Unexpected (but safe and terminal) outcome under fault load.
    Degrade,
    /// Invariant violation or non-termination.
    Fail,
}

impl Grade {
    /// Lower-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Grade::Pass => "pass",
            Grade::Degrade => "degrade",
            Grade::Fail => "fail",
        }
    }
}

/// The outcome of running one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Final protocol outcome.
    pub outcome: SessionOutcome,
    /// Grade against expectation and invariants.
    pub grade: Grade,
    /// Canonical trace digest (what the golden manifest pins).
    pub digest: String,
    /// Invariant violations, empty when safe.
    pub violations: Vec<String>,
    /// Simulated session duration, seconds.
    pub duration_s: f64,
    /// Frames processed / recognised / dropped / duplicated.
    pub frames: (usize, usize, usize, usize),
}

/// The events the scenario choreographer schedules on its heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimEvent {
    /// Advance the session by one lockstep tick.
    Tick,
    /// Fire the scenario's external safety injection.
    InjectSafety,
}

/// Event-kind rank for [`SimEvent::InjectSafety`] (fires before a
/// same-instant tick).
const RANK_INJECT: u16 = 0;
/// Event-kind rank for [`SimEvent::Tick`].
const RANK_TICK: u16 = 1;

/// Runs one scenario through the full closed loop in lockstep mode — the
/// mode the committed golden manifest pins.
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    run_scenario_with(scenario, ScheduleMode::Lockstep)
}

/// Runs one scenario through the full closed loop under the given scheduler
/// mode.
///
/// Both modes are choreographed by a deterministic [`EventHeap`]:
///
/// * [`ScheduleMode::Lockstep`] schedules one tick event per session `DT`
///   and checks the external safety injection at each tick boundary, exactly
///   as the pre-scheduler fixed-rate loop did — traces are bit-identical to
///   it at every worker count;
/// * [`ScheduleMode::EventDriven`] schedules the injection as a timed event
///   and otherwise jumps the session straight between its due times, so the
///   long idle stretches cost zero drone ticks. Deterministic, but pinned by
///   its own blessed manifest (`tests/golden/scenario_digests_event.txt`).
pub fn run_scenario_with(scenario: &Scenario, mode: ScheduleMode) -> ScenarioResult {
    const TICK: f64 = CollaborationSession::TICK_S;
    let mut config = scenario.config;
    scenario.plan.apply_config(&mut config);
    let mut session = CollaborationSession::new(config);
    if let Some(brightness) = scenario.plan.led_brightness() {
        session.drone_mut().ring_mut().brightness = brightness;
    }
    session.set_faults(Box::new(scenario.plan.build()));

    let mut heap: EventHeap<SimEvent> = EventHeap::new(config.seed);
    match mode {
        ScheduleMode::Lockstep => {
            let mut inject_at = scenario.inject_safety_at;
            heap.schedule_at_s(TICK, 0, RANK_TICK, SimEvent::Tick);
            while let Some(ev) = heap.pop() {
                debug_assert_eq!(ev.event, SimEvent::Tick);
                if session.is_done() || session.time() >= config.max_duration_s {
                    break;
                }
                if let Some(at) = inject_at {
                    if session.time() >= at {
                        session.inject_safety("scenario fault injection");
                        inject_at = None;
                    }
                }
                session.step();
                heap.schedule_at_s(session.time() + TICK, 0, RANK_TICK, SimEvent::Tick);
            }
        }
        ScheduleMode::EventDriven => {
            if let Some(at) = scenario.inject_safety_at {
                heap.schedule_at_s(at, 0, RANK_INJECT, SimEvent::InjectSafety);
            }
            while !session.is_done() && session.time() < config.max_duration_s {
                let now = session.time();
                while heap.peek_time().is_some_and(|t| micros_to_secs(t) <= now) {
                    if let SimEvent::InjectSafety = heap.pop().expect("peeked").event {
                        session.inject_safety("scenario fault injection");
                    }
                }
                let mut target = session.next_due_after(now);
                if let Some(t) = heap.peek_time() {
                    target = target.min(micros_to_secs(t));
                }
                if target <= now || target.is_nan() {
                    target = now + TICK;
                }
                session.step_to(target.min(config.max_duration_s));
            }
        }
    }
    let report = session.into_report();
    grade_report(scenario, &report)
}

/// Runs a scenario set across a work pool, results in matrix order
/// (lockstep mode — what the committed golden manifest pins).
///
/// Scenarios are independent and seed-deterministic, so this is a pure
/// fan-out: the result vector — digests included — is byte-identical to the
/// serial `scenarios.iter().map(run_scenario)` at every worker count.
pub fn run_matrix_with(
    pool: &hdc_runtime::WorkPool,
    scenarios: &[Scenario],
) -> Vec<ScenarioResult> {
    run_matrix_mode(pool, scenarios, ScheduleMode::Lockstep)
}

/// [`run_matrix_with`] under an explicit scheduler mode.
pub fn run_matrix_mode(
    pool: &hdc_runtime::WorkPool,
    scenarios: &[Scenario],
    mode: ScheduleMode,
) -> Vec<ScenarioResult> {
    pool.map(scenarios, |s| run_scenario_with(s, mode))
}

/// Grades a finished session report against a scenario's expectations.
pub fn grade_report(scenario: &Scenario, report: &SessionReport) -> ScenarioResult {
    let violations = check_invariants(report);
    let terminal = report.outcome != SessionOutcome::StillRunning;
    let expected = scenario.expect.is_empty() || scenario.expect.contains(&report.outcome);
    let grade = if !violations.is_empty() || !terminal {
        Grade::Fail
    } else if expected {
        Grade::Pass
    } else {
        Grade::Degrade
    };
    ScenarioResult {
        name: scenario.name.clone(),
        outcome: report.outcome,
        grade,
        digest: digest_hex(&canonical_trace(&report.log)),
        violations,
        duration_s: report.duration_s,
        frames: (
            report.frames_processed,
            report.frames_recognized,
            report.frames_dropped,
            report.frames_duplicated,
        ),
    }
}

/// Checks the safety invariants on a finished session report.
pub fn check_invariants(report: &SessionReport) -> Vec<String> {
    let mut violations = Vec::new();
    let log = &report.log;

    // R4: the drone enters the area only after a recognised Yes.
    let first_yes = log.first_time(|e| matches!(e, LogEntry::Recognized(Some(l)) if l == "Yes"));
    for (t, _) in log.filter(|e| *e == LogEntry::Action(ProtocolAction::EnterArea)) {
        match first_yes {
            Some(yes_t) if yes_t <= *t => {}
            _ => violations.push(format!(
                "EnterArea at {t:.1}s without a prior recognised Yes"
            )),
        }
    }

    // the danger posture is terminal: no protocol actions after DangerLand
    if let Some(danger_t) = log.first_time(|e| *e == LogEntry::Action(ProtocolAction::DangerLand)) {
        for (t, e) in log.filter(|e| matches!(e, LogEntry::Action(_))) {
            if *t > danger_t {
                violations.push(format!("action after DangerLand at {t:.1}s: {e}"));
            }
        }
    }

    // command effects are exactly-once: the one-shot protocol actions must
    // not apply twice even when a duplicating/reordering datalink redelivers
    // them (the endpoint dedup window is what this pins)
    for action in [ProtocolAction::EnterArea, ProtocolAction::DangerLand] {
        let count = log
            .filter(|e| *e == LogEntry::Action(action.clone()))
            .count();
        if count > 1 {
            violations.push(format!("one-shot action applied {count} times: {action}"));
        }
    }

    // a wave-off is always honoured: no area entry at or after detection
    if let Some(wave_t) =
        log.first_time(|e| matches!(e, LogEntry::Note(n) if n.contains("wave-off detected")))
    {
        for (t, _) in log.filter(|e| *e == LogEntry::Action(ProtocolAction::EnterArea)) {
            if *t >= wave_t {
                violations.push(format!(
                    "EnterArea at {t:.1}s after wave-off at {wave_t:.1}s"
                ));
            }
        }
    }

    // an aborted negotiation must leave the fail-safe hardware posture
    if report.outcome == SessionOutcome::Aborted {
        if !report.safety_engaged {
            violations.push("Aborted without the drone safety function engaging".into());
        }
        if !report.grounded {
            violations.push("Aborted but the drone is still airborne".into());
        }
    }

    // the all-red ring latches whenever the safety function engaged
    if report.safety_engaged && report.ring_mode != LedMode::Danger {
        violations.push(format!(
            "safety engaged but the ring shows {:?} instead of Danger",
            report.ring_mode
        ));
    }

    violations
}

/// The scripted consenting supervisor used as the common substrate for the
/// per-injector scenarios: deterministic human behaviour isolates the fault
/// channel under test.
fn scripted_base(seed: u64) -> SessionConfig {
    SessionConfig::for_role(Role::Supervisor, true, seed).with_script(HumanScript::answering(
        ScriptedResponse::Sign(MarshallingSign::Yes),
    ))
}

fn scenario(
    name: &str,
    config: SessionConfig,
    plan: FaultPlan,
    expect: Vec<SessionOutcome>,
) -> Scenario {
    Scenario {
        name: name.to_owned(),
        config,
        plan,
        inject_safety_at: None,
        expect,
    }
}

fn fault_scenario(name: &str, fault: FaultKind, expect: Vec<SessionOutcome>) -> Scenario {
    scenario(
        name,
        scripted_base(42),
        FaultPlan::single(42, fault),
        expect,
    )
}

/// Builds the committed scenario matrix: baselines for every role and
/// consent intention, scripted coverage of all three marshalling signs plus
/// the wave-off, every fault injector at two intensities, combined fault
/// gauntlets, and external safety injection.
pub fn build_matrix() -> Vec<Scenario> {
    use SessionOutcome::{Abandoned, Aborted, Denied, Granted};
    let mut m = Vec::new();

    // --- stochastic baselines: {role} × {consent} ---
    for (role, consent, seed, expect) in [
        (Role::Supervisor, true, 3, vec![Granted]),
        (Role::Supervisor, false, 4, vec![Denied]),
        // seed 1 commits a training error: the worker answers No by mistake
        (Role::Worker, true, 1, vec![Granted, Denied, Abandoned]),
        (Role::Worker, false, 0, vec![Denied, Abandoned]),
        (Role::Visitor, true, 2, vec![Granted, Abandoned]),
        (Role::Visitor, false, 5, vec![Denied, Abandoned]),
    ] {
        let consent_label = if consent { "consenting" } else { "refusing" };
        let name = format!("baseline-{role}-{consent_label}").to_lowercase();
        m.push(scenario(
            &name,
            SessionConfig::for_role(role, consent, seed),
            FaultPlan::none(),
            expect,
        ));
    }

    // --- scripted sign coverage: AttentionGained + {Yes, No}, wave-off,
    //     and a silent human ---
    m.push(scenario(
        "scripted-attention-yes-grants",
        scripted_base(7),
        FaultPlan::none(),
        vec![Granted],
    ));
    m.push(scenario(
        "scripted-attention-no-denies",
        SessionConfig::for_role(Role::Supervisor, false, 7).with_script(HumanScript::answering(
            ScriptedResponse::Sign(MarshallingSign::No),
        )),
        FaultPlan::none(),
        vec![Denied],
    ));
    m.push(scenario(
        "scripted-wave-off-denies",
        SessionConfig::for_role(Role::Worker, false, 7).with_script(HumanScript::wave_off()),
        FaultPlan::none(),
        vec![Denied],
    ));
    m.push(scenario(
        "scripted-ignore-abandons",
        SessionConfig::for_role(Role::Visitor, true, 7).with_script(HumanScript {
            on_poke: ScriptedResponse::Ignore,
            on_request: ScriptedResponse::Ignore,
            latency_s: 1.0,
        }),
        FaultPlan::none(),
        vec![Abandoned],
    ));

    // --- every fault injector at two intensities, on the scripted
    //     consenting supervisor ---
    m.push(fault_scenario(
        "frame-drop-light",
        FaultKind::DroppedFrames { probability: 0.15 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "frame-drop-heavy",
        FaultKind::DroppedFrames { probability: 0.7 },
        vec![Granted, Abandoned],
    ));
    m.push(fault_scenario(
        "frame-dup-light",
        FaultKind::DuplicatedFrames { probability: 0.25 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "frame-dup-heavy",
        FaultKind::DuplicatedFrames { probability: 0.6 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "noise-burst-light",
        FaultKind::NoiseBurst {
            sigma: 12.0,
            period_s: 4.0,
            burst_s: 1.0,
        },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "noise-burst-heavy",
        FaultKind::NoiseBurst {
            sigma: 60.0,
            period_s: 2.0,
            burst_s: 1.5,
        },
        vec![Granted, Abandoned, Denied],
    ));
    m.push(fault_scenario(
        "occlusion-light",
        FaultKind::Occlusion { fraction: 0.12 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "occlusion-heavy",
        FaultKind::Occlusion { fraction: 0.45 },
        vec![Granted, Abandoned, Denied],
    ));
    m.push(fault_scenario(
        "azimuth-drift-slow",
        FaultKind::AzimuthDrift { rate_rad_s: 0.05 },
        vec![Granted],
    ));
    // fast drift rotates the held Yes through aliasing views: the static
    // channel can misread it as a No before the sign becomes unreadable
    m.push(fault_scenario(
        "azimuth-drift-fast",
        FaultKind::AzimuthDrift { rate_rad_s: 0.5 },
        vec![Granted, Abandoned, Denied],
    ));
    m.push(fault_scenario(
        "facing-bias-mild",
        FaultKind::FacingBias { rad: 0.35 },
        vec![Granted],
    ));
    // 1.75 rad ≈ 100°: squarely in the recogniser's dead angle (Figure 4)
    m.push(fault_scenario(
        "facing-bias-dead-angle",
        FaultKind::FacingBias { rad: 1.75 },
        vec![Abandoned],
    ));
    m.push(fault_scenario(
        "led-failure-dim",
        FaultKind::LedFailure { brightness: 0.5 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "led-failure-dead",
        FaultKind::LedFailure { brightness: 0.0 },
        vec![Granted],
    ));
    // even a breeze can gust the drone across the 2 m separation floor
    // during the close-in poke — the safety monitor aborts, which is the
    // correct (conservative) behaviour
    m.push(fault_scenario(
        "wind-breeze",
        FaultKind::WindGust {
            speed: 3.0,
            gust: 1.5,
        },
        vec![Granted, Aborted],
    ));
    m.push(fault_scenario(
        "wind-gale",
        FaultKind::WindGust {
            speed: 8.0,
            gust: 4.0,
        },
        vec![Granted, Abandoned, Aborted],
    ));
    m.push(fault_scenario(
        "battery-sag-mild",
        FaultKind::BatterySag { capacity_wh: 25.0 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "battery-sag-critical",
        FaultKind::BatterySag { capacity_wh: 1.0 },
        vec![Abandoned, Aborted],
    ));
    m.push(fault_scenario(
        "delayed-response-mild",
        FaultKind::DelayedResponse { delay_s: 2.0 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "delayed-response-severe",
        FaultKind::DelayedResponse { delay_s: 9.0 },
        vec![Granted, Abandoned],
    ));
    m.push(scenario(
        "role-change-worker-to-visitor",
        SessionConfig::for_role(Role::Worker, true, 8),
        FaultPlan::single(
            8,
            FaultKind::RoleChange {
                at_s: 10.0,
                to: Role::Visitor,
            },
        ),
        vec![],
    ));
    m.push(scenario(
        "role-change-visitor-to-supervisor",
        SessionConfig::for_role(Role::Visitor, true, 9),
        FaultPlan::single(
            9,
            FaultKind::RoleChange {
                at_s: 25.0,
                to: Role::Supervisor,
            },
        ),
        vec![],
    ));

    // --- combined gauntlets ---
    m.push(scenario(
        "gauntlet-lossy-noisy-slow",
        scripted_base(42),
        FaultPlan {
            seed: 17,
            faults: vec![
                FaultKind::DroppedFrames { probability: 0.3 },
                FaultKind::NoiseBurst {
                    sigma: 25.0,
                    period_s: 5.0,
                    burst_s: 1.0,
                },
                FaultKind::DelayedResponse { delay_s: 3.0 },
            ],
        },
        vec![Granted, Abandoned, Denied],
    ));
    m.push(scenario(
        "wave-off-through-drops",
        SessionConfig::for_role(Role::Worker, false, 11).with_script(HumanScript::wave_off()),
        FaultPlan::single(11, FaultKind::DroppedFrames { probability: 0.35 }),
        vec![Denied, Abandoned],
    ));
    m.push(scenario(
        "wave-off-through-noise",
        SessionConfig::for_role(Role::Worker, false, 12).with_script(HumanScript::wave_off()),
        FaultPlan::single(
            12,
            FaultKind::NoiseBurst {
                sigma: 20.0,
                period_s: 6.0,
                burst_s: 1.0,
            },
        ),
        vec![Denied, Abandoned],
    ));

    // --- datalink faults: the negotiation over a lossy radio ---
    m.push(fault_scenario(
        "link-clean-baseline",
        // probability zero still routes everything over the (perfect) link
        FaultKind::LinkDrop { probability: 0.0 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "link-drop-light",
        FaultKind::LinkDrop { probability: 0.1 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "link-drop-heavy",
        FaultKind::LinkDrop { probability: 0.45 },
        vec![Granted, Abandoned],
    ));
    m.push(fault_scenario(
        "link-dup-storm",
        FaultKind::LinkDup { probability: 0.8 },
        vec![Granted],
    ));
    m.push(fault_scenario(
        "link-reorder-deep",
        FaultKind::LinkJitter { seconds: 0.8 },
        vec![Granted],
    ));
    // a 2 s outage is shorter than the 3 s lease: the link heals and the
    // negotiation completes (retransmission bridges the gap)
    m.push(fault_scenario(
        "link-partition-transient",
        FaultKind::LinkPartition {
            at_s: 10.0,
            for_s: 2.0,
        },
        vec![Granted, Abandoned],
    ));
    // a 30 s outage expires both leases: the drone failsafes autonomously
    // and the supervisor aborts — the committed lease-expiry posture
    m.push(fault_scenario(
        "link-partition-lease-expiry",
        FaultKind::LinkPartition {
            at_s: 10.0,
            for_s: 30.0,
        },
        vec![Aborted],
    ));
    m.push(fault_scenario(
        "link-partition-early",
        FaultKind::LinkPartition {
            at_s: 1.0,
            for_s: 1.0e6,
        },
        vec![Aborted],
    ));
    m.push(scenario(
        "link-gauntlet-drop-dup-reorder",
        scripted_base(42),
        FaultPlan {
            seed: 23,
            faults: vec![
                FaultKind::LinkDrop { probability: 0.25 },
                FaultKind::LinkDup { probability: 0.3 },
                FaultKind::LinkJitter { seconds: 0.5 },
            ],
        },
        vec![Granted, Abandoned, Denied],
    ));
    m.push(scenario(
        "wave-off-over-lossy-link",
        SessionConfig::for_role(Role::Worker, false, 13).with_script(HumanScript::wave_off()),
        FaultPlan::single(13, FaultKind::LinkDrop { probability: 0.3 }),
        vec![Denied, Abandoned],
    ));

    // --- external safety injection ---
    let mut early = scenario(
        "injected-safety-early",
        scripted_base(21),
        FaultPlan::none(),
        vec![Aborted],
    );
    early.inject_safety_at = Some(5.0);
    m.push(early);
    let mut mid = scenario(
        "injected-safety-mid-negotiation",
        scripted_base(21),
        FaultPlan::none(),
        vec![Aborted],
    );
    mid.inject_safety_at = Some(15.0);
    m.push(mid);

    m
}

/// Orchard-mission conformance cases: `(name, digest, summary)` rows for the
/// golden manifest, pinning the mission layer on top of the session layer.
pub fn mission_cases() -> Vec<(String, String, String)> {
    [
        ("mission-grid-3x3", 7u64, 3u32),
        ("mission-grid-4x4", 99, 4),
    ]
    .into_iter()
    .map(|(name, seed, side)| {
        let map = OrchardMap::grid(side, side, 4.0, 3.0);
        let cfg = MissionConfig {
            human_count: 3,
            ..Default::default()
        };
        let stats = Mission::new(cfg, map, seed).run();
        let text = format!("{stats:?}");
        let summary = format!(
            "traps_read={} skipped={} negotiations={}",
            stats.traps_read,
            stats.traps_skipped,
            stats.negotiations.total()
        );
        (name.to_owned(), digest_hex(&text), summary)
    })
    .collect()
}

/// Linked-fleet conformance cases: `(name, digest, summary)` rows pinning
/// the datalink-supervised fleet (reliable dispatch, lease supervision,
/// re-dispatch after radio death) on top of the link layer, in
/// lockstep-compat mode (the committed manifest).
pub fn linked_fleet_cases() -> Vec<(String, String, String)> {
    linked_fleet_cases_mode(ScheduleMode::Lockstep)
}

/// [`linked_fleet_cases`] under an explicit scheduler mode. Event-driven
/// rows land in the event manifest: same campaigns, clock jumping between
/// due times instead of ticking.
pub fn linked_fleet_cases_mode(mode: ScheduleMode) -> Vec<(String, String, String)> {
    let cases: [(&str, u64, LinkQuality, Vec<RadioFailure>); 3] = [
        ("fleet-link-clean", 5, LinkQuality::clean(), vec![]),
        (
            "fleet-link-lossy",
            5,
            LinkQuality::clean().with_drop(0.3).with_jitter(0.3),
            vec![],
        ),
        (
            "fleet-link-radio-death",
            5,
            LinkQuality::clean().with_drop(0.1),
            vec![RadioFailure {
                drone: 1,
                at_s: 15.0,
            }],
        ),
    ];
    cases
        .into_iter()
        .map(|(name, seed, quality, failures)| {
            let map = OrchardMap::grid(3, 4, 4.0, 3.0);
            let cfg = LinkedFleetConfig {
                quality,
                failures,
                ..Default::default()
            };
            let stats = run_linked_fleet_mode(&cfg, &map, seed, mode);
            let text = format!("{stats:?}");
            let summary = format!(
                "confirmed={}/{} lost={} reassigned={} dup_reads={}",
                stats.traps_confirmed,
                stats.traps_total,
                stats.drones_lost,
                stats.reassigned,
                stats.duplicate_reads
            );
            (name.to_owned(), digest_hex(&text), summary)
        })
        .collect()
}

/// Where the golden digest manifest lives (repo root, committed).
pub fn golden_path() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/scenario_digests.txt"
    )
}

/// Where the event-driven golden manifest lives (repo root, committed).
/// Pins [`ScheduleMode::EventDriven`] separately: event mode is allowed to
/// differ behaviourally from lockstep, but must be deterministic and
/// worker-invariant.
pub fn golden_event_path() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/scenario_digests_event.txt"
    )
}

/// Formats manifest rows (`name digest outcome`) into the committed text.
pub fn format_manifest(rows: &[(String, String, String)]) -> String {
    let mut out = String::from(
        "# Golden trace digests: one row per scenario, `name digest outcome`.\n\
         # Regenerate with `cargo run --release -p hdc-sim --bin run_scenarios -- --bless`\n\
         # after reviewing the behavioural diff.\n",
    );
    for (name, digest, outcome) in rows {
        out.push_str(&format!("{name} {digest} {outcome}\n"));
    }
    out
}

/// Parses a golden manifest back into `(name, digest, outcome)` rows.
pub fn parse_manifest(text: &str) -> Vec<(String, String, String)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            let name = parts.next()?.to_owned();
            let digest = parts.next()?.to_owned();
            let outcome = parts.collect::<Vec<_>>().join(" ");
            Some((name, digest, outcome))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::EventLog;

    fn empty_report(outcome: SessionOutcome) -> SessionReport {
        SessionReport {
            outcome,
            duration_s: 10.0,
            frames_processed: 0,
            frames_recognized: 0,
            frames_dropped: 0,
            frames_duplicated: 0,
            ring_mode: LedMode::Navigation,
            safety_engaged: false,
            grounded: false,
            link: None,
            log: EventLog::new(),
        }
    }

    #[test]
    fn matrix_is_large_named_and_unique() {
        let matrix = build_matrix();
        assert!(matrix.len() >= 30, "only {} scenarios", matrix.len());
        let mut names: Vec<_> = matrix.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), matrix.len(), "scenario names must be unique");
    }

    #[test]
    fn invariant_checker_catches_entry_without_yes() {
        let mut report = empty_report(SessionOutcome::Granted);
        report
            .log
            .push(5.0, LogEntry::Action(ProtocolAction::EnterArea));
        let violations = check_invariants(&report);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("without a prior recognised Yes"));
    }

    #[test]
    fn invariant_checker_catches_action_after_danger_land() {
        let mut report = empty_report(SessionOutcome::Aborted);
        report.safety_engaged = true;
        report.grounded = true;
        report.ring_mode = LedMode::Danger;
        report
            .log
            .push(3.0, LogEntry::Action(ProtocolAction::DangerLand));
        report
            .log
            .push(4.0, LogEntry::Action(ProtocolAction::ExecuteNod));
        let violations = check_invariants(&report);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("after DangerLand"));
    }

    #[test]
    fn invariant_checker_catches_unlatched_danger_ring() {
        let mut report = empty_report(SessionOutcome::Aborted);
        report.safety_engaged = true;
        report.grounded = true;
        report.ring_mode = LedMode::Navigation;
        let violations = check_invariants(&report);
        assert!(violations.iter().any(|v| v.contains("instead of Danger")));
    }

    #[test]
    fn grading_distinguishes_pass_degrade_fail() {
        let sc = scenario(
            "t",
            scripted_base(1),
            FaultPlan::none(),
            vec![SessionOutcome::Granted],
        );
        let mut ok = empty_report(SessionOutcome::Granted);
        ok.log.push(1.0, LogEntry::Recognized(Some("Yes".into())));
        assert_eq!(grade_report(&sc, &ok).grade, Grade::Pass);
        let degraded = empty_report(SessionOutcome::Abandoned);
        assert_eq!(grade_report(&sc, &degraded).grade, Grade::Degrade);
        let hung = empty_report(SessionOutcome::StillRunning);
        assert_eq!(grade_report(&sc, &hung).grade, Grade::Fail);
    }

    #[test]
    fn manifest_round_trips() {
        let rows = vec![
            ("a".to_owned(), "00ff".to_owned(), "granted".to_owned()),
            ("b".to_owned(), "11aa".to_owned(), "denied".to_owned()),
        ];
        assert_eq!(parse_manifest(&format_manifest(&rows)), rows);
    }
}
