//! Recognition-rate sweeps under fault intensity.
//!
//! Reproduces the paper's Figure-4 finding — recognition collapses in a
//! dead angle around ~100° azimuth — and extends it with a noise-intensity
//! axis: the same azimuth sweep is repeated at several Gaussian-noise
//! levels, showing the cliff both deepening and widening as the sensor
//! degrades.

use hdc_core::{
    CollaborationSession, DatalinkConfig, HumanScript, Role, ScriptedResponse, SessionConfig,
    SessionOutcome,
};
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_link::LinkQuality;
use hdc_raster::noise;
use hdc_runtime::WorkPool;
use hdc_vision::{FrameScratch, PipelineConfig, RecognitionPipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One point of the sweep: all signs rendered at one azimuth under one
/// noise level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Signaller azimuth, degrees.
    pub azimuth_deg: f64,
    /// Gaussian noise standard deviation, intensity levels.
    pub sigma: f64,
    /// Signs recognised correctly at this point.
    pub correct: usize,
    /// Signs attempted.
    pub total: usize,
}

impl SweepPoint {
    /// Fraction recognised correctly.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// The noise levels of the sweep, clean first.
const SIGMAS: [f64; 3] = [0.0, 15.0, 40.0];
/// Azimuth steps: 0°..180° in 15° increments.
const AZ_STEPS: u32 = 12;

/// The RNG seed of one grid point, derived from the sweep seed by a
/// SplitMix64-style mix so every point owns an independent noise stream.
/// Point independence is what lets the grid fan out over a pool with the
/// exact same numbers as the serial sweep.
fn point_seed(seed: u64, sigma_idx: usize, az_step: u32) -> u64 {
    let mut z = seed
        ^ (sigma_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(az_step).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates one grid point: all signs at one azimuth under one noise level,
/// through caller-provided scratch. Pure function of `(seed, sigma, azimuth)`.
fn sweep_point(
    pipeline: &RecognitionPipeline,
    scratch: &mut FrameScratch,
    seed: u64,
    sigma_idx: usize,
    az_step: u32,
) -> SweepPoint {
    let sigma = SIGMAS[sigma_idx];
    let azimuth_deg = f64::from(az_step) * 15.0;
    let mut rng = SmallRng::seed_from_u64(point_seed(seed, sigma_idx, az_step));
    let mut correct = 0;
    let mut total = 0;
    for sign in MarshallingSign::ALL {
        let mut frame = render_sign(sign, &ViewSpec::paper_default(azimuth_deg, 5.0, 3.0));
        if sigma > 0.0 {
            noise::add_gaussian(&mut frame, sigma, &mut rng);
        }
        let result = pipeline.recognize_with(scratch, &frame);
        total += 1;
        if result.decision == Some(sign.label()) {
            correct += 1;
        }
    }
    SweepPoint {
        azimuth_deg,
        sigma,
        correct,
        total,
    }
}

/// Sweeps azimuth × noise intensity with the pipeline calibrated at the
/// paper's canonical 0° view. Deterministic for a given `seed`; serial
/// shorthand for [`dead_angle_sweep_with`] on a one-worker pool.
pub fn dead_angle_sweep(seed: u64) -> Vec<SweepPoint> {
    dead_angle_sweep_with(&WorkPool::new(1), seed)
}

/// [`dead_angle_sweep`] fanned out over a work pool: grid points carry
/// independently derived noise streams, so the result is identical at every
/// worker count (and to the serial sweep).
pub fn dead_angle_sweep_with(pool: &WorkPool, seed: u64) -> Vec<SweepPoint> {
    let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
    pipeline.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    let grid: Vec<(usize, u32)> = (0..SIGMAS.len())
        .flat_map(|s| (0..=AZ_STEPS).map(move |az| (s, az)))
        .collect();
    pool.map_indexed(
        &grid,
        |_| FrameScratch::new(),
        |scratch, _, &(sigma_idx, az_step)| {
            sweep_point(&pipeline, scratch, seed, sigma_idx, az_step)
        },
    )
}

/// One point of the link-loss sweep: the outcome distribution of full
/// closed-loop sessions negotiated over a symmetric lossy datalink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossPoint {
    /// Per-frame drop probability applied to both link directions.
    pub drop_p: f64,
    /// Sessions run at this loss rate.
    pub sessions: usize,
    /// Sessions ending Granted (negotiation completed, access given).
    pub granted: usize,
    /// Sessions ending Denied or Abandoned (the safe-retreat postures).
    pub retreated: usize,
    /// Sessions ending Aborted (the lease-expiry / safety failsafe).
    pub failsafed: usize,
    /// Terminal sessions whose safety posture was wrong (must stay 0):
    /// an abort without the latched all-red grounded posture, or a
    /// non-terminal session at the time cap.
    pub unsafe_terminations: usize,
    /// Mean session duration, simulated seconds.
    pub mean_duration_s: f64,
}

/// The drop probabilities of the link-loss sweep.
const LOSS_STEPS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.45, 0.6];

/// Runs one linked session at drop rate `drop_p` and classifies its end.
/// Returns `(outcome, duration, safe)`.
fn loss_session(seed: u64, drop_p: f64) -> (SessionOutcome, f64, bool) {
    let quality = LinkQuality::clean().with_drop(drop_p);
    let config = SessionConfig::for_role(Role::Supervisor, true, seed)
        .with_script(HumanScript::answering(ScriptedResponse::Sign(
            MarshallingSign::Yes,
        )))
        .with_datalink(DatalinkConfig::symmetric(quality));
    let mut s = CollaborationSession::new(config);
    while !s.is_done() && s.time() < 300.0 {
        s.step();
    }
    let done = s.is_done();
    let report = s.into_report();
    let safe = match report.outcome {
        SessionOutcome::Aborted => report.safety_engaged && report.grounded,
        SessionOutcome::StillRunning => false,
        _ => done,
    };
    (report.outcome, report.duration_s, safe)
}

/// Sweeps link loss rate against session outcome: at each drop probability,
/// `seeds_per_point` full closed-loop sessions negotiate over the lossy
/// datalink and the outcome distribution is recorded. Deterministic for a
/// given `seed` and identical at every worker count (each session derives
/// an independent seed).
pub fn link_loss_sweep_with(pool: &WorkPool, seed: u64, seeds_per_point: usize) -> Vec<LossPoint> {
    let grid: Vec<(usize, u32)> = (0..LOSS_STEPS.len())
        .flat_map(|p| (0..seeds_per_point as u32).map(move |s| (p, s)))
        .collect();
    let runs = pool.map_indexed(
        &grid,
        |_| (),
        |_, _, &(p_idx, s_idx)| {
            let session_seed = point_seed(seed, p_idx, s_idx);
            loss_session(session_seed, LOSS_STEPS[p_idx])
        },
    );
    LOSS_STEPS
        .iter()
        .enumerate()
        .map(|(p_idx, &drop_p)| {
            let mut point = LossPoint {
                drop_p,
                sessions: 0,
                granted: 0,
                retreated: 0,
                failsafed: 0,
                unsafe_terminations: 0,
                mean_duration_s: 0.0,
            };
            for (g, &(gp, _)) in grid.iter().enumerate() {
                if gp != p_idx {
                    continue;
                }
                let (outcome, duration, safe) = runs[g];
                point.sessions += 1;
                point.mean_duration_s += duration;
                if !safe {
                    point.unsafe_terminations += 1;
                }
                match outcome {
                    SessionOutcome::Granted => point.granted += 1,
                    SessionOutcome::Denied | SessionOutcome::Abandoned => point.retreated += 1,
                    SessionOutcome::Aborted => point.failsafed += 1,
                    SessionOutcome::StillRunning => {}
                }
            }
            if point.sessions > 0 {
                point.mean_duration_s /= point.sessions as f64;
            }
            point
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_identical_at_every_worker_count() {
        let serial = dead_angle_sweep(5);
        for workers in [2usize, 4] {
            let parallel = dead_angle_sweep_with(&WorkPool::new(workers), 5);
            assert_eq!(parallel, serial, "{workers}-worker sweep drifted");
        }
    }

    #[test]
    fn link_loss_sweep_is_deterministic_and_safe() {
        let a = link_loss_sweep_with(&WorkPool::new(1), 7, 1);
        let b = link_loss_sweep_with(&WorkPool::new(2), 7, 1);
        assert_eq!(a, b, "loss sweep drifted across worker counts");
        assert_eq!(a[0].granted, a[0].sessions, "a clean link must grant");
        for p in &a {
            assert_eq!(p.unsafe_terminations, 0, "unsafe terminal posture: {p:?}");
            assert_eq!(
                p.granted + p.retreated + p.failsafed,
                p.sessions,
                "every session must terminate in a classified posture: {p:?}"
            );
        }
    }

    #[test]
    fn clean_sweep_shows_the_dead_angle_cliff() {
        let points = dead_angle_sweep(5);
        let clean: Vec<_> = points.iter().filter(|p| p.sigma == 0.0).collect();
        let frontal = clean
            .iter()
            .find(|p| p.azimuth_deg == 0.0)
            .expect("frontal point");
        let dead = clean
            .iter()
            .find(|p| (p.azimuth_deg - 105.0).abs() < 1e-9)
            .expect("dead-angle point");
        assert_eq!(frontal.rate(), 1.0, "frontal views recognise perfectly");
        assert!(
            dead.rate() < frontal.rate(),
            "the ~100° dead angle must depress recognition: {points:?}"
        );
    }
}
