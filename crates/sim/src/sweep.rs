//! Recognition-rate sweeps under fault intensity.
//!
//! Reproduces the paper's Figure-4 finding — recognition collapses in a
//! dead angle around ~100° azimuth — and extends it with a noise-intensity
//! axis: the same azimuth sweep is repeated at several Gaussian-noise
//! levels, showing the cliff both deepening and widening as the sensor
//! degrades.

use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::noise;
use hdc_vision::{PipelineConfig, RecognitionPipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One point of the sweep: all signs rendered at one azimuth under one
/// noise level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Signaller azimuth, degrees.
    pub azimuth_deg: f64,
    /// Gaussian noise standard deviation, intensity levels.
    pub sigma: f64,
    /// Signs recognised correctly at this point.
    pub correct: usize,
    /// Signs attempted.
    pub total: usize,
}

impl SweepPoint {
    /// Fraction recognised correctly.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Sweeps azimuth × noise intensity with the pipeline calibrated at the
/// paper's canonical 0° view. Deterministic for a given `seed`.
pub fn dead_angle_sweep(seed: u64) -> Vec<SweepPoint> {
    let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
    pipeline.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = Vec::new();
    for sigma in [0.0, 15.0, 40.0] {
        for az_step in 0..=12 {
            let azimuth_deg = f64::from(az_step) * 15.0;
            let mut correct = 0;
            let mut total = 0;
            for sign in MarshallingSign::ALL {
                let mut frame = render_sign(sign, &ViewSpec::paper_default(azimuth_deg, 5.0, 3.0));
                if sigma > 0.0 {
                    noise::add_gaussian(&mut frame, sigma, &mut rng);
                }
                let result = pipeline.recognize(&frame);
                total += 1;
                if result.decision.as_deref() == Some(sign.label()) {
                    correct += 1;
                }
            }
            points.push(SweepPoint {
                azimuth_deg,
                sigma,
                correct,
                total,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweep_shows_the_dead_angle_cliff() {
        let points = dead_angle_sweep(5);
        let clean: Vec<_> = points.iter().filter(|p| p.sigma == 0.0).collect();
        let frontal = clean
            .iter()
            .find(|p| p.azimuth_deg == 0.0)
            .expect("frontal point");
        let dead = clean
            .iter()
            .find(|p| (p.azimuth_deg - 105.0).abs() < 1e-9)
            .expect("dead-angle point");
        assert_eq!(frontal.rate(), 1.0, "frontal views recognise perfectly");
        assert!(
            dead.rate() < frontal.rate(),
            "the ~100° dead angle must depress recognition: {points:?}"
        );
    }
}
