//! `hdc-sim` — deterministic fault injection and scenario conformance.
//!
//! The paper's evaluation (Section IV) probes recognition under clean
//! conditions only; this crate is the degraded-conditions counterpart. It
//! drives the whole stack — figure rendering → vision recognition →
//! session/protocol → drone dynamics → orchard missions — through seeded
//! fault schedules and checks three things per named scenario:
//!
//! 1. the **outcome class** matches the scenario's expectation,
//! 2. the **safety invariants** hold (entry only after a recognised Yes,
//!    wave-off always honoured, the all-red danger posture is terminal), and
//! 3. the **canonical event trace** matches a committed golden digest, so
//!    any behavioural drift in protocol, patterns or recognition surfaces as
//!    a named-scenario diff instead of a silent change.
//!
//! Faults compose: a [`fault::FaultPlan`] is a list of seed-deterministic
//! injectors ([`fault::FaultKind`]) applied partly through `SessionConfig`
//! (wind, battery) and partly through the `SessionFaults` hook layer
//! (frame drops/duplication, noise bursts, occlusion, azimuth drift, facing
//! bias, delayed responses, role changes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod scenario;
pub mod sweep;
pub mod trace;

pub use fault::{FaultKind, FaultPlan, PlanFaults};
pub use hdc_runtime::ScheduleMode;
pub use scenario::{
    build_matrix, linked_fleet_cases, linked_fleet_cases_mode, mission_cases, run_matrix_mode,
    run_matrix_with, run_scenario, run_scenario_with, Grade, Scenario, ScenarioResult,
};
pub use sweep::{dead_angle_sweep, dead_angle_sweep_with, link_loss_sweep_with, LossPoint};
pub use trace::{canonical_trace, digest_hex, fnv1a64};
