//! Composable, seed-deterministic fault injectors.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultKind`] injectors plus a
//! seed. Environment-level faults (wind, battery sag) are applied to the
//! `SessionConfig` before the session is built; channel-level faults
//! (frame loss, noise bursts, occlusion, drift, delays, role changes) are
//! delivered through the session's `SessionFaults` hook layer by the
//! [`PlanFaults`] object the plan compiles into. Everything a plan does is a
//! pure function of `(plan, seed)` — two sessions built from the same plan
//! and seed replay the exact same disturbance schedule.

use hdc_core::{DatalinkConfig, FrameFate, Role, SessionConfig, SessionFaults};
use hdc_drone::WindModel;
use hdc_geometry::Vec3;
use hdc_raster::{noise, GrayImage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One fault injector. Intensities are explicit so a scenario matrix can
/// exercise each injector at several levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Each camera frame is lost with this probability (transport loss).
    DroppedFrames {
        /// Per-frame drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Each delivered frame is processed twice with this probability (stuck
    /// frame buffer).
    DuplicatedFrames {
        /// Per-frame duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// Periodic bursts of Gaussian sensor noise strong enough to disturb the
    /// binarisation stage.
    NoiseBurst {
        /// Noise standard deviation during a burst, intensity levels.
        sigma: f64,
        /// Burst cycle period, seconds.
        period_s: f64,
        /// Burst duration at the start of each cycle, seconds.
        burst_s: f64,
    },
    /// The bottom fraction of every frame is blanked (foliage occluding the
    /// signaller's lower body).
    Occlusion {
        /// Fraction of the image height occluded, `[0, 1]`.
        fraction: f64,
    },
    /// The signaller slowly rotates while holding a sign — toward the
    /// recogniser's ~100° azimuth dead angle at high rates.
    AzimuthDrift {
        /// Heading drift rate, radians/second.
        rate_rad_s: f64,
    },
    /// The human consistently faces away from the drone by this much when
    /// responding.
    FacingBias {
        /// Facing error, radians.
        rad: f64,
    },
    /// The LED ring's output degrades (a failing channel). Recognition does
    /// not read the ring, so this perturbs the reported hardware posture
    /// only — the conformance layer checks the danger latch still reports.
    LedFailure {
        /// Remaining ring brightness, `[0, 1]`; `0.0` is a dead ring.
        brightness: f64,
    },
    /// Steady wind with gusts, blowing the drone during transits and
    /// patterns.
    WindGust {
        /// Mean wind speed, m/s.
        speed: f64,
        /// Peak gust amplitude on top of the mean, m/s.
        gust: f64,
    },
    /// A sagging battery pack: same platform, less energy. Low capacities
    /// cross the reserve threshold mid-session and trigger the safety land.
    BatterySag {
        /// Pack capacity, watt-hours (healthy pack: 71 Wh).
        capacity_wh: f64,
    },
    /// The human takes this much longer than their profile/script latency to
    /// respond.
    DelayedResponse {
        /// Extra latency, seconds.
        delay_s: f64,
    },
    /// A mid-negotiation shift change: the human's role switches at `at_s`.
    RoleChange {
        /// Simulated time of the change, seconds.
        at_s: f64,
        /// The new role.
        to: Role,
    },
    /// Negotiation traffic rides the simulated datalink, which loses each
    /// message with this probability (both directions). The endpoints'
    /// retransmission recovers every loss short of a partition.
    LinkDrop {
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// The datalink duplicates each message with this probability; the
    /// endpoint dedup window must discard every extra copy.
    LinkDup {
        /// Per-message duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// Uniform datalink latency jitter up to this many seconds — messages
    /// arrive out of order; the endpoint reorder window restores sequence.
    LinkJitter {
        /// Maximum extra latency (and so reordering depth), seconds.
        seconds: f64,
    },
    /// The datalink partitions for a window (both directions). Windows
    /// longer than the lease timeout force the drone's autonomous failsafe
    /// and the supervisor's loss declaration.
    LinkPartition {
        /// Partition start, seconds.
        at_s: f64,
        /// Partition length, seconds.
        for_s: f64,
    },
}

/// An ordered, seeded collection of fault injectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the plan's own RNG stream (frame-loss coin flips, noise).
    pub seed: u64,
    /// The injectors, applied in order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with one injector.
    pub fn single(seed: u64, fault: FaultKind) -> Self {
        FaultPlan {
            seed,
            faults: vec![fault],
        }
    }

    /// Applies the environment-level faults to a session config (wind,
    /// battery, datalink impairments). Channel-level faults are delivered by
    /// [`FaultPlan::build`].
    pub fn apply_config(&self, config: &mut SessionConfig) {
        // any link fault routes the negotiation over the simulated datalink
        let impair =
            |config: &mut SessionConfig,
             f: &dyn Fn(hdc_link::LinkQuality) -> hdc_link::LinkQuality| {
                let mut datalink = config.datalink.unwrap_or_else(DatalinkConfig::clean);
                datalink.uplink = f(datalink.uplink);
                datalink.downlink = f(datalink.downlink);
                config.datalink = Some(datalink);
            };
        for fault in &self.faults {
            match *fault {
                FaultKind::WindGust { speed, gust } => {
                    config.wind = WindModel::breeze(Vec3::new(1.0, 0.4, 0.0), speed, gust);
                }
                FaultKind::BatterySag { capacity_wh } => config.battery_wh = capacity_wh,
                FaultKind::LinkDrop { probability } => {
                    impair(config, &|q| q.with_drop(probability));
                }
                FaultKind::LinkDup { probability } => {
                    impair(config, &|q| q.with_dup(probability));
                }
                FaultKind::LinkJitter { seconds } => {
                    impair(config, &|q| q.with_jitter(seconds));
                }
                FaultKind::LinkPartition { at_s, for_s } => {
                    impair(config, &|q| q.with_partition(at_s, for_s));
                }
                _ => {}
            }
        }
    }

    /// The ring brightness an [`FaultKind::LedFailure`] injector imposes, if
    /// any (applied by the harness through `drone_mut().ring_mut()`).
    pub fn led_brightness(&self) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::LedFailure { brightness } => Some(*brightness),
            _ => None,
        })
    }

    /// Compiles the channel-level faults into a `SessionFaults` hook object.
    pub fn build(&self) -> PlanFaults {
        let mut p = PlanFaults {
            rng: SmallRng::seed_from_u64(self.seed ^ 0x5DEE_CE66_D15C_0FA7),
            drop_p: 0.0,
            dup_p: 0.0,
            noise: None,
            occlusion: 0.0,
            drift: 0.0,
            facing: 0.0,
            delay: 0.0,
            role_change: None,
            role_fired: false,
        };
        for fault in &self.faults {
            match *fault {
                FaultKind::DroppedFrames { probability } => p.drop_p = probability,
                FaultKind::DuplicatedFrames { probability } => p.dup_p = probability,
                FaultKind::NoiseBurst {
                    sigma,
                    period_s,
                    burst_s,
                } => p.noise = Some((sigma, period_s, burst_s)),
                FaultKind::Occlusion { fraction } => p.occlusion = fraction,
                FaultKind::AzimuthDrift { rate_rad_s } => p.drift = rate_rad_s,
                FaultKind::FacingBias { rad } => p.facing = rad,
                FaultKind::DelayedResponse { delay_s } => p.delay = delay_s,
                FaultKind::RoleChange { at_s, to } => p.role_change = Some((at_s, to)),
                FaultKind::LedFailure { .. }
                | FaultKind::WindGust { .. }
                | FaultKind::BatterySag { .. }
                | FaultKind::LinkDrop { .. }
                | FaultKind::LinkDup { .. }
                | FaultKind::LinkJitter { .. }
                | FaultKind::LinkPartition { .. } => {}
            }
        }
        p
    }
}

/// The compiled hook layer a [`FaultPlan`] installs into a session.
#[derive(Debug)]
pub struct PlanFaults {
    rng: SmallRng,
    drop_p: f64,
    dup_p: f64,
    noise: Option<(f64, f64, f64)>,
    occlusion: f64,
    drift: f64,
    facing: f64,
    delay: f64,
    role_change: Option<(f64, Role)>,
    role_fired: bool,
}

impl SessionFaults for PlanFaults {
    fn on_frame(&mut self, t: f64, frame: &mut GrayImage) -> FrameFate {
        if let Some((sigma, period_s, burst_s)) = self.noise {
            if t.rem_euclid(period_s) < burst_s {
                noise::add_gaussian(frame, sigma, &mut self.rng);
            }
        }
        if self.occlusion > 0.0 {
            let h = frame.height();
            let cut = ((f64::from(h) * self.occlusion).round() as u32).min(h);
            for y in (h - cut)..h {
                for x in 0..frame.width() {
                    frame.set(x, y, 0);
                }
            }
        }
        if self.drop_p > 0.0 && self.rng.gen::<f64>() < self.drop_p {
            return FrameFate::Drop;
        }
        if self.dup_p > 0.0 && self.rng.gen::<f64>() < self.dup_p {
            return FrameFate::Duplicate;
        }
        FrameFate::Deliver
    }

    fn response_delay(&mut self, _t: f64) -> f64 {
        self.delay
    }

    fn facing_bias(&mut self, _t: f64) -> f64 {
        self.facing
    }

    fn heading_drift(&mut self, _t: f64) -> f64 {
        self.drift
    }

    fn role_change(&mut self, t: f64) -> Option<Role> {
        match self.role_change {
            Some((at_s, to)) if !self.role_fired && t >= at_s => {
                self.role_fired = true;
                Some(to)
            }
            _ => None,
        }
    }

    fn next_due(&mut self, _now: f64) -> Option<f64> {
        // The one time-triggered injector is the role change; everything
        // else either rides frame events (drops, noise, occlusion, facing)
        // or coalesces exactly over idle gaps (constant heading drift).
        match self.role_change {
            Some((at_s, _)) if !self.role_fired => Some(at_s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let plan = FaultPlan {
            seed: 11,
            faults: vec![
                FaultKind::DroppedFrames { probability: 0.5 },
                FaultKind::NoiseBurst {
                    sigma: 30.0,
                    period_s: 4.0,
                    burst_s: 1.0,
                },
            ],
        };
        let run = |plan: &FaultPlan| {
            let mut f = plan.build();
            (0..40)
                .map(|i| {
                    let mut img = GrayImage::filled(8, 8, 200);
                    let fate = f.on_frame(i as f64 * 0.5, &mut img);
                    (fate, img.pixels().to_vec())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&plan), run(&plan));
    }

    #[test]
    fn occlusion_blanks_the_bottom_rows() {
        let plan = FaultPlan::single(1, FaultKind::Occlusion { fraction: 0.5 });
        let mut f = plan.build();
        let mut img = GrayImage::filled(4, 4, 255);
        assert_eq!(f.on_frame(0.0, &mut img), FrameFate::Deliver);
        assert_eq!(img.get(0, 0), Some(255));
        assert_eq!(img.get(0, 3), Some(0));
        assert_eq!(img.get(3, 2), Some(0));
    }

    #[test]
    fn config_faults_reach_the_session_config() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                FaultKind::WindGust {
                    speed: 5.0,
                    gust: 2.0,
                },
                FaultKind::BatterySag { capacity_wh: 10.0 },
            ],
        };
        let mut cfg = SessionConfig::for_role(Role::Worker, true, 1);
        plan.apply_config(&mut cfg);
        assert!((cfg.wind.max_speed() - 7.0).abs() < 1e-9);
        assert_eq!(cfg.battery_wh, 10.0);
    }

    #[test]
    fn link_faults_install_and_compose_a_datalink() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                FaultKind::LinkDrop { probability: 0.2 },
                FaultKind::LinkJitter { seconds: 0.6 },
                FaultKind::LinkPartition {
                    at_s: 10.0,
                    for_s: 4.0,
                },
            ],
        };
        let mut cfg = SessionConfig::for_role(Role::Worker, true, 1);
        assert!(cfg.datalink.is_none());
        plan.apply_config(&mut cfg);
        let datalink = cfg.datalink.expect("link faults must install a datalink");
        assert_eq!(datalink.uplink.drop_p, 0.2);
        assert_eq!(datalink.uplink.jitter_s, 0.6);
        assert_eq!(datalink.downlink.partition_at_s, 10.0);
        assert_eq!(datalink.downlink.partition_for_s, 4.0);
    }

    #[test]
    fn role_change_fires_once() {
        let plan = FaultPlan::single(
            0,
            FaultKind::RoleChange {
                at_s: 2.0,
                to: Role::Visitor,
            },
        );
        let mut f = plan.build();
        assert_eq!(f.role_change(1.0), None);
        assert_eq!(f.role_change(2.0), Some(Role::Visitor));
        assert_eq!(f.role_change(3.0), None);
    }

    #[test]
    fn next_due_tracks_the_pending_role_change_only() {
        let plan = FaultPlan::single(
            0,
            FaultKind::RoleChange {
                at_s: 2.0,
                to: Role::Visitor,
            },
        );
        let mut f = plan.build();
        assert_eq!(f.next_due(0.0), Some(2.0));
        f.role_change(2.0);
        assert_eq!(f.next_due(2.0), None, "a fired injector schedules nothing");

        let mut quiet = FaultPlan::single(0, FaultKind::AzimuthDrift { rate_rad_s: 0.01 }).build();
        assert_eq!(quiet.next_due(0.0), None, "constant drift coalesces");
    }
}
