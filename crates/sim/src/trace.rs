//! Canonical traces and trace digests.
//!
//! A scenario's behaviour is witnessed by its [`EventLog`]. The log is
//! reduced to a canonical text form (one line per entry, time rounded to the
//! 0.1 s simulation step) and hashed with FNV-1a/64; the hex digest is what
//! gets committed under `tests/golden/` and compared in CI. Rounding to the
//! step size keeps the text stable against formatting churn while still
//! pinning the exact event order and timing.

use hdc_core::EventLog;
use std::fmt::Write as _;

/// Reduces an event log to its canonical one-line-per-entry text form.
pub fn canonical_trace(log: &EventLog) -> String {
    let mut out = String::new();
    for (t, e) in log.entries() {
        let _ = writeln!(out, "{t:.1} {e}");
    }
    out
}

/// FNV-1a 64-bit hash of a string.
///
/// Thin string-typed wrapper over the shared byte-slice digest in
/// [`hdc_raster::digest`] (the same digest the vision layer's strict
/// temporal gate uses for frame identity), kept here so golden-digest
/// callers keep their historical signature.
pub fn fnv1a64(text: &str) -> u64 {
    hdc_raster::digest::fnv1a64(text.as_bytes())
}

/// The 16-hex-character digest of a canonical trace.
pub fn digest_hex(trace: &str) -> String {
    format!("{:016x}", fnv1a64(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::LogEntry;

    #[test]
    fn fnv_matches_reference_vectors() {
        // standard FNV-1a/64 test vectors
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn trace_is_one_line_per_entry_with_rounded_times() {
        let mut log = EventLog::new();
        log.push(0.30000000000000004, LogEntry::HumanIdle);
        log.push(1.25, LogEntry::Note("x".into()));
        let text = canonical_trace(&log);
        assert_eq!(text, "0.3 human lowers arms\n1.2 note: x\n");
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut log = EventLog::new();
        log.push(1.0, LogEntry::HumanIdle);
        let a = digest_hex(&canonical_trace(&log));
        assert_eq!(a, digest_hex(&canonical_trace(&log)));
        log.push(2.0, LogEntry::HumanIdle);
        assert_ne!(a, digest_hex(&canonical_trace(&log)));
    }
}
