//! Scenario-matrix entry point (the CI `scenarios` job).
//!
//! Runs the full committed matrix plus the orchard-mission cases and the
//! dead-angle recognition sweep, writes `RESULTS_scenarios.json` at the
//! repo root, and compares every trace digest against the golden manifest
//! in `tests/golden/scenario_digests.txt`.
//!
//! * `--threads N` sizes the work pool the matrix and sweep fan out over
//!   (default: available parallelism). Scenarios are seed-deterministic and
//!   independent, so every thread count reproduces the same digests — the
//!   CI `scenarios` job runs with `--threads 2` to prove it;
//! * `--bless` rewrites the golden manifest from the current run (do this
//!   only after reviewing the behavioural diff);
//! * any invariant failure or unblessed digest drift exits non-zero.

use hdc_runtime::{available_workers, threads_from_args, ScheduleMode, WorkPool};
use hdc_sim::scenario::{format_manifest, golden_event_path, golden_path, parse_manifest};
use hdc_sim::sweep::{dead_angle_sweep_with, link_loss_sweep_with};
use hdc_sim::{
    build_matrix, linked_fleet_cases_mode, mission_cases, run_matrix_mode, Grade, ScenarioResult,
};
use std::fmt::Write as _;
use std::process::ExitCode;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Compares produced manifest rows against a committed manifest file.
/// Returns the number of drifting rows (0 = conformant).
fn verify_manifest(label: &str, path: &str, rows: &[(String, String, String)]) -> Option<usize> {
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("no {label} manifest at {path} ({e}); run with --bless to create it");
            return None;
        }
    };
    let committed_rows = parse_manifest(&committed);
    let mut drift = 0;
    for (name, digest, outcome) in rows {
        match committed_rows.iter().find(|(n, _, _)| n == name) {
            Some((_, want_digest, want_outcome)) => {
                if digest != want_digest || outcome != want_outcome {
                    eprintln!(
                        "GOLDEN DRIFT [{label}] {name}: have {digest}/{outcome}, \
                         committed {want_digest}/{want_outcome}"
                    );
                    drift += 1;
                }
            }
            None => {
                eprintln!("GOLDEN DRIFT [{label}] {name}: not in the committed manifest");
                drift += 1;
            }
        }
    }
    for (name, _, _) in &committed_rows {
        if !rows.iter().any(|(n, _, _)| n == name) {
            eprintln!("GOLDEN DRIFT [{label}] {name}: committed but no longer produced");
            drift += 1;
        }
    }
    Some(drift)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let bless = args.iter().any(|a| a == "--bless");
    let pool = WorkPool::with_threads(threads_from_args(&args));

    let matrix = build_matrix();
    println!(
        "running {} scenarios on {} worker(s), lockstep mode...",
        matrix.len(),
        pool.workers()
    );
    let results = run_matrix_mode(&pool, &matrix, ScheduleMode::Lockstep);
    for r in &results {
        println!(
            "  {:<36} {:<8} {:<9} {} ({:.1}s)",
            r.name,
            r.outcome.to_string().to_lowercase(),
            r.grade.label(),
            r.digest,
            r.duration_s
        );
        for v in &r.violations {
            println!("      VIOLATION: {v}");
        }
    }

    println!("running {} scenarios, event-driven mode...", matrix.len());
    let event_results = run_matrix_mode(&pool, &matrix, ScheduleMode::EventDriven);
    for r in &event_results {
        for v in &r.violations {
            println!("  {:<36} VIOLATION (event mode): {v}", r.name);
        }
    }

    println!("running mission cases...");
    let missions = mission_cases();
    for (name, digest, summary) in &missions {
        println!("  {name:<36} {digest} {summary}");
    }

    println!("running linked-fleet cases (lockstep)...");
    let fleets = linked_fleet_cases_mode(ScheduleMode::Lockstep);
    for (name, digest, summary) in &fleets {
        println!("  {name:<36} {digest} {summary}");
    }

    println!("running linked-fleet cases (event-driven)...");
    let event_fleets = linked_fleet_cases_mode(ScheduleMode::EventDriven);
    for (name, digest, summary) in &event_fleets {
        println!("  {name:<36} {digest} {summary}");
    }

    println!("running dead-angle sweep...");
    let sweep = dead_angle_sweep_with(&pool, 5);

    println!("running link-loss sweep...");
    let loss = link_loss_sweep_with(&pool, 7, 5);
    for p in &loss {
        println!(
            "  drop {:>3.0}%: {}/{} granted, {} retreated, {} failsafed, mean {:.1}s",
            p.drop_p * 100.0,
            p.granted,
            p.sessions,
            p.retreated,
            p.failsafed,
            p.mean_duration_s
        );
    }

    // --- golden manifest rows: sessions then missions then fleets, in
    //     matrix order; one row set per scheduler mode. The mission layer is
    //     scheduler-native (its own event queue), so its rows are shared.
    let manifest_rows = |scenario_results: &[ScenarioResult],
                         fleet_rows: &[(String, String, String)]| {
        let mut rows: Vec<(String, String, String)> = scenario_results
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    r.digest.clone(),
                    r.outcome.to_string().to_lowercase(),
                )
            })
            .collect();
        rows.extend(
            missions
                .iter()
                .map(|(n, d, _)| (n.clone(), d.clone(), "mission".to_owned())),
        );
        rows.extend(
            fleet_rows
                .iter()
                .map(|(n, d, _)| (n.clone(), d.clone(), "fleet".to_owned())),
        );
        rows
    };
    let rows = manifest_rows(&results, &fleets);
    let event_rows = manifest_rows(&event_results, &event_fleets);

    let pass = results.iter().filter(|r| r.grade == Grade::Pass).count();
    let degrade = results.iter().filter(|r| r.grade == Grade::Degrade).count();
    let fail = results.iter().filter(|r| r.grade == Grade::Fail).count();
    let event_fail = event_results
        .iter()
        .filter(|r| r.grade == Grade::Fail)
        .count();

    // --- RESULTS_scenarios.json (hand-built: the vendored serde is a stub) ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"execution\": {{\"threads\": {}, \"available_parallelism\": {}}},",
        pool.workers(),
        available_workers()
    );
    let _ = writeln!(json, "  \"scenario_count\": {},", results.len());
    let _ = writeln!(json, "  \"pass\": {pass},");
    let _ = writeln!(json, "  \"degrade\": {degrade},");
    let _ = writeln!(json, "  \"fail\": {fail},");
    let _ = writeln!(
        json,
        "  \"event_mode\": {{\"pass\": {}, \"degrade\": {}, \"fail\": {}}},",
        event_results
            .iter()
            .filter(|r| r.grade == Grade::Pass)
            .count(),
        event_results
            .iter()
            .filter(|r| r.grade == Grade::Degrade)
            .count(),
        event_fail
    );
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"outcome\": \"{}\", \"grade\": \"{}\", \"digest\": \"{}\", \
             \"duration_s\": {:.1}, \"frames_processed\": {}, \"frames_recognized\": {}, \
             \"frames_dropped\": {}, \"frames_duplicated\": {}, \"violations\": [{}]}}{comma}",
            json_escape(&r.name),
            r.outcome.to_string().to_lowercase(),
            r.grade.label(),
            r.digest,
            r.duration_s,
            r.frames.0,
            r.frames.1,
            r.frames.2,
            r.frames.3,
            r.violations
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"missions\": [");
    for (i, (name, digest, summary)) in missions.iter().enumerate() {
        let comma = if i + 1 < missions.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"digest\": \"{}\", \"summary\": \"{}\"}}{comma}",
            json_escape(name),
            digest,
            json_escape(summary)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"linked_fleets\": [");
    for (i, (name, digest, summary)) in fleets.iter().enumerate() {
        let comma = if i + 1 < fleets.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"digest\": \"{}\", \"summary\": \"{}\"}}{comma}",
            json_escape(name),
            digest,
            json_escape(summary)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"dead_angle_sweep\": [");
    for (i, p) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"azimuth_deg\": {:.0}, \"noise_sigma\": {:.0}, \"correct\": {}, \
             \"total\": {}, \"rate\": {:.3}}}{comma}",
            p.azimuth_deg,
            p.sigma,
            p.correct,
            p.total,
            p.rate()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"link_loss_sweep\": [");
    for (i, p) in loss.iter().enumerate() {
        let comma = if i + 1 < loss.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"drop_pct\": {:.0}, \"sessions\": {}, \"granted\": {}, \
             \"retreated\": {}, \"failsafed\": {}, \"unsafe_terminations\": {}, \
             \"mean_duration_s\": {:.1}}}{comma}",
            p.drop_p * 100.0,
            p.sessions,
            p.granted,
            p.retreated,
            p.failsafed,
            p.unsafe_terminations,
            p.mean_duration_s
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let results_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RESULTS_scenarios.json");
    std::fs::write(results_path, &json).expect("write RESULTS_scenarios.json");
    println!("wrote {results_path}");

    // --- golden conformance, both scheduler modes ---
    if bless {
        std::fs::create_dir_all(std::path::Path::new(golden_path()).parent().unwrap())
            .expect("create tests/golden");
        std::fs::write(golden_path(), format_manifest(&rows)).expect("write golden manifest");
        println!("blessed {} rows into {}", rows.len(), golden_path());
        std::fs::write(golden_event_path(), format_manifest(&event_rows))
            .expect("write event golden manifest");
        println!(
            "blessed {} rows into {}",
            event_rows.len(),
            golden_event_path()
        );
    } else {
        let drift = match (
            verify_manifest("lockstep", golden_path(), &rows),
            verify_manifest("event", golden_event_path(), &event_rows),
        ) {
            (Some(a), Some(b)) => a + b,
            _ => return ExitCode::FAILURE,
        };
        if drift > 0 {
            eprintln!("{drift} golden-trace mismatches (bless after reviewing the diff)");
            return ExitCode::FAILURE;
        }
        println!(
            "all {} lockstep + {} event-driven golden digests match",
            rows.len(),
            event_rows.len()
        );
    }

    println!("{pass} pass / {degrade} degrade / {fail} fail (lockstep)");
    if fail > 0 {
        eprintln!("{fail} scenarios FAILED a safety invariant or did not terminate");
        return ExitCode::FAILURE;
    }
    if event_fail > 0 {
        eprintln!(
            "{event_fail} scenarios FAILED a safety invariant or did not terminate in \
             event-driven mode"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
