//! Scenario-matrix entry point (the CI `scenarios` job).
//!
//! Runs the full committed matrix plus the orchard-mission cases and the
//! dead-angle recognition sweep, writes `RESULTS_scenarios.json` at the
//! repo root, and compares every trace digest against the golden manifest
//! in `tests/golden/scenario_digests.txt`.
//!
//! * `--threads N` sizes the work pool the matrix and sweep fan out over
//!   (default: available parallelism). Scenarios are seed-deterministic and
//!   independent, so every thread count reproduces the same digests — the
//!   CI `scenarios` job runs with `--threads 2` to prove it;
//! * `--bless` rewrites the golden manifest from the current run (do this
//!   only after reviewing the behavioural diff);
//! * any invariant failure or unblessed digest drift exits non-zero.

use hdc_runtime::{available_workers, threads_from_args, WorkPool};
use hdc_sim::scenario::{format_manifest, golden_path, parse_manifest};
use hdc_sim::sweep::{dead_angle_sweep_with, link_loss_sweep_with};
use hdc_sim::{build_matrix, linked_fleet_cases, mission_cases, run_matrix_with, Grade};
use std::fmt::Write as _;
use std::process::ExitCode;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let bless = args.iter().any(|a| a == "--bless");
    let pool = WorkPool::with_threads(threads_from_args(&args));

    let matrix = build_matrix();
    println!(
        "running {} scenarios on {} worker(s)...",
        matrix.len(),
        pool.workers()
    );
    let results = run_matrix_with(&pool, &matrix);
    for r in &results {
        println!(
            "  {:<36} {:<8} {:<9} {} ({:.1}s)",
            r.name,
            r.outcome.to_string().to_lowercase(),
            r.grade.label(),
            r.digest,
            r.duration_s
        );
        for v in &r.violations {
            println!("      VIOLATION: {v}");
        }
    }

    println!("running mission cases...");
    let missions = mission_cases();
    for (name, digest, summary) in &missions {
        println!("  {name:<36} {digest} {summary}");
    }

    println!("running linked-fleet cases...");
    let fleets = linked_fleet_cases();
    for (name, digest, summary) in &fleets {
        println!("  {name:<36} {digest} {summary}");
    }

    println!("running dead-angle sweep...");
    let sweep = dead_angle_sweep_with(&pool, 5);

    println!("running link-loss sweep...");
    let loss = link_loss_sweep_with(&pool, 7, 5);
    for p in &loss {
        println!(
            "  drop {:>3.0}%: {}/{} granted, {} retreated, {} failsafed, mean {:.1}s",
            p.drop_p * 100.0,
            p.granted,
            p.sessions,
            p.retreated,
            p.failsafed,
            p.mean_duration_s
        );
    }

    // --- golden manifest rows: sessions then missions, in matrix order ---
    let mut rows: Vec<(String, String, String)> = results
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                r.digest.clone(),
                r.outcome.to_string().to_lowercase(),
            )
        })
        .collect();
    rows.extend(
        missions
            .iter()
            .map(|(n, d, _)| (n.clone(), d.clone(), "mission".to_owned())),
    );
    rows.extend(
        fleets
            .iter()
            .map(|(n, d, _)| (n.clone(), d.clone(), "fleet".to_owned())),
    );

    let pass = results.iter().filter(|r| r.grade == Grade::Pass).count();
    let degrade = results.iter().filter(|r| r.grade == Grade::Degrade).count();
    let fail = results.iter().filter(|r| r.grade == Grade::Fail).count();

    // --- RESULTS_scenarios.json (hand-built: the vendored serde is a stub) ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"execution\": {{\"threads\": {}, \"available_parallelism\": {}}},",
        pool.workers(),
        available_workers()
    );
    let _ = writeln!(json, "  \"scenario_count\": {},", results.len());
    let _ = writeln!(json, "  \"pass\": {pass},");
    let _ = writeln!(json, "  \"degrade\": {degrade},");
    let _ = writeln!(json, "  \"fail\": {fail},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"outcome\": \"{}\", \"grade\": \"{}\", \"digest\": \"{}\", \
             \"duration_s\": {:.1}, \"frames_processed\": {}, \"frames_recognized\": {}, \
             \"frames_dropped\": {}, \"frames_duplicated\": {}, \"violations\": [{}]}}{comma}",
            json_escape(&r.name),
            r.outcome.to_string().to_lowercase(),
            r.grade.label(),
            r.digest,
            r.duration_s,
            r.frames.0,
            r.frames.1,
            r.frames.2,
            r.frames.3,
            r.violations
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"missions\": [");
    for (i, (name, digest, summary)) in missions.iter().enumerate() {
        let comma = if i + 1 < missions.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"digest\": \"{}\", \"summary\": \"{}\"}}{comma}",
            json_escape(name),
            digest,
            json_escape(summary)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"linked_fleets\": [");
    for (i, (name, digest, summary)) in fleets.iter().enumerate() {
        let comma = if i + 1 < fleets.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"digest\": \"{}\", \"summary\": \"{}\"}}{comma}",
            json_escape(name),
            digest,
            json_escape(summary)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"dead_angle_sweep\": [");
    for (i, p) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"azimuth_deg\": {:.0}, \"noise_sigma\": {:.0}, \"correct\": {}, \
             \"total\": {}, \"rate\": {:.3}}}{comma}",
            p.azimuth_deg,
            p.sigma,
            p.correct,
            p.total,
            p.rate()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"link_loss_sweep\": [");
    for (i, p) in loss.iter().enumerate() {
        let comma = if i + 1 < loss.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"drop_pct\": {:.0}, \"sessions\": {}, \"granted\": {}, \
             \"retreated\": {}, \"failsafed\": {}, \"unsafe_terminations\": {}, \
             \"mean_duration_s\": {:.1}}}{comma}",
            p.drop_p * 100.0,
            p.sessions,
            p.granted,
            p.retreated,
            p.failsafed,
            p.unsafe_terminations,
            p.mean_duration_s
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let results_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RESULTS_scenarios.json");
    std::fs::write(results_path, &json).expect("write RESULTS_scenarios.json");
    println!("wrote {results_path}");

    // --- golden conformance ---
    let manifest = format_manifest(&rows);
    if bless {
        std::fs::create_dir_all(std::path::Path::new(golden_path()).parent().unwrap())
            .expect("create tests/golden");
        std::fs::write(golden_path(), &manifest).expect("write golden manifest");
        println!("blessed {} rows into {}", rows.len(), golden_path());
    } else {
        let committed = match std::fs::read_to_string(golden_path()) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "no golden manifest at {} ({e}); run with --bless to create it",
                    golden_path()
                );
                return ExitCode::FAILURE;
            }
        };
        let committed_rows = parse_manifest(&committed);
        let mut drift = 0;
        for (name, digest, outcome) in &rows {
            match committed_rows.iter().find(|(n, _, _)| n == name) {
                Some((_, want_digest, want_outcome)) => {
                    if digest != want_digest || outcome != want_outcome {
                        eprintln!(
                            "GOLDEN DRIFT {name}: have {digest}/{outcome}, \
                             committed {want_digest}/{want_outcome}"
                        );
                        drift += 1;
                    }
                }
                None => {
                    eprintln!("GOLDEN DRIFT {name}: not in the committed manifest");
                    drift += 1;
                }
            }
        }
        for (name, _, _) in &committed_rows {
            if !rows.iter().any(|(n, _, _)| n == name) {
                eprintln!("GOLDEN DRIFT {name}: committed but no longer produced");
                drift += 1;
            }
        }
        if drift > 0 {
            eprintln!("{drift} golden-trace mismatches (bless after reviewing the diff)");
            return ExitCode::FAILURE;
        }
        println!("all {} golden digests match", rows.len());
    }

    println!("{pass} pass / {degrade} degrade / {fail} fail");
    if fail > 0 {
        eprintln!("{fail} scenarios FAILED a safety invariant or did not terminate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
