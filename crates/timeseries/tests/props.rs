//! Property-based tests for the time-series substrate.

use hdc_timeseries::{
    circular_cross_correlation_into, dtw, dtw_banded, euclidean, min_rotated_euclidean,
    min_rotated_euclidean_naive, paa, resample, rotate_left, smooth_moving_average, FftScratch,
    TimeSeries,
};
use proptest::prelude::*;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #[test]
    fn znorm_has_zero_mean_unit_sd(v in series(2..64)) {
        let z = TimeSeries::new(v).znormalized();
        prop_assert!(z.mean().abs() < 1e-9);
        let sd = z.std_dev();
        prop_assert!(sd.abs() < 1e-9 || (sd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paa_preserves_mean(v in series(1..128), segs in 1usize..32) {
        let out = paa(&v, segs);
        let mean_in: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let mean_out: f64 = out.iter().sum::<f64>() / out.len() as f64;
        prop_assert!((mean_in - mean_out).abs() < 1e-6, "{} vs {}", mean_in, mean_out);
    }

    #[test]
    fn paa_output_within_input_range(v in series(1..64), segs in 1usize..16) {
        let out = paa(&v, segs);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for o in out {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9);
        }
    }

    #[test]
    fn resample_preserves_range(v in series(2..64), n in 2usize..128) {
        let out = resample(&v, n);
        prop_assert_eq!(out.len(), n);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for o in out {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9);
        }
    }

    #[test]
    fn rotate_full_cycle_is_identity(v in series(1..32)) {
        let n = v.len();
        prop_assert_eq!(rotate_left(&v, n), v);
    }

    #[test]
    fn rotation_composes(v in series(1..32), s1 in 0usize..40, s2 in 0usize..40) {
        let once = rotate_left(&rotate_left(&v, s1), s2);
        let both = rotate_left(&v, s1 + s2);
        prop_assert_eq!(once, both);
    }

    #[test]
    fn euclidean_is_a_metric(a in series(2..32)) {
        let d = euclidean(&a, &a).unwrap();
        prop_assert!(d.abs() < 1e-9);
    }

    #[test]
    fn euclidean_symmetry(ab in series(2..32).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), series(n..n + 1))
    })) {
        let (a, b) = ab;
        let d1 = euclidean(&a, &b).unwrap();
        let d2 = euclidean(&b, &a).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn dtw_lower_bounds_euclidean(ab in series(2..24).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), series(n..n + 1))
    })) {
        let (a, b) = ab;
        let de = euclidean(&a, &b).unwrap();
        let dw = dtw(&a, &b).unwrap();
        prop_assert!(dw <= de + 1e-9, "dtw {} must not exceed euclidean {}", dw, de);
    }

    #[test]
    fn dtw_band_monotone(ab in series(4..20).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), series(n..n + 1))
    })) {
        let (a, b) = ab;
        let narrow = dtw_banded(&a, &b, 1).unwrap();
        let wide = dtw_banded(&a, &b, 8).unwrap();
        prop_assert!(wide <= narrow + 1e-9, "wider band can only improve");
    }

    #[test]
    fn min_rotation_recovers_self(v in series(2..32), shift in 0usize..32) {
        let z = TimeSeries::new(v).znormalized().into_values();
        let rotated = rotate_left(&z, shift % z.len());
        let (d, _) = min_rotated_euclidean(&z, &rotated, 1).unwrap();
        prop_assert!(d < 1e-6, "rotation-invariant distance to itself is 0, got {}", d);
    }

    #[test]
    fn min_rotation_bounded_by_plain(ab in series(2..24).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), series(n..n + 1))
    })) {
        let (a, b) = ab;
        let plain = euclidean(&a, &b).unwrap();
        let (rot, _) = min_rotated_euclidean(&a, &b, 1).unwrap();
        prop_assert!(rot <= plain + 1e-9);
    }

    #[test]
    fn fast_rotation_equals_naive_oracle(ab in series(2..48).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), series(n..n + 1))
    }), stride in 1usize..5) {
        // Raw (non-z-normalised) inputs on purpose: the fast path must match
        // the all-shifts oracle bitwise for arbitrary magnitudes, not just
        // for the canonical signatures the pipeline feeds it.
        let (a, b) = ab;
        let fast = min_rotated_euclidean(&a, &b, stride).unwrap();
        let naive = min_rotated_euclidean_naive(&a, &b, stride).unwrap();
        prop_assert_eq!(fast, naive, "fast and naive disagree");
    }

    #[test]
    fn fast_rotation_equals_naive_oracle_pow2(ab in series(64..65).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), series(n..n + 1))
    })) {
        // Length 64 crosses the FFT threshold: exercises the transform path.
        let (a, b) = ab;
        let fast = min_rotated_euclidean(&a, &b, 1).unwrap();
        let naive = min_rotated_euclidean_naive(&a, &b, 1).unwrap();
        prop_assert_eq!(fast, naive, "FFT path and naive disagree");
    }

    #[test]
    fn cross_correlation_matches_shift_loop(ab in series(2..80).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), series(n..n + 1))
    })) {
        let (a, b) = ab;
        let n = a.len();
        let mut out = vec![0.0; n];
        let mut scratch = FftScratch::new();
        circular_cross_correlation_into(&a, &b, &mut out, &mut scratch);
        for s in 0..n {
            let direct: f64 = (0..n).map(|i| a[i] * b[(i + s) % n]).sum();
            prop_assert!(
                (out[s] - direct).abs() <= 1e-9 * (1.0 + direct.abs()),
                "shift {}: {} vs {}", s, out[s], direct
            );
        }
    }

    #[test]
    fn smoothing_preserves_mean(v in series(2..48), hw in 0usize..4) {
        let s = smooth_moving_average(&v, hw);
        let m_in: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let m_out: f64 = s.iter().sum::<f64>() / s.len() as f64;
        prop_assert!((m_in - m_out).abs() < 1e-6, "circular smoothing conserves mass");
    }
}
