//! Series transforms: PAA, resampling, rotation, smoothing.

/// Piecewise aggregate approximation: averages the series into `segments`
/// equal-width frames (fractional frame boundaries are weighted).
///
/// This is the dimensionality-reduction step of SAX. When `segments >= len`
/// the series is returned unchanged (each sample its own frame).
///
/// # Panics
/// Panics if `segments` is zero.
///
/// # Example
/// ```
/// use hdc_timeseries::paa;
/// let out = paa(&[1.0, 1.0, 3.0, 3.0], 2);
/// assert_eq!(out, vec![1.0, 3.0]);
/// ```
pub fn paa(values: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA needs at least one segment");
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    if segments >= n {
        return values.to_vec();
    }
    // Weighted scheme: sample i contributes to frame(s) it overlaps when the
    // series is stretched to length lcm-like fractional boundaries.
    let mut out = vec![0.0; segments];
    let ratio = segments as f64 / n as f64;
    for (i, v) in values.iter().enumerate() {
        let start = i as f64 * ratio;
        let end = (i + 1) as f64 * ratio;
        let first = start.floor() as usize;
        let last = ((end - 1e-12).floor() as usize).min(segments - 1);
        if first == last {
            out[first] += v * (end - start);
        } else {
            for (seg, cell) in out.iter_mut().enumerate().take(last + 1).skip(first) {
                let seg_start = (seg as f64).max(start);
                let seg_end = ((seg + 1) as f64).min(end);
                *cell += v * (seg_end - seg_start);
            }
        }
    }
    // each frame accumulated weight = 1 (in stretched units)
    out
}

/// Uniformly resamples the series to `target_len` samples by linear
/// interpolation over the index axis.
///
/// Contours of different pixel lengths are mapped onto a common length so
/// signatures are comparable across scale — the scale-invariance half of the
/// paper's pipeline.
///
/// # Panics
/// Panics if `target_len` is zero.
pub fn resample(values: &[f64], target_len: usize) -> Vec<f64> {
    assert!(target_len > 0, "cannot resample to zero samples");
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![values[0]; target_len];
    }
    (0..target_len)
        .map(|i| {
            let t = i as f64 * (n - 1) as f64 / (target_len - 1).max(1) as f64;
            let lo = t.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = t - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        })
        .collect()
}

/// Returns the series circularly rotated left by `shift` positions.
///
/// Rotating a closed contour's starting point corresponds to rotating the
/// underlying shape, so matching under all rotations = matching under all
/// circular shifts.
pub fn rotate_left(values: &[f64], shift: usize) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let s = shift % n;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&values[s..]);
    out.extend_from_slice(&values[..s]);
    out
}

/// Centred moving-average smoothing with the given window half-width, using a
/// circular boundary (appropriate for closed contours).
///
/// `half_width = 0` returns the input unchanged.
pub fn smooth_moving_average(values: &[f64], half_width: usize) -> Vec<f64> {
    let n = values.len();
    if n == 0 || half_width == 0 {
        return values.to_vec();
    }
    let w = 2 * half_width + 1;
    (0..n)
        .map(|i| {
            let mut sum = 0.0;
            for k in 0..w {
                let idx = (i as i64 + k as i64 - half_width as i64).rem_euclid(n as i64) as usize;
                sum += values[idx];
            }
            sum / w as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_exact_division() {
        let out = paa(&[1.0, 1.0, 5.0, 5.0, 9.0, 9.0], 3);
        assert_eq!(out, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn paa_fractional_boundaries() {
        // 3 samples into 2 segments: middle sample splits
        let out = paa(&[0.0, 6.0, 12.0], 2);
        // stretched: each frame covers 1.5 samples. frame0 = (0*1 + 6*0.5)/1.5 = 2
        // accumulate in stretched units: sample weights ratio = 2/3.
        // frame0 = 0*(2/3) + 6*(1/3) = 2; frame1 = 6*(1/3) + 12*(2/3) = 10
        assert!((out[0] - 2.0).abs() < 1e-9, "{out:?}");
        assert!((out[1] - 10.0).abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn paa_mean_is_preserved() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let out = paa(&values, 8);
        let mean_in: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let mean_out: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean_in - mean_out).abs() < 1e-9);
    }

    #[test]
    fn paa_more_segments_than_samples() {
        let v = vec![1.0, 2.0];
        assert_eq!(paa(&v, 10), v);
    }

    #[test]
    #[should_panic(expected = "segment")]
    fn paa_zero_segments_panics() {
        paa(&[1.0], 0);
    }

    #[test]
    fn resample_endpoints_preserved() {
        let v = vec![1.0, 5.0, 2.0, 8.0];
        let r = resample(&v, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[6], 8.0);
    }

    #[test]
    fn resample_identity_length() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(resample(&v, 3), v);
    }

    #[test]
    fn resample_single_sample() {
        assert_eq!(resample(&[7.0], 4), vec![7.0; 4]);
        assert_eq!(resample(&[], 4), Vec::<f64>::new());
    }

    #[test]
    fn rotate_roundtrip() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(rotate_left(&v, 1), vec![2.0, 3.0, 4.0, 1.0]);
        assert_eq!(rotate_left(&v, 4), v);
        assert_eq!(rotate_left(&v, 5), rotate_left(&v, 1));
        assert_eq!(rotate_left(&[], 3), Vec::<f64>::new());
    }

    #[test]
    fn smoothing_flattens_spike() {
        let mut v = vec![0.0; 9];
        v[4] = 9.0;
        let s = smooth_moving_average(&v, 1);
        assert_eq!(s[4], 3.0);
        assert_eq!(s[3], 3.0);
        assert_eq!(s[0], 0.0);
    }

    #[test]
    fn smoothing_is_circular() {
        let v = vec![9.0, 0.0, 0.0, 0.0];
        let s = smooth_moving_average(&v, 1);
        // neighbours of index 0 wrap to index 3
        assert_eq!(s[0], 3.0);
        assert_eq!(s[3], 3.0);
    }

    #[test]
    fn smoothing_zero_width_identity() {
        let v = vec![1.0, 2.0];
        assert_eq!(smooth_moving_average(&v, 0), v);
    }
}
