//! Series transforms: PAA, resampling, rotation, smoothing.

/// Piecewise aggregate approximation: averages the series into `segments`
/// equal-width frames (fractional frame boundaries are weighted).
///
/// This is the dimensionality-reduction step of SAX. When `segments >= len`
/// the series is returned unchanged (each sample its own frame).
///
/// # Panics
/// Panics if `segments` is zero.
///
/// # Example
/// ```
/// use hdc_timeseries::paa;
/// let out = paa(&[1.0, 1.0, 3.0, 3.0], 2);
/// assert_eq!(out, vec![1.0, 3.0]);
/// ```
pub fn paa(values: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA needs at least one segment");
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    if segments >= n {
        return values.to_vec();
    }
    // Weighted scheme: sample i contributes to frame(s) it overlaps when the
    // series is stretched to length lcm-like fractional boundaries.
    let mut out = vec![0.0; segments];
    let ratio = segments as f64 / n as f64;
    for (i, v) in values.iter().enumerate() {
        let start = i as f64 * ratio;
        let end = (i + 1) as f64 * ratio;
        let first = start.floor() as usize;
        let last = ((end - 1e-12).floor() as usize).min(segments - 1);
        if first == last {
            out[first] += v * (end - start);
        } else {
            for (seg, cell) in out.iter_mut().enumerate().take(last + 1).skip(first) {
                let seg_start = (seg as f64).max(start);
                let seg_end = ((seg + 1) as f64).min(end);
                *cell += v * (seg_end - seg_start);
            }
        }
    }
    // each frame accumulated weight = 1 (in stretched units)
    out
}

/// Uniformly resamples the series to `target_len` samples by linear
/// interpolation over the index axis.
///
/// Contours of different pixel lengths are mapped onto a common length so
/// signatures are comparable across scale — the scale-invariance half of the
/// paper's pipeline.
///
/// # Panics
/// Panics if `target_len` is zero.
pub fn resample(values: &[f64], target_len: usize) -> Vec<f64> {
    assert!(target_len > 0, "cannot resample to zero samples");
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![values[0]; target_len];
    }
    (0..target_len)
        .map(|i| {
            let t = i as f64 * (n - 1) as f64 / (target_len - 1).max(1) as f64;
            let lo = t.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = t - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        })
        .collect()
}

/// [`resample`] into a caller-provided buffer (`out.len()` is the target
/// length); the allocation-free form used by the steady-state frame loop.
///
/// # Panics
/// Panics if `out` is empty or `values` is empty (a fixed-length output
/// cannot represent an empty resampling).
pub fn resample_into(values: &[f64], out: &mut [f64]) {
    assert!(!out.is_empty(), "cannot resample to zero samples");
    let n = values.len();
    assert!(
        n > 0,
        "cannot resample an empty series into a fixed-length buffer"
    );
    if n == 1 {
        out.fill(values[0]);
        return;
    }
    let target_len = out.len();
    for (i, slot) in out.iter_mut().enumerate() {
        let t = i as f64 * (n - 1) as f64 / (target_len - 1).max(1) as f64;
        let lo = t.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = t - lo as f64;
        *slot = values[lo] * (1.0 - frac) + values[hi] * frac;
    }
}

/// Z-normalises the slice in place (zero mean, unit population variance),
/// with the same flat-series convention as `TimeSeries::znormalized`: a
/// (near-)constant series becomes all zeros.
pub fn znormalize_in_place(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd < 1e-12 {
        values.fill(0.0);
        return;
    }
    for v in values.iter_mut() {
        *v = (*v - mean) / sd;
    }
}

/// [`paa`] into a caller-provided buffer (`out.len()` is the segment count);
/// the allocation-free form used by the steady-state frame loop.
///
/// # Panics
/// Panics if `out` is empty or longer than `values` (the reducing direction
/// is the only one the hot path needs).
pub fn paa_into(values: &[f64], out: &mut [f64]) {
    assert!(!out.is_empty(), "PAA needs at least one segment");
    let n = values.len();
    let segments = out.len();
    assert!(segments <= n, "paa_into requires segments <= input length");
    if segments == n {
        out.copy_from_slice(values);
        return;
    }
    out.fill(0.0);
    let ratio = segments as f64 / n as f64;
    for (i, v) in values.iter().enumerate() {
        let start = i as f64 * ratio;
        let end = (i + 1) as f64 * ratio;
        let first = start.floor() as usize;
        let last = ((end - 1e-12).floor() as usize).min(segments - 1);
        if first == last {
            out[first] += v * (end - start);
        } else {
            for (seg, cell) in out.iter_mut().enumerate().take(last + 1).skip(first) {
                let seg_start = (seg as f64).max(start);
                let seg_end = ((seg + 1) as f64).min(end);
                *cell += v * (seg_end - seg_start);
            }
        }
    }
}

/// Returns the series circularly rotated left by `shift` positions.
///
/// Rotating a closed contour's starting point corresponds to rotating the
/// underlying shape, so matching under all rotations = matching under all
/// circular shifts.
pub fn rotate_left(values: &[f64], shift: usize) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let s = shift % n;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&values[s..]);
    out.extend_from_slice(&values[..s]);
    out
}

/// Centred moving-average smoothing with the given window half-width, using a
/// circular boundary (appropriate for closed contours).
///
/// `half_width = 0` returns the input unchanged.
pub fn smooth_moving_average(values: &[f64], half_width: usize) -> Vec<f64> {
    let n = values.len();
    if n == 0 || half_width == 0 {
        return values.to_vec();
    }
    let w = 2 * half_width + 1;
    (0..n)
        .map(|i| {
            let mut sum = 0.0;
            for k in 0..w {
                let idx = (i as i64 + k as i64 - half_width as i64).rem_euclid(n as i64) as usize;
                sum += values[idx];
            }
            sum / w as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_exact_division() {
        let out = paa(&[1.0, 1.0, 5.0, 5.0, 9.0, 9.0], 3);
        assert_eq!(out, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn paa_fractional_boundaries() {
        // 3 samples into 2 segments: middle sample splits
        let out = paa(&[0.0, 6.0, 12.0], 2);
        // stretched: each frame covers 1.5 samples. frame0 = (0*1 + 6*0.5)/1.5 = 2
        // accumulate in stretched units: sample weights ratio = 2/3.
        // frame0 = 0*(2/3) + 6*(1/3) = 2; frame1 = 6*(1/3) + 12*(2/3) = 10
        assert!((out[0] - 2.0).abs() < 1e-9, "{out:?}");
        assert!((out[1] - 10.0).abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn paa_mean_is_preserved() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let out = paa(&values, 8);
        let mean_in: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let mean_out: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean_in - mean_out).abs() < 1e-9);
    }

    #[test]
    fn paa_more_segments_than_samples() {
        let v = vec![1.0, 2.0];
        assert_eq!(paa(&v, 10), v);
    }

    #[test]
    #[should_panic(expected = "segment")]
    fn paa_zero_segments_panics() {
        paa(&[1.0], 0);
    }

    #[test]
    fn resample_endpoints_preserved() {
        let v = vec![1.0, 5.0, 2.0, 8.0];
        let r = resample(&v, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[6], 8.0);
    }

    #[test]
    fn resample_identity_length() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(resample(&v, 3), v);
    }

    #[test]
    fn resample_single_sample() {
        assert_eq!(resample(&[7.0], 4), vec![7.0; 4]);
        assert_eq!(resample(&[], 4), Vec::<f64>::new());
    }

    #[test]
    fn resample_into_matches_resample() {
        let v: Vec<f64> = (0..50).map(|i| (i as f64 * 0.4).sin()).collect();
        for target in [1usize, 2, 7, 50, 128] {
            let mut out = vec![0.0; target];
            resample_into(&v, &mut out);
            assert_eq!(out, resample(&v, target), "target {target}");
        }
        let mut single = vec![0.0; 4];
        resample_into(&[7.0], &mut single);
        assert_eq!(single, vec![7.0; 4]);
    }

    #[test]
    fn znormalize_in_place_matches_timeseries() {
        use crate::TimeSeries;
        let v = vec![10.0, 20.0, 30.0, 45.0, 5.0];
        let mut z = v.clone();
        znormalize_in_place(&mut z);
        assert_eq!(z, TimeSeries::new(v).znormalized().into_values());
        let mut flat = vec![3.0; 6];
        znormalize_in_place(&mut flat);
        assert_eq!(flat, vec![0.0; 6]);
        let mut empty: Vec<f64> = vec![];
        znormalize_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn paa_into_matches_paa() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        for segments in [1usize, 3, 8, 100] {
            let mut out = vec![0.0; segments];
            paa_into(&v, &mut out);
            assert_eq!(out, paa(&v, segments), "segments {segments}");
        }
    }

    #[test]
    #[should_panic(expected = "segments <= input length")]
    fn paa_into_rejects_expansion() {
        let mut out = vec![0.0; 4];
        paa_into(&[1.0, 2.0], &mut out);
    }

    #[test]
    fn rotate_roundtrip() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(rotate_left(&v, 1), vec![2.0, 3.0, 4.0, 1.0]);
        assert_eq!(rotate_left(&v, 4), v);
        assert_eq!(rotate_left(&v, 5), rotate_left(&v, 1));
        assert_eq!(rotate_left(&[], 3), Vec::<f64>::new());
    }

    #[test]
    fn smoothing_flattens_spike() {
        let mut v = vec![0.0; 9];
        v[4] = 9.0;
        let s = smooth_moving_average(&v, 1);
        assert_eq!(s[4], 3.0);
        assert_eq!(s[3], 3.0);
        assert_eq!(s[0], 0.0);
    }

    #[test]
    fn smoothing_is_circular() {
        let v = vec![9.0, 0.0, 0.0, 0.0];
        let s = smooth_moving_average(&v, 1);
        // neighbours of index 0 wrap to index 3
        assert_eq!(s[0], 3.0);
        assert_eq!(s[3], 3.0);
    }

    #[test]
    fn smoothing_zero_width_identity() {
        let v = vec![1.0, 2.0];
        assert_eq!(smooth_moving_average(&v, 0), v);
    }
}
