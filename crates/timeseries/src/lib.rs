//! Time-series substrate for the `hdc` workspace.
//!
//! The paper's recognition technique converts a silhouette contour into a
//! time series, z-normalises it, reduces dimensionality with piecewise
//! aggregate approximation (PAA) and symbolises it (SAX, in the sibling
//! `hdc-sax` crate). This crate owns the numeric series layer:
//!
//! * the [`TimeSeries`] container and summary statistics,
//! * [`TimeSeries::znormalized`] standardisation,
//! * [`paa`] dimensionality reduction,
//! * uniform [`resample`]-ing of irregular series,
//! * [`euclidean`] and banded dynamic-time-warping ([`dtw`]) distances,
//! * rotation handling via [`min_rotated_euclidean`] circular alignment.
//!
//! # Example
//! ```
//! use hdc_timeseries::{TimeSeries, paa};
//! let ts = TimeSeries::new(vec![0.0, 2.0, 4.0, 6.0]);
//! let z = ts.znormalized();
//! assert!(z.mean().abs() < 1e-12);
//! let reduced = paa(z.values(), 2);
//! assert_eq!(reduced.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod fft;
mod series;
mod transform;

pub use distance::{
    dtw, dtw_banded, euclidean, min_rotated_euclidean, min_rotated_euclidean_naive,
    min_rotated_euclidean_with, DistanceError, RotationScratch,
};
pub use fft::{circular_cross_correlation_into, fft_radix2, FftScratch, FFT_MIN_LEN};
pub use series::TimeSeries;
pub use transform::{
    paa, paa_into, resample, resample_into, rotate_left, smooth_moving_average, znormalize_in_place,
};
