//! In-crate radix-2 FFT and circular cross-correlation.
//!
//! The rotation-invariant matching step needs the squared Euclidean distance
//! between `a` and every circular rotation of `b`:
//!
//! ```text
//! ‖a − rot(b, s)‖² = Σa² + Σb² − 2·ccorr(a, b)[s]
//! ```
//!
//! so all `n` rotation distances reduce to one circular cross-correlation.
//! For power-of-two lengths the correlation is computed in `O(n log n)` via
//! the correlation theorem (`CCORR = IFFT(conj(FFT(a)) ⊙ FFT(b))`); other
//! lengths fall back to a direct `O(n²)` accumulation that still performs no
//! heap allocation. Both paths write into caller-provided buffers so the
//! steady-state recognition loop stays allocation-free.

use std::f64::consts::PI;

/// Smallest power-of-two length for which the FFT path beats the direct
/// dot-product accumulation (below this the butterfly overhead dominates).
pub const FFT_MIN_LEN: usize = 64;

/// In-place iterative radix-2 Cooley–Tukey FFT over split real/imaginary
/// buffers. `invert` selects the inverse transform (including the `1/n`
/// scaling).
///
/// # Panics
/// Panics when the buffers differ in length or the length is not a power of
/// two.
pub fn fft_radix2(re: &mut [f64], im: &mut [f64], invert: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im buffers must match");
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power-of-two length"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    let sign = if invert { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut c_re = 1.0f64;
            let mut c_im = 0.0f64;
            for k in start..start + half {
                let (u_re, u_im) = (re[k], im[k]);
                let (t_re, t_im) = (re[k + half], im[k + half]);
                let v_re = t_re * c_re - t_im * c_im;
                let v_im = t_re * c_im + t_im * c_re;
                re[k] = u_re + v_re;
                im[k] = u_im + v_im;
                re[k + half] = u_re - v_re;
                im[k + half] = u_im - v_im;
                let n_re = c_re * w_re - c_im * w_im;
                c_im = c_re * w_im + c_im * w_re;
                c_re = n_re;
            }
        }
        len <<= 1;
    }

    if invert {
        let inv_n = 1.0 / n as f64;
        for v in re.iter_mut() {
            *v *= inv_n;
        }
        for v in im.iter_mut() {
            *v *= inv_n;
        }
    }
}

/// Reusable complex work buffers for [`circular_cross_correlation_into`].
#[derive(Debug, Default, Clone)]
pub struct FftScratch {
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    b_re: Vec<f64>,
    b_im: Vec<f64>,
}

impl FftScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, a: &[f64], b: &[f64]) {
        let n = a.len();
        self.a_re.clear();
        self.a_re.extend_from_slice(a);
        self.b_re.clear();
        self.b_re.extend_from_slice(b);
        self.a_im.clear();
        self.a_im.resize(n, 0.0);
        self.b_im.clear();
        self.b_im.resize(n, 0.0);
    }
}

/// Writes `ccorr(a, b)[s] = Σ_i a[i]·b[(i+s) mod n]` for every shift `s` into
/// `out`, choosing the FFT path for power-of-two lengths ≥ [`FFT_MIN_LEN`]
/// and a direct allocation-free accumulation otherwise.
///
/// # Panics
/// Panics when `a`, `b` and `out` differ in length.
pub fn circular_cross_correlation_into(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    scratch: &mut FftScratch,
) {
    let n = a.len();
    assert_eq!(n, b.len(), "series lengths must match");
    assert_eq!(n, out.len(), "output length must match the series");
    if n == 0 {
        return;
    }
    if n.is_power_of_two() && n >= FFT_MIN_LEN {
        scratch.prepare(a, b);
        fft_radix2(&mut scratch.a_re, &mut scratch.a_im, false);
        fft_radix2(&mut scratch.b_re, &mut scratch.b_im, false);
        // conj(A) ⊙ B, written over the b buffers.
        for k in 0..n {
            let (ar, ai) = (scratch.a_re[k], scratch.a_im[k]);
            let (br, bi) = (scratch.b_re[k], scratch.b_im[k]);
            scratch.b_re[k] = ar * br + ai * bi;
            scratch.b_im[k] = ar * bi - ai * br;
        }
        fft_radix2(&mut scratch.b_re, &mut scratch.b_im, true);
        out.copy_from_slice(&scratch.b_re);
    } else {
        for (s, slot) in out.iter_mut().enumerate() {
            // rot(b, s) = b[s..] ++ b[..s]; accumulate a·rot(b, s) in two runs
            // so no index ever needs a modulo.
            let k = n - s;
            let mut acc = 0.0;
            for i in 0..k {
                acc += a[i] * b[s + i];
            }
            for i in k..n {
                acc += a[i] * b[i - k];
            }
            *slot = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ccorr_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
        let n = a.len();
        (0..n)
            .map(|s| (0..n).map(|i| a[i] * b[(i + s) % n]).sum())
            .collect()
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let src: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 0.37).sin() + 0.2 * i as f64)
            .collect();
        let mut re = src.clone();
        let mut im = vec![0.0; src.len()];
        fft_radix2(&mut re, &mut im, false);
        fft_radix2(&mut re, &mut im, true);
        for (x, y) in src.iter().zip(&re) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
        for y in &im {
            assert!(y.abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_radix2(&mut re, &mut im, false);
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn correlation_fft_path_matches_naive() {
        let n = 128; // power of two ≥ FFT_MIN_LEN → FFT path
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.33).cos() * 2.0).collect();
        let mut out = vec![0.0; n];
        let mut scratch = FftScratch::new();
        circular_cross_correlation_into(&a, &b, &mut out, &mut scratch);
        let expect = ccorr_naive(&a, &b);
        for (x, y) in out.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn correlation_direct_path_matches_naive() {
        let n = 37; // not a power of two → direct path
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).cos()).collect();
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 18.0).collect();
        let mut out = vec![0.0; n];
        let mut scratch = FftScratch::new();
        circular_cross_correlation_into(&a, &b, &mut out, &mut scratch);
        let expect = ccorr_naive(&a, &b);
        for (x, y) in out.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let a: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
        let mut scratch = FftScratch::new();
        let mut first = vec![0.0; 64];
        circular_cross_correlation_into(&a, &b, &mut first, &mut scratch);
        let mut second = vec![0.0; 64];
        circular_cross_correlation_into(&a, &b, &mut second, &mut scratch);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        fft_radix2(&mut re, &mut im, false);
    }
}
