//! The time-series container and summary statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A univariate time series with `f64` samples.
///
/// In this workspace the "time" axis is usually arc position along a
/// silhouette contour and the value is distance to the shape centroid — the
/// shape-to-series conversion of the paper's SAX pipeline.
///
/// # Example
/// ```
/// use hdc_timeseries::TimeSeries;
/// let ts = TimeSeries::new(vec![1.0, 3.0]);
/// assert_eq!(ts.mean(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Wraps raw samples.
    pub fn new(values: Vec<f64>) -> Self {
        TimeSeries { values }
    }

    /// Borrow the samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the series, returning the samples.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation (0 for an empty series).
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Z-normalised copy: zero mean, unit variance.
    ///
    /// A constant (zero-variance) series z-normalises to all zeros, matching
    /// the usual SAX convention for flat subsequences.
    pub fn znormalized(&self) -> TimeSeries {
        let mean = self.mean();
        let sd = self.std_dev();
        if sd < 1e-12 {
            return TimeSeries::new(vec![0.0; self.values.len()]);
        }
        TimeSeries::new(self.values.iter().map(|v| (v - mean) / sd).collect())
    }

    /// Whether every sample is finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        TimeSeries::new(iter.into_iter().collect())
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values)
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeSeries(n={}, mean={:.3}, sd={:.3})",
            self.len(),
            self.mean(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let ts = TimeSeries::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(ts.mean(), 5.0);
        assert!((ts.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(ts.min(), Some(2.0));
        assert_eq!(ts.max(), Some(9.0));
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::default();
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.std_dev(), 0.0);
        assert_eq!(ts.min(), None);
        assert_eq!(ts.max(), None);
        assert_eq!(ts.znormalized().len(), 0);
    }

    #[test]
    fn znorm_standardises() {
        let ts = TimeSeries::new(vec![10.0, 20.0, 30.0, 40.0]);
        let z = ts.znormalized();
        assert!(z.mean().abs() < 1e-12);
        assert!((z.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znorm_constant_is_zero() {
        let ts = TimeSeries::new(vec![5.0; 10]);
        let z = ts.znormalized();
        assert!(z.values().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn constructors() {
        let a: TimeSeries = vec![1.0, 2.0].into();
        let b: TimeSeries = [1.0, 2.0].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.into_values(), vec![1.0, 2.0]);
    }

    #[test]
    fn display_summarises() {
        let ts = TimeSeries::new(vec![1.0, 1.0]);
        assert_eq!(format!("{ts}"), "TimeSeries(n=2, mean=1.000, sd=0.000)");
    }
}
