//! Series distances: Euclidean, DTW (full and banded), rotation-minimised.

use crate::fft::{circular_cross_correlation_into, FftScratch};
use crate::transform::rotate_left;
use std::fmt;

/// Error returned by distance functions for incompatible inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistanceError {
    /// The two series have different lengths (Euclidean requires equal).
    LengthMismatch {
        /// Length of the first series.
        a: usize,
        /// Length of the second series.
        b: usize,
    },
    /// One of the series is empty.
    Empty,
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::LengthMismatch { a, b } => {
                write!(f, "series lengths differ: {a} vs {b}")
            }
            DistanceError::Empty => write!(f, "empty series"),
        }
    }
}

impl std::error::Error for DistanceError {}

/// Euclidean (L2) distance between equal-length series.
///
/// # Errors
/// [`DistanceError::LengthMismatch`] when lengths differ,
/// [`DistanceError::Empty`] when both are empty.
///
/// # Example
/// ```
/// use hdc_timeseries::euclidean;
/// let d = euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap();
/// assert_eq!(d, 5.0);
/// ```
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64, DistanceError> {
    if a.len() != b.len() {
        return Err(DistanceError::LengthMismatch {
            a: a.len(),
            b: b.len(),
        });
    }
    if a.is_empty() {
        return Err(DistanceError::Empty);
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt())
}

/// Full dynamic-time-warping distance between (possibly different-length)
/// series, with squared-difference local cost and the classic 3-way recursion.
///
/// # Errors
/// [`DistanceError::Empty`] when either series is empty.
pub fn dtw(a: &[f64], b: &[f64]) -> Result<f64, DistanceError> {
    dtw_banded(a, b, usize::MAX)
}

/// DTW constrained to a Sakoe–Chiba band of half-width `band`.
///
/// `band = usize::MAX` means unconstrained. A narrow band is the classic
/// latency optimisation for real-time matching — this is the "expensive
/// baseline made as cheap as honestly possible" against which the paper's
/// SAX approach is compared.
///
/// # Errors
/// [`DistanceError::Empty`] when either series is empty.
pub fn dtw_banded(a: &[f64], b: &[f64], band: usize) -> Result<f64, DistanceError> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Err(DistanceError::Empty);
    }
    // Ensure the band admits a path when lengths differ.
    let band = band.max(n.abs_diff(m));
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut cur = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur.fill(inf);
        let j_lo = if band == usize::MAX {
            1
        } else {
            i.saturating_sub(band).max(1)
        };
        let j_hi = if band == usize::MAX {
            m
        } else {
            (i + band).min(m)
        };
        for j in j_lo..=j_hi {
            let cost = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
            let best = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    Ok(prev[m].sqrt())
}

/// Reusable buffers for [`min_rotated_euclidean_with`], so repeated rotation
/// matching (one call per template per frame) performs no heap allocation in
/// steady state.
#[derive(Debug, Default, Clone)]
pub struct RotationScratch {
    ccorr: Vec<f64>,
    fft: FftScratch,
}

impl RotationScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Minimum Euclidean distance over all circular rotations of `b`, returning
/// `(distance, best_shift)`.
///
/// This is the rotation-invariant matching step: a rotated shape produces a
/// circularly shifted contour signature, so the best alignment over shifts is
/// the rotation-free distance. `stride` sub-samples the shift search
/// (`stride = 1` is exhaustive).
///
/// All rotation distances are derived from one circular cross-correlation
/// (`‖a − rot(b, s)‖² = Σa² + Σb² − 2·ccorr(a, b)[s]`, FFT-accelerated for
/// power-of-two lengths), then the winning shifts are re-evaluated with the
/// plain subtract-square sum so the result is bit-identical to
/// [`min_rotated_euclidean_naive`], including tie-breaking on the earliest
/// shift.
///
/// # Errors
/// Same as [`euclidean`]; additionally `stride` of zero yields
/// [`DistanceError::Empty`].
pub fn min_rotated_euclidean(
    a: &[f64],
    b: &[f64],
    stride: usize,
) -> Result<(f64, usize), DistanceError> {
    min_rotated_euclidean_with(a, b, stride, &mut RotationScratch::new())
}

/// [`min_rotated_euclidean`] with caller-provided scratch buffers; the
/// allocation-free form used by the steady-state recognition loop.
///
/// # Errors
/// Same as [`min_rotated_euclidean`].
pub fn min_rotated_euclidean_with(
    a: &[f64],
    b: &[f64],
    stride: usize,
    scratch: &mut RotationScratch,
) -> Result<(f64, usize), DistanceError> {
    if stride == 0 {
        return Err(DistanceError::Empty);
    }
    if a.len() != b.len() {
        return Err(DistanceError::LengthMismatch {
            a: a.len(),
            b: b.len(),
        });
    }
    if a.is_empty() {
        return Err(DistanceError::Empty);
    }
    let n = a.len();
    let sa: f64 = a.iter().map(|x| x * x).sum();
    let sb: f64 = b.iter().map(|x| x * x).sum();

    scratch.ccorr.clear();
    scratch.ccorr.resize(n, 0.0);
    circular_cross_correlation_into(a, b, &mut scratch.ccorr, &mut scratch.fft);

    // First pass: minimum *estimated* squared distance over admissible shifts.
    let mut min_est = f64::INFINITY;
    for s in (0..n).step_by(stride) {
        let est = sa + sb - 2.0 * scratch.ccorr[s];
        if est < min_est {
            min_est = est;
        }
    }
    // Second pass: exact re-evaluation at every shift whose estimate is within
    // the FFT rounding tolerance of the minimum. The tolerance scales with the
    // energy of the inputs (correlation entries are O(sa + sb)); candidates it
    // admits only cost one extra O(n) pass each, never correctness.
    let eps = (sa + sb + 1.0) * 1e-9;
    let mut best = (f64::INFINITY, 0usize);
    for s in (0..n).step_by(stride) {
        let est = sa + sb - 2.0 * scratch.ccorr[s];
        if est <= min_est + eps {
            let d = rotated_euclidean_at(a, b, s);
            if d < best.0 {
                best = (d, s);
            }
        }
    }
    Ok(best)
}

/// Exact Euclidean distance between `a` and `rot(b, shift)`, accumulated in
/// the same element order as [`euclidean`] on a materialised rotation (so the
/// floating-point result is bit-identical to the naive oracle's).
fn rotated_euclidean_at(a: &[f64], b: &[f64], shift: usize) -> f64 {
    let n = a.len();
    let k = n - shift;
    let mut acc = 0.0;
    for i in 0..k {
        let d = a[i] - b[shift + i];
        acc += d * d;
    }
    for i in k..n {
        let d = a[i] - b[i - k];
        acc += d * d;
    }
    acc.sqrt()
}

/// Reference implementation of [`min_rotated_euclidean`]: materialises each
/// rotation and measures it. `O(n²)` with an allocation per shift — kept as
/// the test oracle and the honest "before" baseline for benchmarks.
///
/// # Errors
/// Same as [`min_rotated_euclidean`].
pub fn min_rotated_euclidean_naive(
    a: &[f64],
    b: &[f64],
    stride: usize,
) -> Result<(f64, usize), DistanceError> {
    if stride == 0 {
        return Err(DistanceError::Empty);
    }
    if a.len() != b.len() {
        return Err(DistanceError::LengthMismatch {
            a: a.len(),
            b: b.len(),
        });
    }
    if a.is_empty() {
        return Err(DistanceError::Empty);
    }
    let mut best = (f64::INFINITY, 0usize);
    let mut shift = 0usize;
    while shift < b.len() {
        let rotated = rotate_left(b, shift);
        let d = euclidean(a, &rotated)?;
        if d < best.0 {
            best = (d, shift);
        }
        shift += stride;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[1.0], &[1.0]).unwrap(), 0.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 5.0);
        assert!(matches!(
            euclidean(&[1.0], &[1.0, 2.0]),
            Err(DistanceError::LengthMismatch { a: 1, b: 2 })
        ));
        assert!(matches!(euclidean(&[], &[]), Err(DistanceError::Empty)));
    }

    #[test]
    fn dtw_equals_euclidean_for_identical() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_shift() {
        // same shape shifted by one sample: DTW smaller than Euclidean
        let a = [0.0, 0.0, 1.0, 5.0, 1.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 1.0, 5.0, 1.0, 0.0, 0.0];
        let de = euclidean(&a, &b).unwrap();
        let dw = dtw(&a, &b).unwrap();
        assert!(dw < de, "dtw {dw} should beat euclidean {de}");
        assert!(dw < 1e-9, "pure shift should warp to ~zero");
    }

    #[test]
    fn dtw_different_lengths() {
        let a = [0.0, 1.0, 0.0];
        let b = [0.0, 0.5, 1.0, 0.5, 0.0];
        let d = dtw(&a, &b).unwrap();
        assert!(d.is_finite());
        assert!(matches!(dtw(&[], &b), Err(DistanceError::Empty)));
    }

    #[test]
    fn banded_dtw_upper_bounds_full() {
        let a: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3 + 0.8).sin()).collect();
        let full = dtw(&a, &b).unwrap();
        let banded = dtw_banded(&a, &b, 3).unwrap();
        assert!(
            banded >= full - 1e-12,
            "band constrains the path: {banded} >= {full}"
        );
    }

    #[test]
    fn banded_wide_band_equals_full() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b = [2.0, 1.0, 4.0, 4.0];
        assert_eq!(dtw(&a, &b).unwrap(), dtw_banded(&a, &b, 100).unwrap());
    }

    #[test]
    fn rotation_minimum_finds_shift() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let b = rotate_left(&a, 2);
        let (d, shift) = min_rotated_euclidean(&a, &b, 1).unwrap();
        assert!(d < 1e-12);
        // rotating b left by 4 recovers a (2 + 4 = 6 ≡ 0)
        assert_eq!(shift, 4);
    }

    #[test]
    fn fast_rotation_matches_naive_bitwise() {
        // Covers the FFT path (128 = 2^7 ≥ FFT_MIN_LEN), the direct path (37)
        // and small lengths, with strides 1..4.
        for n in [3usize, 8, 37, 64, 128] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos() - 1.2).collect();
            for stride in 1..=4 {
                let fast = min_rotated_euclidean(&a, &b, stride).unwrap();
                let naive = min_rotated_euclidean_naive(&a, &b, stride).unwrap();
                assert_eq!(fast, naive, "n={n} stride={stride}");
            }
        }
    }

    #[test]
    fn fast_rotation_exact_zero_on_self_match() {
        // d = 0 is where FFT rounding would otherwise show up as sqrt(ε);
        // exact re-evaluation must return literally 0.0 like the naive loop.
        let a: Vec<f64> = (0..128).map(|i| (i as f64 * 0.17).sin()).collect();
        let b = rotate_left(&a, 11);
        let (d, shift) = min_rotated_euclidean(&a, &b, 1).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(shift, 128 - 11);
    }

    #[test]
    fn rotation_scratch_reuse_across_lengths() {
        let mut scratch = RotationScratch::new();
        for n in [128usize, 37, 64] {
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let b = rotate_left(&a, n / 3);
            let fast = min_rotated_euclidean_with(&a, &b, 1, &mut scratch).unwrap();
            let naive = min_rotated_euclidean_naive(&a, &b, 1).unwrap();
            assert_eq!(fast, naive, "n={n}");
        }
    }

    #[test]
    fn rotation_stride_subsampling() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = rotate_left(&a, 1);
        // stride 2 only checks shifts {0, 2}; exact shift 3 is missed but a
        // finite distance is still returned
        let (d, _) = min_rotated_euclidean(&a, &b, 2).unwrap();
        assert!(d > 0.0);
        assert!(min_rotated_euclidean(&a, &b, 0).is_err());
    }

    #[test]
    fn error_display() {
        let e = DistanceError::LengthMismatch { a: 1, b: 2 };
        assert_eq!(e.to_string(), "series lengths differ: 1 vs 2");
        assert_eq!(DistanceError::Empty.to_string(), "empty series");
    }
}
