//! The session's drone↔supervisor datalink.
//!
//! When a [`DatalinkConfig`] is installed in
//! [`SessionConfig::datalink`](crate::SessionConfig), the negotiation no
//! longer runs over in-process calls: drone-side events ([`LinkEvent`])
//! travel to the supervisor over a reliable [`Endpoint`] riding a seeded
//! [`LossyChannel`] (the uplink), and the supervisor's
//! [`ProtocolAction`]s come back the same way (the downlink). Both
//! endpoints exchange heartbeats; either side that hears nothing for the
//! lease timeout declares the link lost — the drone answers with an
//! autonomous safe-hold, the supervisor by aborting the negotiation.
//!
//! With no config installed the session keeps its direct call path — the
//! zero-fault special case — and produces byte-identical traces to every
//! build that predates the link layer.

use crate::protocol::ProtocolAction;
use hdc_figure::MarshallingSign;
use hdc_link::{
    ChannelStats, Endpoint, EndpointConfig, EndpointStats, Frame, LeaseConfig, LinkQuality,
    LossyChannel,
};
use serde::{Deserialize, Serialize};

/// Datalink parameters: one impairment model per direction plus the shared
/// transport and lease tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatalinkConfig {
    /// Drone → supervisor direction (negotiation events).
    pub uplink: LinkQuality,
    /// Supervisor → drone direction (protocol actions).
    pub downlink: LinkQuality,
    /// Retransmission/window tuning, both endpoints.
    pub endpoint: EndpointConfig,
    /// Heartbeat/lease tuning, both endpoints.
    pub lease: LeaseConfig,
}

impl DatalinkConfig {
    /// A clean 50 ms link in both directions with default transport tuning.
    pub fn clean() -> Self {
        DatalinkConfig::symmetric(LinkQuality::clean())
    }

    /// The same impairment model in both directions.
    pub fn symmetric(quality: LinkQuality) -> Self {
        DatalinkConfig {
            uplink: quality,
            downlink: quality,
            endpoint: EndpointConfig::default(),
            lease: LeaseConfig::default(),
        }
    }
}

/// A drone-side negotiation event carried over the uplink. Each variant
/// maps onto exactly one `NegotiationMachine` handler at the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkEvent {
    /// The drone reached the contact point.
    Arrived,
    /// A commanded communicative pattern finished.
    PatternComplete,
    /// The vision pipeline confirmed a static sign. (Frames that confirm
    /// nothing are not reported — the supervisor's timeouts cover silence.)
    Sign(MarshallingSign),
    /// The dynamic channel detected a wave-off gesture.
    WaveOff,
    /// A drone-side safety function engaged.
    Safety,
}

/// What one finished session's link carried — part of the session report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Uplink (events) channel statistics.
    pub up: ChannelStats,
    /// Downlink (actions) channel statistics.
    pub down: ChannelStats,
    /// Drone endpoint statistics.
    pub drone_endpoint: EndpointStats,
    /// Supervisor endpoint statistics.
    pub supervisor_endpoint: EndpointStats,
    /// Whether the drone-side lease expired at any point (forcing the
    /// autonomous safe-hold).
    pub drone_lease_expired: bool,
    /// Whether the supervisor-side lease expired at any point (the drone
    /// was declared lost).
    pub supervisor_lease_expired: bool,
}

/// What one pump of the link produced, for the session loop to act on.
#[derive(Debug)]
pub struct LinkPump {
    /// Events that became deliverable at the supervisor, in order.
    pub events: Vec<LinkEvent>,
    /// Actions that became deliverable at the drone, in order.
    pub actions: Vec<ProtocolAction>,
    /// The drone-side lease expired on this pump (latched: reported once).
    pub drone_lease_expired: bool,
    /// The supervisor-side lease expired on this pump (latched: reported
    /// once).
    pub supervisor_lease_expired: bool,
}

/// The session's live link state: two endpoints and the two directed
/// channels between them.
#[derive(Debug)]
pub struct SessionLink {
    drone_ep: Endpoint<LinkEvent, ProtocolAction>,
    supervisor_ep: Endpoint<ProtocolAction, LinkEvent>,
    up: LossyChannel<Frame<LinkEvent>>,
    down: LossyChannel<Frame<ProtocolAction>>,
    lease_timeout_s: f64,
    drone_lease_lost: bool,
    supervisor_lease_lost: bool,
}

/// How far past the exact lease-expiry instant the scheduler pumps: the
/// expiry predicate is a strict inequality, so landing exactly on the edge
/// would not observe it.
const LEASE_EDGE_S: f64 = 1e-6;

/// Derives an independent stream seed from the session seed and a salt —
/// the shared SplitMix64 finaliser, so the link never shares draws with the
/// human or the wind process.
fn derive_seed(seed: u64, salt: u64) -> u64 {
    hdc_runtime::mix(seed ^ salt.wrapping_mul(hdc_runtime::GOLDEN_GAMMA))
}

impl SessionLink {
    /// Builds the link at simulation time `now`, deriving all four decision
    /// streams (two channels, two endpoints) from the one session seed.
    pub fn new(config: DatalinkConfig, seed: u64, now: f64) -> Self {
        SessionLink {
            drone_ep: Endpoint::new(config.endpoint, config.lease, derive_seed(seed, 1), now),
            supervisor_ep: Endpoint::new(config.endpoint, config.lease, derive_seed(seed, 2), now),
            up: LossyChannel::new(config.uplink, derive_seed(seed, 3)),
            down: LossyChannel::new(config.downlink, derive_seed(seed, 4)),
            lease_timeout_s: config.lease.timeout_s,
            drone_lease_lost: false,
            supervisor_lease_lost: false,
        }
    }

    /// Queues a drone-side event for reliable uplink delivery.
    pub fn send_event(&mut self, now: f64, event: LinkEvent) {
        self.drone_ep.send(now, event);
    }

    /// Queues a supervisor action for reliable downlink delivery.
    pub fn send_action(&mut self, now: f64, action: ProtocolAction) {
        self.supervisor_ep.send(now, action);
    }

    /// One link round: both endpoints emit their due frames into the
    /// channels, both channels deliver what is due, and the leases are
    /// checked. Call exactly once per simulation step.
    pub fn pump(&mut self, now: f64) -> LinkPump {
        for frame in self.drone_ep.tick(now) {
            self.up.send(now, frame);
        }
        for frame in self.supervisor_ep.tick(now) {
            self.down.send(now, frame);
        }
        let mut events = Vec::new();
        for frame in self.up.poll(now) {
            events.extend(self.supervisor_ep.handle(now, frame));
        }
        let mut actions = Vec::new();
        for frame in self.down.poll(now) {
            actions.extend(self.drone_ep.handle(now, frame));
        }
        let drone_lease_expired = !self.drone_lease_lost && self.drone_ep.lease_expired(now);
        self.drone_lease_lost |= drone_lease_expired;
        let supervisor_lease_expired =
            !self.supervisor_lease_lost && self.supervisor_ep.lease_expired(now);
        self.supervisor_lease_lost |= supervisor_lease_expired;
        LinkPump {
            events,
            actions,
            drone_lease_expired,
            supervisor_lease_expired,
        }
    }

    /// Earliest future time this link has work: an endpoint retransmission,
    /// heartbeat or pending ack, an in-flight copy becoming deliverable, or
    /// a lease expiring. `None` only if nothing will ever be due (cannot
    /// happen in practice — endpoints always heartbeat). An event-driven
    /// scheduler pumps the link at this time instead of every tick; a quiet
    /// link between heartbeats costs zero work.
    pub fn next_due(&self, now: f64) -> Option<f64> {
        let mut due = self
            .drone_ep
            .next_due(now)
            .min(self.supervisor_ep.next_due(now));
        if let Some(t) = self.up.next_due() {
            due = due.min(t);
        }
        if let Some(t) = self.down.next_due() {
            due = due.min(t);
        }
        // lease expiry is an edge the pump must observe: schedule the first
        // instant strictly past `last_heard + timeout` for whichever lease
        // has not latched yet
        for (latched, ep_last_heard, timeout) in [
            (
                self.drone_lease_lost,
                self.drone_ep.last_heard(),
                self.lease_timeout_s,
            ),
            (
                self.supervisor_lease_lost,
                self.supervisor_ep.last_heard(),
                self.lease_timeout_s,
            ),
        ] {
            if !latched {
                due = due.min((ep_last_heard + timeout).max(now) + LEASE_EDGE_S);
            }
        }
        Some(due)
    }

    /// Whether every sent payload has been acknowledged and nothing is in
    /// flight — the link's contribution to session termination.
    pub fn is_quiet(&self) -> bool {
        !self.drone_ep.has_unacked()
            && !self.supervisor_ep.has_unacked()
            && self.up.is_idle()
            && self.down.is_idle()
    }

    /// The link's traffic summary for the session report.
    pub fn report(&self) -> LinkReport {
        LinkReport {
            up: self.up.stats(),
            down: self.down.stats(),
            drone_endpoint: self.drone_ep.stats(),
            supervisor_endpoint: self.supervisor_ep.stats(),
            drone_lease_expired: self.drone_lease_lost,
            supervisor_lease_expired: self.supervisor_lease_lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_round_trips_events_and_actions() {
        let mut link = SessionLink::new(DatalinkConfig::clean(), 7, 0.0);
        link.send_event(0.0, LinkEvent::Arrived);
        link.send_action(0.0, ProtocolAction::ExecutePoke);
        let mut events = Vec::new();
        let mut actions = Vec::new();
        for k in 0..10 {
            let pump = link.pump(k as f64 * 0.1);
            events.extend(pump.events);
            actions.extend(pump.actions);
        }
        assert_eq!(events, vec![LinkEvent::Arrived]);
        assert_eq!(actions, vec![ProtocolAction::ExecutePoke]);
        assert!(link.is_quiet());
    }

    #[test]
    fn partition_expires_both_leases_exactly_once() {
        let quality = LinkQuality::clean().with_partition(1.0, 30.0);
        let mut config = DatalinkConfig::symmetric(quality);
        config.lease.timeout_s = 2.0;
        let mut link = SessionLink::new(config, 9, 0.0);
        let mut drone_expiries = 0;
        let mut supervisor_expiries = 0;
        for k in 0..200 {
            let pump = link.pump(k as f64 * 0.1);
            drone_expiries += usize::from(pump.drone_lease_expired);
            supervisor_expiries += usize::from(pump.supervisor_lease_expired);
        }
        assert_eq!(drone_expiries, 1, "drone lease latches once");
        assert_eq!(supervisor_expiries, 1, "supervisor lease latches once");
        let report = link.report();
        assert!(report.drone_lease_expired && report.supervisor_lease_expired);
    }

    #[test]
    fn next_due_lets_a_quiet_link_sleep_between_heartbeats() {
        let mut link = SessionLink::new(DatalinkConfig::clean(), 7, 0.0);
        link.pump(0.0);
        let due = link.next_due(0.0).unwrap();
        assert!(
            due >= 0.5 - 1e-9,
            "a quiet link's next work is the heartbeat slot, got {due}"
        );
        // queued traffic is due immediately (first transmission slot)
        link.send_event(0.1, LinkEvent::Arrived);
        assert!(link.next_due(0.1).unwrap() <= 0.1 + 1e-9);
        // pumping at each due time (never in between) still delivers
        let mut now = 0.1;
        let mut events = Vec::new();
        for _ in 0..50 {
            now = link.next_due(now).unwrap().max(now);
            events.extend(link.pump(now).events);
            if link.is_quiet() {
                break;
            }
        }
        assert_eq!(events, vec![LinkEvent::Arrived]);
        assert!(link.is_quiet());
    }

    #[test]
    fn next_due_covers_the_lease_expiry_edge() {
        let quality = LinkQuality::clean().with_partition(0.5, 1000.0);
        let mut config = DatalinkConfig::symmetric(quality);
        config.lease.timeout_s = 2.0;
        let mut link = SessionLink::new(config, 9, 0.0);
        // event-driven pumping only at next_due times must still latch both
        // lease expiries (the partition silences every heartbeat)
        let mut now = 0.0;
        let (mut drone_lost, mut supervisor_lost) = (false, false);
        for _ in 0..200 {
            let pump = link.pump(now);
            drone_lost |= pump.drone_lease_expired;
            supervisor_lost |= pump.supervisor_lease_expired;
            if drone_lost && supervisor_lost {
                break;
            }
            now = link.next_due(now).unwrap().max(now);
        }
        assert!(drone_lost, "drone lease must expire under partition");
        assert!(supervisor_lost, "supervisor lease must expire");
        assert!(now < 10.0, "expiry observed promptly, got t={now}");
    }

    #[test]
    fn same_seed_same_link_trace() {
        let quality = LinkQuality::clean().with_drop(0.3).with_jitter(0.4);
        let run = || {
            let mut link = SessionLink::new(DatalinkConfig::symmetric(quality), 42, 0.0);
            let mut out = Vec::new();
            for k in 0..400 {
                let now = k as f64 * 0.1;
                if k % 7 == 0 {
                    link.send_event(now, LinkEvent::PatternComplete);
                }
                let pump = link.pump(now);
                out.push((k, pump.events.len(), pump.actions.len()));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
