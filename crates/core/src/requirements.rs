//! The requirements registry derived from the paper's user stories.
//!
//! Section II derives "a set of minimum communication requirements between
//! both drones and collaborators and vice versa" from supervisor / worker /
//! visitor user stories. The registry keeps each requirement as data with a
//! stable id, its narrative source, and a pointer to what in this workspace
//! verifies it — so the test suite and the documentation can cross-reference
//! the same table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequirementId(pub u8);

impl fmt::Display for RequirementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One derived requirement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requirement {
    /// Stable id.
    pub id: RequirementId,
    /// Which user story motivates it.
    pub story: &'static str,
    /// The requirement text.
    pub description: &'static str,
    /// Where in this workspace it is implemented / verified.
    pub verified_by: &'static str,
}

/// The full registry.
pub const REQUIREMENTS: &[Requirement] = &[
    Requirement {
        id: RequirementId(1),
        story: "worker sees a drone transiting overhead",
        description: "the drone indicates its horizontal flight direction with an \
                      all-round ring of red/green/white navigation lights (FAA-style)",
        verified_by: "hdc-drone::led navigation layout tests; experiment E6",
    },
    Requirement {
        id: RequirementId(2),
        story: "any person near a malfunctioning drone",
        description: "a triggered safety function turns the whole ring red; all-red is \
                      the fail-safe default state",
        verified_by: "hdc-drone::Drone::trigger_safety tests; LedRing::default; experiment E12",
    },
    Requirement {
        id: RequirementId(3),
        story: "worker blocking a fly trap the drone must read",
        description: "the drone gains attention (poke) before requesting anything; no \
                      request is made without an attention-gained acknowledgement",
        verified_by: "hdc-core::protocol state machine tests; experiment E8",
    },
    Requirement {
        id: RequirementId(4),
        story: "worker blocking a fly trap the drone must read",
        description: "access to occupied space is negotiated: the drone flies a rectangle \
                      to signify the area and enters only on an explicit Yes",
        verified_by: "hdc-core::protocol never_enters_without_yes property test",
    },
    Requirement {
        id: RequirementId(5),
        story: "supervisor watching a landing",
        description: "navigation lights are extinguished only after the rotors stop",
        verified_by: "hdc-drone landing_extinguishes_lights_after_rotors test; experiment E7",
    },
    Requirement {
        id: RequirementId(6),
        story: "visitor with minimal instruction",
        description: "the human sign set is minimal (three static signs) and learnable: \
                      attention-gained, yes, no",
        verified_by: "hdc-figure::MarshallingSign; uniqueness experiment E5",
    },
    Requirement {
        id: RequirementId(7),
        story: "worker approached by a drone",
        description: "the drone keeps a safe distance during negotiation and retreats on \
                      refusal or timeout",
        verified_by: "hdc-core::session safe-distance monitor; SafetyMonitor tests",
    },
    Requirement {
        id: RequirementId(8),
        story: "cost-conscious orchard operator",
        description: "sign recognition runs on low-cost hardware: computationally cheap \
                      (SAX) and within real-time budgets (≥30 fps)",
        verified_by: "hdc-vision timing instrumentation; benches fig4_no_sign, pipeline_throughput",
    },
    Requirement {
        id: RequirementId(9),
        story: "worker whose sign is not understood",
        description: "recognition must be rotation invariant and reject unknown/ambiguous \
                      poses rather than guessing",
        verified_by: "hdc-sax rotation invariance; pipeline ambiguity-ratio tests; experiment E3",
    },
    Requirement {
        id: RequirementId(10),
        story: "visitor confused by leg lights",
        description: "the vertical take-off/landing LED array is confusing and must not \
                      be relied upon (discarded)",
        verified_by: "hdc-drone VerticalArray confusion test; experiment E9",
    },
];

/// Looks up a requirement by id.
pub fn requirement(id: RequirementId) -> Option<&'static Requirement> {
    REQUIREMENTS.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_unique_and_sequential() {
        let ids: HashSet<_> = REQUIREMENTS.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), REQUIREMENTS.len());
        for (i, r) in REQUIREMENTS.iter().enumerate() {
            assert_eq!(r.id.0 as usize, i + 1, "ids are R1..Rn in order");
        }
    }

    #[test]
    fn every_requirement_is_verified_somewhere() {
        for r in REQUIREMENTS {
            assert!(!r.verified_by.is_empty(), "{} lacks verification", r.id);
            assert!(!r.story.is_empty());
            assert!(!r.description.is_empty());
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(requirement(RequirementId(4)).unwrap().id, RequirementId(4));
        assert!(requirement(RequirementId(99)).is_none());
        assert_eq!(RequirementId(4).to_string(), "R4");
    }
}
