//! The vocabulary: what motions, lights and signs *mean*.
//!
//! Section III defines the mapping both ways. Keeping it as data (rather
//! than scattering the semantics through the protocol code) is what makes
//! the language extensible — the paper's future work asks for "flexibility
//! of the system with respect to other static and ... dynamic marshalling
//! signals".

use hdc_drone::PatternKind;
use hdc_figure::MarshallingSign;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the drone means by a communicative motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DroneIntent {
    /// "I want your attention" (poke).
    RequestAttention,
    /// "I want the space you occupy" (rectangle).
    RequestArea,
    /// "Understood, yes" (nod).
    AcknowledgeYes,
    /// "Understood, no" (turn).
    AcknowledgeNo,
    /// "I am leaving the ground" (take-off).
    AnnounceTakeOff,
    /// "I am coming down" (landing).
    AnnounceLanding,
    /// "I am in transit" (cruise).
    AnnounceTransit,
}

impl fmt::Display for DroneIntent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DroneIntent::RequestAttention => "request attention",
            DroneIntent::RequestArea => "request area",
            DroneIntent::AcknowledgeYes => "acknowledge yes",
            DroneIntent::AcknowledgeNo => "acknowledge no",
            DroneIntent::AnnounceTakeOff => "announce take-off",
            DroneIntent::AnnounceLanding => "announce landing",
            DroneIntent::AnnounceTransit => "announce transit",
        };
        f.write_str(s)
    }
}

/// What the human means by a marshalling sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HumanIntent {
    /// "You have my attention" (both hands before the face).
    GrantAttention,
    /// "Yes, you may" (both arms up).
    Consent,
    /// "No, you may not" (one arm up, one down).
    Refuse,
}

impl fmt::Display for HumanIntent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HumanIntent::GrantAttention => "grant attention",
            HumanIntent::Consent => "consent",
            HumanIntent::Refuse => "refuse",
        };
        f.write_str(s)
    }
}

/// The bidirectional vocabulary table.
///
/// # Example
/// ```
/// use hdc_core::{Vocabulary, DroneIntent};
/// use hdc_drone::PatternKind;
/// assert_eq!(Vocabulary::drone_intent(PatternKind::Poke), Some(DroneIntent::RequestAttention));
/// assert_eq!(Vocabulary::pattern_for(DroneIntent::RequestArea), Some(PatternKind::RectangleRequest));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Vocabulary;

impl Vocabulary {
    /// The intent a flight pattern communicates, or `None` for patterns with
    /// no communicative meaning beyond their standard announcement.
    pub fn drone_intent(pattern: PatternKind) -> Option<DroneIntent> {
        Some(match pattern {
            PatternKind::Poke => DroneIntent::RequestAttention,
            PatternKind::RectangleRequest => DroneIntent::RequestArea,
            PatternKind::Nod => DroneIntent::AcknowledgeYes,
            PatternKind::Turn => DroneIntent::AcknowledgeNo,
            PatternKind::TakeOff => DroneIntent::AnnounceTakeOff,
            PatternKind::Landing => DroneIntent::AnnounceLanding,
            PatternKind::Cruise => DroneIntent::AnnounceTransit,
        })
    }

    /// The flight pattern expressing an intent.
    pub fn pattern_for(intent: DroneIntent) -> Option<PatternKind> {
        Some(match intent {
            DroneIntent::RequestAttention => PatternKind::Poke,
            DroneIntent::RequestArea => PatternKind::RectangleRequest,
            DroneIntent::AcknowledgeYes => PatternKind::Nod,
            DroneIntent::AcknowledgeNo => PatternKind::Turn,
            DroneIntent::AnnounceTakeOff => PatternKind::TakeOff,
            DroneIntent::AnnounceLanding => PatternKind::Landing,
            DroneIntent::AnnounceTransit => PatternKind::Cruise,
        })
    }

    /// The intent a marshalling sign communicates.
    pub fn human_intent(sign: MarshallingSign) -> HumanIntent {
        match sign {
            MarshallingSign::AttentionGained => HumanIntent::GrantAttention,
            MarshallingSign::Yes => HumanIntent::Consent,
            MarshallingSign::No => HumanIntent::Refuse,
        }
    }

    /// The sign expressing a human intent.
    pub fn sign_for(intent: HumanIntent) -> MarshallingSign {
        match intent {
            HumanIntent::GrantAttention => MarshallingSign::AttentionGained,
            HumanIntent::Consent => MarshallingSign::Yes,
            HumanIntent::Refuse => MarshallingSign::No,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drone_mapping_is_a_bijection() {
        for p in [
            PatternKind::TakeOff,
            PatternKind::Landing,
            PatternKind::Cruise,
            PatternKind::Poke,
            PatternKind::Nod,
            PatternKind::Turn,
            PatternKind::RectangleRequest,
        ] {
            let intent = Vocabulary::drone_intent(p).expect("every pattern has an intent");
            assert_eq!(Vocabulary::pattern_for(intent), Some(p), "{p}");
        }
    }

    #[test]
    fn human_mapping_is_a_bijection() {
        for s in MarshallingSign::ALL {
            let intent = Vocabulary::human_intent(s);
            assert_eq!(Vocabulary::sign_for(intent), s);
        }
    }

    #[test]
    fn communicative_meanings_match_the_paper() {
        assert_eq!(
            Vocabulary::drone_intent(PatternKind::Nod),
            Some(DroneIntent::AcknowledgeYes)
        );
        assert_eq!(
            Vocabulary::drone_intent(PatternKind::Turn),
            Some(DroneIntent::AcknowledgeNo)
        );
        assert_eq!(
            Vocabulary::human_intent(MarshallingSign::AttentionGained),
            HumanIntent::GrantAttention
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(DroneIntent::RequestArea.to_string(), "request area");
        assert_eq!(HumanIntent::Refuse.to_string(), "refuse");
    }
}
