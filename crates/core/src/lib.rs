//! `hdc-core` — the human-drone communication language of the paper.
//!
//! This crate is the reproduction's primary contribution layer: it encodes
//! the *language* (what drone motions and lights mean, what human signs
//! mean), the *negotiation protocol* built from the paper's user stories
//! (poke → attention → area request → yes/no), the *roles* with their
//! training levels (orchard supervisor / worker / visitor), the derived
//! *requirements* registry, the *safety* posture (all-red danger default,
//! land on violation), and a closed-loop [`CollaborationSession`] that wires
//! the simulated drone, a stochastic human agent and the real vision
//! pipeline together — camera frames included.
//!
//! # Example
//! ```
//! use hdc_core::{CollaborationSession, SessionConfig, SessionOutcome};
//!
//! let mut session = CollaborationSession::new(SessionConfig::worker_example(42));
//! let outcome = session.run();
//! // a trained worker almost always resolves the negotiation one way or the other
//! assert!(outcome != SessionOutcome::StillRunning);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod datalink;
mod language;
mod log;
mod protocol;
mod requirements;
mod roles;
mod safety;
mod session;

pub use datalink::{DatalinkConfig, LinkEvent, LinkPump, LinkReport, SessionLink};
pub use language::{DroneIntent, HumanIntent, Vocabulary};
pub use log::{EventLog, LogEntry};
pub use protocol::{
    NegotiationConfig, NegotiationMachine, NegotiationState, ProtocolAction, SessionOutcome,
};
pub use requirements::{requirement, Requirement, RequirementId, REQUIREMENTS};
pub use roles::{Role, RoleProfile, TrainingLevel};
pub use safety::{SafetyMonitor, SafetyViolation};
pub use session::{
    CollaborationSession, FrameFate, HumanScript, ScriptedResponse, SessionConfig, SessionFaults,
    SessionReport,
};
