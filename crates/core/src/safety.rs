//! Safety monitoring: the paper's "fundamental safety aspects first".
//!
//! The monitor watches the geometric relationship between drone and human
//! plus the flight envelope, and reports violations. The session wires a
//! violation to the protocol abort and the drone's all-red danger landing
//! (requirement R2).

use hdc_drone::DroneState;
use hdc_geometry::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A detected safety violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SafetyViolation {
    /// Drone closer to the human than the minimum separation without
    /// granted access.
    SeparationBreach {
        /// Horizontal distance at the time of the breach, metres.
        distance_m: f64,
        /// The minimum allowed.
        minimum_m: f64,
    },
    /// Drone left the permitted operating area.
    GeofenceBreach {
        /// Offending ground position.
        position: Vec2,
    },
    /// Drone above the permitted ceiling.
    CeilingBreach {
        /// Offending altitude, metres.
        altitude_m: f64,
    },
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::SeparationBreach {
                distance_m,
                minimum_m,
            } => {
                write!(
                    f,
                    "separation breach: {distance_m:.2} m < minimum {minimum_m:.2} m"
                )
            }
            SafetyViolation::GeofenceBreach { position } => {
                write!(f, "geofence breach at {position}")
            }
            SafetyViolation::CeilingBreach { altitude_m } => {
                write!(f, "ceiling breach at {altitude_m:.2} m")
            }
        }
    }
}

/// The safety monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyMonitor {
    /// Minimum horizontal drone-human separation without granted access, m.
    pub min_separation_m: f64,
    /// Optional rectangular geofence `(min corner, max corner)`.
    pub geofence: Option<(Vec2, Vec2)>,
    /// Altitude ceiling, metres.
    pub max_altitude_m: f64,
    /// Whether the human has granted access (suspends the separation rule).
    pub access_granted: bool,
}

impl Default for SafetyMonitor {
    fn default() -> Self {
        SafetyMonitor {
            min_separation_m: 2.0,
            geofence: None,
            max_altitude_m: 30.0,
            access_granted: false,
        }
    }
}

impl SafetyMonitor {
    /// Checks the current state against all rules; returns the first
    /// violation found (separation is checked first — it is the one that
    /// hurts people).
    pub fn check(&self, drone: &DroneState, human_position: Vec2) -> Option<SafetyViolation> {
        if drone.rotors_on && !self.access_granted {
            let d = drone.position.xy().distance(human_position);
            if d < self.min_separation_m {
                return Some(SafetyViolation::SeparationBreach {
                    distance_m: d,
                    minimum_m: self.min_separation_m,
                });
            }
        }
        if let Some((lo, hi)) = self.geofence {
            let p = drone.position.xy();
            if p.x < lo.x || p.y < lo.y || p.x > hi.x || p.y > hi.y {
                return Some(SafetyViolation::GeofenceBreach { position: p });
            }
        }
        if drone.position.z > self.max_altitude_m {
            return Some(SafetyViolation::CeilingBreach {
                altitude_m: drone.position.z,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_geometry::Vec3;

    fn flying_at(p: Vec3) -> DroneState {
        DroneState {
            position: p,
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: true,
        }
    }

    #[test]
    fn separation_enforced() {
        let m = SafetyMonitor::default();
        let v = m.check(&flying_at(Vec3::new(1.0, 0.0, 4.0)), Vec2::ZERO);
        assert!(matches!(v, Some(SafetyViolation::SeparationBreach { .. })));
        assert!(m
            .check(&flying_at(Vec3::new(3.0, 0.0, 4.0)), Vec2::ZERO)
            .is_none());
    }

    #[test]
    fn granted_access_suspends_separation() {
        let m = SafetyMonitor {
            access_granted: true,
            ..Default::default()
        };
        assert!(m
            .check(&flying_at(Vec3::new(0.5, 0.0, 4.0)), Vec2::ZERO)
            .is_none());
    }

    #[test]
    fn grounded_drone_is_never_a_separation_threat() {
        let m = SafetyMonitor::default();
        let parked = DroneState::parked(Vec3::new(0.5, 0.0, 0.0));
        assert!(m.check(&parked, Vec2::ZERO).is_none());
    }

    #[test]
    fn geofence_enforced() {
        let m = SafetyMonitor {
            geofence: Some((Vec2::new(-10.0, -10.0), Vec2::new(10.0, 10.0))),
            ..Default::default()
        };
        assert!(m
            .check(&flying_at(Vec3::new(11.0, 0.0, 4.0)), Vec2::new(50.0, 50.0))
            .is_some());
        assert!(m
            .check(&flying_at(Vec3::new(9.0, 0.0, 4.0)), Vec2::new(50.0, 50.0))
            .is_none());
    }

    #[test]
    fn ceiling_enforced() {
        let m = SafetyMonitor::default();
        let v = m.check(&flying_at(Vec3::new(20.0, 0.0, 31.0)), Vec2::ZERO);
        assert!(matches!(v, Some(SafetyViolation::CeilingBreach { .. })));
    }

    #[test]
    fn violation_display() {
        let v = SafetyViolation::SeparationBreach {
            distance_m: 1.5,
            minimum_m: 2.0,
        };
        assert_eq!(v.to_string(), "separation breach: 1.50 m < minimum 2.00 m");
    }
}
