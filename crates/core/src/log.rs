//! Timestamped event logging for negotiation sessions.

use crate::protocol::{NegotiationState, ProtocolAction};
use hdc_drone::{DroneEvent, PatternKind};
use hdc_figure::MarshallingSign;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One entry in a session log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogEntry {
    /// The protocol state machine changed state.
    StateChanged {
        /// The state entered.
        to: NegotiationState,
    },
    /// The protocol issued an action.
    Action(ProtocolAction),
    /// The drone emitted an event.
    Drone(DroneEvent),
    /// The drone finished a flight pattern.
    PatternDone(PatternKind),
    /// The human started holding a sign.
    HumanSigned(MarshallingSign),
    /// The human stopped signing.
    HumanIdle,
    /// The vision pipeline produced a decision.
    Recognized(Option<String>),
    /// Free-text note (experiment annotations).
    Note(String),
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogEntry::StateChanged { to } => write!(f, "state → {to}"),
            LogEntry::Action(a) => write!(f, "action: {a}"),
            LogEntry::Drone(e) => write!(f, "drone: {e:?}"),
            LogEntry::PatternDone(k) => write!(f, "pattern complete: {k}"),
            LogEntry::HumanSigned(s) => write!(f, "human signs {s}"),
            LogEntry::HumanIdle => write!(f, "human lowers arms"),
            LogEntry::Recognized(Some(l)) => write!(f, "vision: recognised {l}"),
            LogEntry::Recognized(None) => write!(f, "vision: no sign"),
            LogEntry::Note(s) => write!(f, "note: {s}"),
        }
    }
}

/// A timestamped sequence of [`LogEntry`] values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    entries: Vec<(f64, LogEntry)>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an entry at time `t`.
    pub fn push(&mut self, t: f64, entry: LogEntry) {
        self.entries.push((t, entry));
    }

    /// The entries in order.
    pub fn entries(&self) -> &[(f64, LogEntry)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries matching a predicate.
    pub fn filter<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a (f64, LogEntry)> + 'a
    where
        F: FnMut(&LogEntry) -> bool + 'a,
    {
        self.entries.iter().filter(move |(_, e)| pred(e))
    }

    /// First time an entry satisfying `pred` occurs.
    pub fn first_time<F>(&self, mut pred: F) -> Option<f64>
    where
        F: FnMut(&LogEntry) -> bool,
    {
        self.entries.iter().find(|(_, e)| pred(e)).map(|(t, _)| *t)
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.entries {
            writeln!(f, "[{t:7.2}s] {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(1.0, LogEntry::Note("a".into()));
        log.push(2.0, LogEntry::HumanIdle);
        log.push(3.0, LogEntry::Note("b".into()));
        assert_eq!(log.len(), 3);
        let notes: Vec<_> = log.filter(|e| matches!(e, LogEntry::Note(_))).collect();
        assert_eq!(notes.len(), 2);
        assert_eq!(log.first_time(|e| *e == LogEntry::HumanIdle), Some(2.0));
        assert_eq!(
            log.first_time(|e| matches!(e, LogEntry::Recognized(_))),
            None
        );
    }

    #[test]
    fn display_renders_lines() {
        let mut log = EventLog::new();
        log.push(0.5, LogEntry::HumanSigned(MarshallingSign::Yes));
        log.push(1.0, LogEntry::Recognized(Some("Yes".into())));
        let text = log.to_string();
        assert!(text.contains("human signs Yes"));
        assert!(text.contains("vision: recognised Yes"));
        assert!(text.contains("[   0.50s]"));
    }
}
