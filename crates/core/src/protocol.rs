//! The negotiation protocol state machine (drone side).
//!
//! Section III's narrative, as a machine: the drone approaches, *pokes* to
//! attract attention, waits for the *attention-gained* sign, flies the
//! *rectangle* to request the collaborator's area, waits for *yes* / *no*,
//! acknowledges with a *nod* / *turn*, and enters or retreats. Timeouts
//! retry a bounded number of times and then abort with a retreat; a safety
//! trigger aborts immediately with the all-red ring and a landing.

use hdc_figure::MarshallingSign;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tunable protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegotiationConfig {
    /// Seconds to wait for the attention-gained sign after a poke.
    pub attention_timeout_s: f64,
    /// Seconds to wait for a yes/no after the rectangle.
    pub answer_timeout_s: f64,
    /// How many pokes before giving up.
    pub max_poke_attempts: u32,
    /// How many rectangle requests before giving up.
    pub max_request_attempts: u32,
    /// Seconds allowed for the transit to the contact point before the
    /// negotiation is abandoned (wind or a degraded platform can make the
    /// approach unachievable; the protocol must stay time-bounded anyway).
    pub approach_timeout_s: f64,
}

impl Default for NegotiationConfig {
    fn default() -> Self {
        NegotiationConfig {
            attention_timeout_s: 8.0,
            answer_timeout_s: 10.0,
            max_poke_attempts: 3,
            max_request_attempts: 2,
            approach_timeout_s: 60.0,
        }
    }
}

/// States of the negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NegotiationState {
    /// Not yet started.
    Idle,
    /// Flying to the contact point at safe distance.
    Approaching,
    /// Executing the poke pattern.
    Poking,
    /// Waiting for the attention-gained sign.
    AwaitingAttention,
    /// Executing the rectangle pattern.
    RequestingArea,
    /// Waiting for yes/no.
    AwaitingAnswer,
    /// Affirmative received; entering the area.
    Granted,
    /// Negative received; retreating.
    Denied,
    /// Gave up (no attention or no answer); retreating.
    Abandoned,
    /// Safety abort.
    Aborted,
}

impl fmt::Display for NegotiationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NegotiationState::Idle => "idle",
            NegotiationState::Approaching => "approaching",
            NegotiationState::Poking => "poking",
            NegotiationState::AwaitingAttention => "awaiting attention",
            NegotiationState::RequestingArea => "requesting area",
            NegotiationState::AwaitingAnswer => "awaiting answer",
            NegotiationState::Granted => "granted",
            NegotiationState::Denied => "denied",
            NegotiationState::Abandoned => "abandoned",
            NegotiationState::Aborted => "aborted (safety)",
        };
        f.write_str(s)
    }
}

impl NegotiationState {
    /// Whether the negotiation has finished (successfully or not).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            NegotiationState::Granted
                | NegotiationState::Denied
                | NegotiationState::Abandoned
                | NegotiationState::Aborted
        )
    }
}

/// Final outcome classification (for experiment statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionOutcome {
    /// Access granted (Yes).
    Granted,
    /// Access denied (No).
    Denied,
    /// No usable response; gave up.
    Abandoned,
    /// Safety abort.
    Aborted,
    /// Negotiation still in progress.
    StillRunning,
}

impl fmt::Display for SessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionOutcome::Granted => "granted",
            SessionOutcome::Denied => "denied",
            SessionOutcome::Abandoned => "abandoned",
            SessionOutcome::Aborted => "aborted",
            SessionOutcome::StillRunning => "still running",
        };
        f.write_str(s)
    }
}

/// Actions the machine asks its host (the drone) to perform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolAction {
    /// Fly to the contact point at safe distance from the collaborator.
    FlyToContact,
    /// Execute the poke pattern.
    ExecutePoke,
    /// Execute the rectangle (area request) pattern.
    ExecuteRectangle,
    /// Execute the nod (acknowledge yes).
    ExecuteNod,
    /// Execute the turn (acknowledge no).
    ExecuteTurn,
    /// Enter the requested area and do the work.
    EnterArea,
    /// Retreat to a respectful distance.
    Retreat,
    /// Switch the ring to danger and land (safety).
    DangerLand,
}

impl fmt::Display for ProtocolAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolAction::FlyToContact => "fly to contact point",
            ProtocolAction::ExecutePoke => "poke",
            ProtocolAction::ExecuteRectangle => "fly rectangle (request area)",
            ProtocolAction::ExecuteNod => "nod (acknowledge yes)",
            ProtocolAction::ExecuteTurn => "turn (acknowledge no)",
            ProtocolAction::EnterArea => "enter area",
            ProtocolAction::Retreat => "retreat",
            ProtocolAction::DangerLand => "danger lights + land",
        };
        f.write_str(s)
    }
}

/// The drone-side negotiation state machine.
///
/// Drive it with [`NegotiationMachine::start`], feed it pattern completions
/// ([`NegotiationMachine::on_pattern_complete`]), recognised signs
/// ([`NegotiationMachine::on_sign`]) and the clock
/// ([`NegotiationMachine::poll`]); each call returns the actions the host
/// must execute.
///
/// # Example
/// ```
/// use hdc_core::{NegotiationMachine, NegotiationConfig, NegotiationState, ProtocolAction};
/// use hdc_figure::MarshallingSign;
///
/// let mut m = NegotiationMachine::new(NegotiationConfig::default());
/// assert_eq!(m.start(0.0), vec![ProtocolAction::FlyToContact]);
/// assert_eq!(m.on_arrived(2.0), vec![ProtocolAction::ExecutePoke]);
/// m.on_pattern_complete(4.0);
/// let actions = m.on_sign(Some(MarshallingSign::AttentionGained), 5.0);
/// assert_eq!(actions, vec![ProtocolAction::ExecuteRectangle]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegotiationMachine {
    config: NegotiationConfig,
    state: NegotiationState,
    deadline: Option<f64>,
    pokes_used: u32,
    requests_used: u32,
}

impl NegotiationMachine {
    /// Creates an idle machine.
    pub fn new(config: NegotiationConfig) -> Self {
        NegotiationMachine {
            config,
            state: NegotiationState::Idle,
            deadline: None,
            pokes_used: 0,
            requests_used: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> NegotiationState {
        self.state
    }

    /// The configuration.
    pub fn config(&self) -> &NegotiationConfig {
        &self.config
    }

    /// The absolute time of the next timeout [`NegotiationMachine::poll`]
    /// would fire, if one is armed — what an event-driven scheduler sleeps
    /// until instead of polling every tick.
    pub fn next_deadline(&self) -> Option<f64> {
        self.deadline
    }

    /// The outcome, if terminal.
    pub fn outcome(&self) -> SessionOutcome {
        match self.state {
            NegotiationState::Granted => SessionOutcome::Granted,
            NegotiationState::Denied => SessionOutcome::Denied,
            NegotiationState::Abandoned => SessionOutcome::Abandoned,
            NegotiationState::Aborted => SessionOutcome::Aborted,
            _ => SessionOutcome::StillRunning,
        }
    }

    fn enter_state(&mut self, s: NegotiationState) {
        self.state = s;
    }

    /// Begins the negotiation.
    ///
    /// Returns the initial actions. Does nothing if already started.
    pub fn start(&mut self, now: f64) -> Vec<ProtocolAction> {
        if self.state != NegotiationState::Idle {
            return Vec::new();
        }
        self.enter_state(NegotiationState::Approaching);
        self.deadline = Some(now + self.config.approach_timeout_s);
        vec![ProtocolAction::FlyToContact]
    }

    /// The drone reached the contact point.
    pub fn on_arrived(&mut self, _now: f64) -> Vec<ProtocolAction> {
        if self.state != NegotiationState::Approaching {
            return Vec::new();
        }
        self.deadline = None;
        self.pokes_used += 1;
        self.enter_state(NegotiationState::Poking);
        vec![ProtocolAction::ExecutePoke]
    }

    /// A commanded communicative pattern finished.
    pub fn on_pattern_complete(&mut self, now: f64) -> Vec<ProtocolAction> {
        match self.state {
            NegotiationState::Poking => {
                self.enter_state(NegotiationState::AwaitingAttention);
                self.deadline = Some(now + self.config.attention_timeout_s);
                Vec::new()
            }
            NegotiationState::RequestingArea => {
                self.enter_state(NegotiationState::AwaitingAnswer);
                self.deadline = Some(now + self.config.answer_timeout_s);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// A recognised sign (or a frame with none) arrived from the vision
    /// pipeline.
    pub fn on_sign(&mut self, sign: Option<MarshallingSign>, _now: f64) -> Vec<ProtocolAction> {
        match (self.state, sign) {
            (NegotiationState::AwaitingAttention, Some(MarshallingSign::AttentionGained)) => {
                self.deadline = None;
                self.requests_used += 1;
                self.enter_state(NegotiationState::RequestingArea);
                vec![ProtocolAction::ExecuteRectangle]
            }
            (NegotiationState::AwaitingAnswer, Some(MarshallingSign::Yes)) => {
                self.deadline = None;
                self.enter_state(NegotiationState::Granted);
                vec![ProtocolAction::ExecuteNod, ProtocolAction::EnterArea]
            }
            (NegotiationState::AwaitingAnswer, Some(MarshallingSign::No)) => {
                self.deadline = None;
                self.enter_state(NegotiationState::Denied);
                vec![ProtocolAction::ExecuteTurn, ProtocolAction::Retreat]
            }
            // an attention sign while awaiting the answer just means the
            // person is still engaged; keep waiting
            _ => Vec::new(),
        }
    }

    /// Clock tick: fires timeouts.
    pub fn poll(&mut self, now: f64) -> Vec<ProtocolAction> {
        let Some(deadline) = self.deadline else {
            return Vec::new();
        };
        if now < deadline {
            return Vec::new();
        }
        self.deadline = None;
        match self.state {
            NegotiationState::Approaching => {
                // the contact point proved unreachable in time: give up
                self.enter_state(NegotiationState::Abandoned);
                vec![ProtocolAction::Retreat]
            }
            NegotiationState::AwaitingAttention => {
                if self.pokes_used < self.config.max_poke_attempts {
                    self.pokes_used += 1;
                    self.enter_state(NegotiationState::Poking);
                    vec![ProtocolAction::ExecutePoke]
                } else {
                    self.enter_state(NegotiationState::Abandoned);
                    vec![ProtocolAction::Retreat]
                }
            }
            NegotiationState::AwaitingAnswer => {
                if self.requests_used < self.config.max_request_attempts {
                    self.requests_used += 1;
                    self.enter_state(NegotiationState::RequestingArea);
                    vec![ProtocolAction::ExecuteRectangle]
                } else {
                    self.enter_state(NegotiationState::Abandoned);
                    vec![ProtocolAction::Retreat]
                }
            }
            _ => Vec::new(),
        }
    }

    /// The human waved the drone off (dynamic gesture — an emphatic "no,
    /// go away" available in any live state, unlike the static No which is
    /// only read while awaiting the answer).
    ///
    /// The drone acknowledges with the turn pattern and retreats; the
    /// negotiation terminates as denied.
    pub fn on_wave_off(&mut self, _now: f64) -> Vec<ProtocolAction> {
        if self.state.is_terminal() || self.state == NegotiationState::Idle {
            return Vec::new();
        }
        self.deadline = None;
        self.enter_state(NegotiationState::Denied);
        vec![ProtocolAction::ExecuteTurn, ProtocolAction::Retreat]
    }

    /// A safety function fired: abort everything.
    pub fn on_safety(&mut self, _now: f64) -> Vec<ProtocolAction> {
        if self.state.is_terminal() {
            return Vec::new();
        }
        self.deadline = None;
        self.enter_state(NegotiationState::Aborted);
        vec![ProtocolAction::DangerLand]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> NegotiationMachine {
        NegotiationMachine::new(NegotiationConfig::default())
    }

    /// Drives the happy path up to awaiting-answer.
    fn to_awaiting_answer(m: &mut NegotiationMachine) {
        m.start(0.0);
        m.on_arrived(1.0);
        m.on_pattern_complete(2.0);
        assert_eq!(m.state(), NegotiationState::AwaitingAttention);
        m.on_sign(Some(MarshallingSign::AttentionGained), 3.0);
        assert_eq!(m.state(), NegotiationState::RequestingArea);
        m.on_pattern_complete(4.0);
        assert_eq!(m.state(), NegotiationState::AwaitingAnswer);
    }

    #[test]
    fn happy_path_yes() {
        let mut m = machine();
        to_awaiting_answer(&mut m);
        let actions = m.on_sign(Some(MarshallingSign::Yes), 5.0);
        assert_eq!(
            actions,
            vec![ProtocolAction::ExecuteNod, ProtocolAction::EnterArea]
        );
        assert_eq!(m.state(), NegotiationState::Granted);
        assert_eq!(m.outcome(), SessionOutcome::Granted);
        assert!(m.state().is_terminal());
    }

    #[test]
    fn happy_path_no() {
        let mut m = machine();
        to_awaiting_answer(&mut m);
        let actions = m.on_sign(Some(MarshallingSign::No), 5.0);
        assert_eq!(
            actions,
            vec![ProtocolAction::ExecuteTurn, ProtocolAction::Retreat]
        );
        assert_eq!(m.outcome(), SessionOutcome::Denied);
    }

    #[test]
    fn attention_timeout_retries_then_abandons() {
        let mut m = machine();
        m.start(0.0);
        m.on_arrived(1.0);
        m.on_pattern_complete(2.0); // poke 1 done, deadline 10.0
        assert!(
            m.poll(9.9).is_empty(),
            "before the deadline nothing happens"
        );
        let a = m.poll(10.1);
        assert_eq!(a, vec![ProtocolAction::ExecutePoke], "retry poke 2");
        m.on_pattern_complete(11.0);
        let a = m.poll(20.0);
        assert_eq!(a, vec![ProtocolAction::ExecutePoke], "retry poke 3");
        m.on_pattern_complete(21.0);
        let a = m.poll(30.0);
        assert_eq!(a, vec![ProtocolAction::Retreat], "out of retries");
        assert_eq!(m.outcome(), SessionOutcome::Abandoned);
    }

    #[test]
    fn answer_timeout_retries_rectangle() {
        let mut m = machine();
        to_awaiting_answer(&mut m);
        let a = m.poll(100.0);
        assert_eq!(
            a,
            vec![ProtocolAction::ExecuteRectangle],
            "repeat the request"
        );
        m.on_pattern_complete(101.0);
        let a = m.poll(200.0);
        assert_eq!(a, vec![ProtocolAction::Retreat]);
        assert_eq!(m.outcome(), SessionOutcome::Abandoned);
    }

    #[test]
    fn unreachable_contact_point_abandons_in_bounded_time() {
        let mut m = machine();
        m.start(0.0);
        assert!(m.poll(59.9).is_empty(), "still approaching");
        let a = m.poll(60.1);
        assert_eq!(a, vec![ProtocolAction::Retreat]);
        assert_eq!(m.outcome(), SessionOutcome::Abandoned);
    }

    #[test]
    fn arrival_clears_the_approach_deadline() {
        let mut m = machine();
        m.start(0.0);
        m.on_arrived(1.0);
        m.on_pattern_complete(2.0); // attention deadline now governs
        assert!(m.poll(9.9).is_empty());
        assert_eq!(m.poll(10.1), vec![ProtocolAction::ExecutePoke]);
    }

    #[test]
    fn wrong_sign_is_ignored_while_awaiting_attention() {
        let mut m = machine();
        m.start(0.0);
        m.on_arrived(1.0);
        m.on_pattern_complete(2.0);
        assert!(m.on_sign(Some(MarshallingSign::Yes), 3.0).is_empty());
        assert!(m.on_sign(None, 3.5).is_empty());
        assert_eq!(m.state(), NegotiationState::AwaitingAttention);
    }

    #[test]
    fn no_entry_without_yes() {
        // R4: EnterArea is emitted only by the Yes transition
        let mut m = machine();
        to_awaiting_answer(&mut m);
        let mut all_actions = Vec::new();
        all_actions.extend(m.on_sign(Some(MarshallingSign::AttentionGained), 5.0));
        all_actions.extend(m.on_sign(None, 6.0));
        all_actions.extend(m.poll(7.0));
        assert!(
            !all_actions.contains(&ProtocolAction::EnterArea),
            "no entry before an explicit Yes"
        );
    }

    #[test]
    fn safety_aborts_from_any_state() {
        for drive in 0..4 {
            let mut m = machine();
            m.start(0.0);
            if drive >= 1 {
                m.on_arrived(1.0);
            }
            if drive >= 2 {
                m.on_pattern_complete(2.0);
            }
            if drive >= 3 {
                m.on_sign(Some(MarshallingSign::AttentionGained), 3.0);
            }
            let a = m.on_safety(4.0);
            assert_eq!(a, vec![ProtocolAction::DangerLand]);
            assert_eq!(m.outcome(), SessionOutcome::Aborted);
            // terminal: further events do nothing
            assert!(m.on_sign(Some(MarshallingSign::Yes), 5.0).is_empty());
            assert!(m.poll(100.0).is_empty());
            assert!(m.on_safety(6.0).is_empty());
        }
    }

    #[test]
    fn wave_off_denies_from_any_live_state() {
        for drive in 1..4 {
            let mut m = machine();
            m.start(0.0);
            if drive >= 2 {
                m.on_arrived(1.0);
                m.on_pattern_complete(2.0);
            }
            if drive >= 3 {
                m.on_sign(Some(MarshallingSign::AttentionGained), 3.0);
                m.on_pattern_complete(4.0);
            }
            let actions = m.on_wave_off(5.0);
            assert_eq!(
                actions,
                vec![ProtocolAction::ExecuteTurn, ProtocolAction::Retreat],
                "drive {drive}"
            );
            assert_eq!(m.outcome(), SessionOutcome::Denied);
            assert!(!actions.contains(&ProtocolAction::EnterArea));
        }
        // but not before starting, and not after terminal
        let mut m = machine();
        assert!(m.on_wave_off(0.0).is_empty());
        to_awaiting_answer(&mut m);
        m.on_sign(Some(MarshallingSign::Yes), 9.0);
        assert!(m.on_wave_off(10.0).is_empty(), "granted is final");
    }

    #[test]
    fn start_is_idempotent() {
        let mut m = machine();
        assert_eq!(m.start(0.0), vec![ProtocolAction::FlyToContact]);
        assert!(m.start(1.0).is_empty());
    }

    #[test]
    fn arrival_only_valid_when_approaching() {
        let mut m = machine();
        assert!(m.on_arrived(0.0).is_empty(), "not started yet");
        m.start(0.0);
        assert_eq!(m.on_arrived(1.0), vec![ProtocolAction::ExecutePoke]);
        assert!(m.on_arrived(2.0).is_empty(), "already poking");
    }

    #[test]
    fn outcome_before_terminal_is_running() {
        let mut m = machine();
        assert_eq!(m.outcome(), SessionOutcome::StillRunning);
        m.start(0.0);
        assert_eq!(m.outcome(), SessionOutcome::StillRunning);
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            NegotiationState::AwaitingAnswer.to_string(),
            "awaiting answer"
        );
        assert_eq!(
            ProtocolAction::ExecuteRectangle.to_string(),
            "fly rectangle (request area)"
        );
        assert_eq!(SessionOutcome::Granted.to_string(), "granted");
    }
}
