//! Roles and training levels from the paper's user stories.
//!
//! Section II: requirements were assembled "via the creation of user-stories
//! based around three characters, orchard supervisor, orchard worker and
//! orchard visitor, corresponding roughly to well trained, partially trained
//! and non-trained persons". The [`RoleProfile`] numbers parameterise the
//! stochastic human agents used by the protocol experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three user-story characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Orchard supervisor: well trained in the sign language.
    Supervisor,
    /// Orchard worker: partially trained.
    Worker,
    /// Orchard visitor: untrained.
    Visitor,
}

impl Role {
    /// All roles in training order.
    pub const ALL: [Role; 3] = [Role::Supervisor, Role::Worker, Role::Visitor];

    /// The role's training level.
    pub fn training(&self) -> TrainingLevel {
        match self {
            Role::Supervisor => TrainingLevel::Trained,
            Role::Worker => TrainingLevel::PartiallyTrained,
            Role::Visitor => TrainingLevel::Untrained,
        }
    }

    /// The behavioural profile for this role.
    pub fn profile(&self) -> RoleProfile {
        match self {
            Role::Supervisor => RoleProfile {
                attend_probability: 0.98,
                correct_sign_probability: 0.99,
                answer_probability: 0.98,
                min_latency_s: 0.5,
                max_latency_s: 1.5,
                max_facing_error_deg: 5.0,
                pose_jitter_rad: 0.03,
            },
            Role::Worker => RoleProfile {
                attend_probability: 0.90,
                correct_sign_probability: 0.92,
                answer_probability: 0.90,
                min_latency_s: 0.8,
                max_latency_s: 3.0,
                max_facing_error_deg: 15.0,
                pose_jitter_rad: 0.06,
            },
            Role::Visitor => RoleProfile {
                attend_probability: 0.45,
                correct_sign_probability: 0.55,
                answer_probability: 0.50,
                min_latency_s: 1.5,
                max_latency_s: 6.0,
                max_facing_error_deg: 45.0,
                pose_jitter_rad: 0.12,
            },
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Supervisor => "supervisor",
            Role::Worker => "worker",
            Role::Visitor => "visitor",
        };
        f.write_str(s)
    }
}

/// Degree of training in the sign language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrainingLevel {
    /// Knows all signs and the protocol.
    Trained,
    /// Knows the signs, slower and less reliable.
    PartiallyTrained,
    /// May not know the signs at all.
    Untrained,
}

/// Behavioural parameters of a role (used by the stochastic human agent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoleProfile {
    /// Probability of noticing and responding to a poke.
    pub attend_probability: f64,
    /// Probability the shown sign is the intended one (vs a wrong/garbled sign).
    pub correct_sign_probability: f64,
    /// Probability of answering an area request at all.
    pub answer_probability: f64,
    /// Minimum response latency, seconds.
    pub min_latency_s: f64,
    /// Maximum response latency, seconds.
    pub max_latency_s: f64,
    /// Maximum error between the person's facing and the drone bearing when
    /// signing, degrees (drives the vision dead-angle in the loop).
    pub max_facing_error_deg: f64,
    /// Joint-angle jitter when holding a sign, radians.
    pub pose_jitter_rad: f64,
}

impl RoleProfile {
    /// Samples a response latency.
    pub fn sample_latency<R: Rng>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.min_latency_s..=self.max_latency_s)
    }

    /// Samples a facing error in radians (symmetric about zero).
    pub fn sample_facing_error<R: Rng>(&self, rng: &mut R) -> f64 {
        let m = self.max_facing_error_deg.to_radians();
        rng.gen_range(-m..=m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn training_levels_ordered() {
        assert_eq!(Role::Supervisor.training(), TrainingLevel::Trained);
        assert_eq!(Role::Worker.training(), TrainingLevel::PartiallyTrained);
        assert_eq!(Role::Visitor.training(), TrainingLevel::Untrained);
        assert!(TrainingLevel::Trained < TrainingLevel::Untrained);
    }

    #[test]
    fn profiles_degrade_with_training() {
        let s = Role::Supervisor.profile();
        let w = Role::Worker.profile();
        let v = Role::Visitor.profile();
        assert!(s.attend_probability > w.attend_probability);
        assert!(w.attend_probability > v.attend_probability);
        assert!(s.correct_sign_probability > v.correct_sign_probability);
        assert!(s.max_latency_s < v.max_latency_s);
        assert!(s.max_facing_error_deg < v.max_facing_error_deg);
    }

    #[test]
    fn latency_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = Role::Worker.profile();
        for _ in 0..100 {
            let l = p.sample_latency(&mut rng);
            assert!(l >= p.min_latency_s && l <= p.max_latency_s);
        }
    }

    #[test]
    fn facing_error_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = Role::Visitor.profile();
        let max = p.max_facing_error_deg.to_radians();
        for _ in 0..100 {
            let e = p.sample_facing_error(&mut rng);
            assert!(e.abs() <= max + 1e-12);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Role::Visitor.to_string(), "visitor");
        assert_eq!(Role::ALL.len(), 3);
    }
}
