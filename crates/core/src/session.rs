//! The closed-loop collaboration session.
//!
//! Everything the paper sketches, running end-to-end in one loop: the drone
//! approaches and pokes (motion), the human perceives the pattern (the
//! trajectory classifier — a person watching), decides per their role
//! profile, turns toward the drone and holds a sign (articulated figure),
//! the drone's camera renders a frame (pinhole projection), the vision
//! pipeline recognises the sign (SAX), and the protocol machine advances.
//! No channel is faked: misread patterns, bad facing angles, dead-angle
//! rejections and timeouts all happen for geometric reasons.

use crate::datalink::{DatalinkConfig, LinkEvent, LinkReport, SessionLink};
use crate::log::{EventLog, LogEntry};
use crate::protocol::{
    NegotiationConfig, NegotiationMachine, NegotiationState, ProtocolAction, SessionOutcome,
};
use crate::roles::Role;
use crate::safety::SafetyMonitor;
use hdc_drone::{
    Drone, DroneConfig, DroneEvent, FlightPattern, LedMode, PatternClassifier, PatternKind,
    WindModel,
};
use hdc_figure::{render_signaller, MarshallingSign, Pose, Signaller, ViewSpec};
use hdc_geometry::{CameraIntrinsics, PinholeCamera, Vec2, Vec3};
use hdc_raster::GrayImage;
use hdc_vision::{PipelineConfig, RecognitionPipeline};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a scripted human does when they read a drone pattern — the
/// deterministic (RNG-free) alternative to the stochastic role profiles,
/// used by failure-mode tests and the scenario harness so that behavioural
/// assertions cannot silently depend on a hand-tuned seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScriptedResponse {
    /// Hold this static sign.
    Sign(MarshallingSign),
    /// Wave the drone off (emphatic refusal).
    WaveOff,
    /// Do nothing (let the drone time out).
    Ignore,
}

/// A fully deterministic human-response script. When installed in
/// [`SessionConfig::script`] the human answers the poke and the area request
/// exactly as specified, after exactly `latency_s` seconds, facing the drone
/// exactly (no facing error, no pose jitter) — the session RNG is never
/// consulted for human behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HumanScript {
    /// Response to a perceived poke.
    pub on_poke: ScriptedResponse,
    /// Response to a perceived area request (rectangle).
    pub on_request: ScriptedResponse,
    /// Fixed response latency, seconds.
    pub latency_s: f64,
}

impl HumanScript {
    /// A cooperative script: attention, then the given answer.
    pub fn answering(answer: ScriptedResponse) -> Self {
        HumanScript {
            on_poke: ScriptedResponse::Sign(MarshallingSign::AttentionGained),
            on_request: answer,
            latency_s: 1.0,
        }
    }

    /// An emphatic refuser who waves the drone off at the first poke.
    pub fn wave_off() -> Self {
        HumanScript {
            on_poke: ScriptedResponse::WaveOff,
            on_request: ScriptedResponse::WaveOff,
            latency_s: 1.0,
        }
    }
}

/// What a fault layer decides to do with a rendered camera frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Process the frame normally.
    Deliver,
    /// Discard the frame (transport loss / sensor dropout).
    Drop,
    /// Process the frame twice (stuck frame buffer).
    Duplicate,
}

/// Deterministic fault-injection hooks the session consults at its
/// disturbance points. Implementations live outside this crate (see the
/// `hdc-sim` scenario harness); every method has a no-fault default so
/// implementors override only the channels they perturb. Implementations
/// must be deterministic given their own construction seed — the session
/// guarantees it calls the hooks in a fixed order.
pub trait SessionFaults: std::fmt::Debug {
    /// Inspects/mutates a rendered camera frame before recognition and
    /// decides its fate. Called once per camera frame.
    fn on_frame(&mut self, _t: f64, _frame: &mut GrayImage) -> FrameFate {
        FrameFate::Deliver
    }

    /// Extra human response latency added on top of the profile/script
    /// latency, seconds. Called once per scheduled response.
    fn response_delay(&mut self, _t: f64) -> f64 {
        0.0
    }

    /// Additional facing error applied when the human turns toward the
    /// drone, radians. Called once per response.
    fn facing_bias(&mut self, _t: f64) -> f64 {
        0.0
    }

    /// Heading drift rate while the human is signalling, radians/second
    /// (models a signaller slowly rotating into the dead angle). Called once
    /// per simulation step while the human holds a sign or waves.
    fn heading_drift(&mut self, _t: f64) -> f64 {
        0.0
    }

    /// A role change taking effect now (mid-negotiation shift change).
    /// Called once per simulation step; the first `Some` sticks.
    fn role_change(&mut self, _t: f64) -> Option<Role> {
        None
    }

    /// The next absolute time at which this layer needs the session to take
    /// a step it would not otherwise take (e.g. a scheduled role change), or
    /// `None` when the layer rides the session's own events. Consulted by
    /// the event-driven scheduler only; lockstep mode steps every `DT`
    /// regardless. Per-step hooks that are linear in the step span (a
    /// constant heading-drift rate) coalesce exactly and need no deadline;
    /// layers with genuinely time-varying per-step behaviour should override
    /// this to cap the coalescing window.
    fn next_due(&mut self, _now: f64) -> Option<f64> {
        None
    }
}

/// Session parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The human collaborator's role (drives response behaviour).
    pub role: Role,
    /// Whether the human intends to consent when asked.
    pub will_consent: bool,
    /// Human ground position.
    pub human_position: Vec2,
    /// Human initial facing, radians.
    pub human_heading: f64,
    /// Drone start (ground) position.
    pub drone_home: Vec2,
    /// Horizontal contact distance for the negotiation, metres.
    pub contact_distance_m: f64,
    /// Negotiation altitude, metres.
    pub negotiation_altitude_m: f64,
    /// Camera frame cadence while listening for signs, seconds.
    pub frame_interval_s: f64,
    /// Hard wall-clock cap on the session, seconds.
    pub max_duration_s: f64,
    /// Protocol timeouts/retries.
    pub negotiation: NegotiationConfig,
    /// RNG seed (human behaviour; the drone's wind process derives its own
    /// stream from this seed, so one value pins the whole session).
    pub seed: u64,
    /// Optional behavioural-profile override (sensitivity studies). When
    /// `None` the role's standard profile applies.
    pub profile_override: Option<crate::roles::RoleProfile>,
    /// Wind environment the drone flies in.
    pub wind: WindModel,
    /// Battery pack capacity, watt-hours (fault injection: battery sag).
    pub battery_wh: f64,
    /// Optional deterministic human-response script; replaces the stochastic
    /// role-profile behaviour entirely when set.
    pub script: Option<HumanScript>,
    /// Optional simulated drone↔supervisor datalink. When set, negotiation
    /// events and protocol actions travel as reliable link messages over
    /// seeded lossy channels (drop, duplication, reordering, partitions,
    /// heartbeat leases); when `None` they are direct in-process calls —
    /// the zero-fault special case, byte-identical to the pre-link engine.
    pub datalink: Option<DatalinkConfig>,
}

impl SessionConfig {
    /// A worker at 12 m who will consent — the paper's Figure 3 scenario.
    pub fn worker_example(seed: u64) -> Self {
        SessionConfig::for_role(Role::Worker, true, seed)
    }

    /// A session with the given role and consent intention.
    pub fn for_role(role: Role, will_consent: bool, seed: u64) -> Self {
        SessionConfig {
            role,
            will_consent,
            human_position: Vec2::new(12.0, 8.0),
            human_heading: 0.3,
            drone_home: Vec2::ZERO,
            contact_distance_m: 3.0,
            negotiation_altitude_m: 4.0,
            frame_interval_s: 0.5,
            max_duration_s: 180.0,
            negotiation: NegotiationConfig::default(),
            seed,
            profile_override: None,
            wind: WindModel::calm(),
            battery_wh: 71.0,
            script: None,
            datalink: None,
        }
    }

    /// The same session with a deterministic human-response script installed.
    pub fn with_script(mut self, script: HumanScript) -> Self {
        self.script = Some(script);
        self
    }

    /// The same session with a simulated datalink between drone and
    /// supervisor.
    pub fn with_datalink(mut self, datalink: DatalinkConfig) -> Self {
        self.datalink = Some(datalink);
        self
    }
}

/// What a finished session reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Final outcome.
    pub outcome: SessionOutcome,
    /// Total simulated time, seconds.
    pub duration_s: f64,
    /// Camera frames processed.
    pub frames_processed: usize,
    /// Frames on which the pipeline produced a decision.
    pub frames_recognized: usize,
    /// Frames discarded by an installed fault layer.
    pub frames_dropped: usize,
    /// Frames processed twice by an installed fault layer.
    pub frames_duplicated: usize,
    /// LED ring mode at session end (safety audits check the all-red latch).
    pub ring_mode: LedMode,
    /// Whether the drone's safety function engaged during the session.
    pub safety_engaged: bool,
    /// Whether the drone finished on the ground.
    pub grounded: bool,
    /// Datalink traffic summary, when a datalink was configured.
    pub link: Option<LinkReport>,
    /// The full event log.
    pub log: EventLog,
}

/// What the human decided to answer.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PlannedResponse {
    /// Hold a static marshalling sign.
    Sign(MarshallingSign),
    /// Wave the drone off (dynamic gesture — emphatic refusal).
    WaveOff,
}

/// A scheduled human response.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingResponse {
    due_at: f64,
    response: PlannedResponse,
}

/// What the human is doing with their arms right now.
#[derive(Debug, Clone, Copy, PartialEq)]
enum HumanActivity {
    /// Arms down.
    Idle,
    /// Holding a static sign until the deadline.
    Holding(MarshallingSign, f64, Pose),
    /// Waving the drone off until the deadline (slow deliberate wave).
    Waving(f64 /* until */, f64 /* started at */),
}

/// The human's current signalling state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HumanState {
    heading: f64,
    activity: HumanActivity,
    pending: Option<PendingResponse>,
}

/// The closed-loop session engine.
#[derive(Debug)]
pub struct CollaborationSession {
    config: SessionConfig,
    drone: Drone,
    machine: NegotiationMachine,
    pipeline: RecognitionPipeline,
    dynamic: hdc_vision::dynamic::DynamicRecognizer,
    observer: PatternClassifier,
    monitor: SafetyMonitor,
    human: HumanState,
    rng: SmallRng,
    log: EventLog,
    time: f64,
    drone_ticks: u64,
    next_frame_at: f64,
    frames_processed: usize,
    frames_recognized: usize,
    frames_dropped: usize,
    frames_duplicated: usize,
    contact_point: Vec3,
    flying_to: Option<Vec3>,
    entered_area: bool,
    static_filter: hdc_vision::DecisionFilter,
    faults: Option<Box<dyn SessionFaults>>,
    link: Option<SessionLink>,
}

/// Sign hold duration, seconds.
const SIGN_HOLD_S: f64 = 5.0;
/// Wave-off duration, seconds (slow deliberate wave at [`WAVE_HZ`]).
const WAVE_HOLD_S: f64 = 8.0;
/// Wave frequency, Hz — slow enough that the 0.5 s camera cadence samples
/// each cycle ~5 times.
const WAVE_HZ: f64 = 0.4;
/// Probability that a refusing human waves off instead of signing No.
const WAVE_OFF_PROB: f64 = 0.35;
/// Simulation step, seconds.
const DT: f64 = 0.1;

impl CollaborationSession {
    /// The lockstep simulation step, seconds — the tick period schedulers
    /// use to choreograph compat mode, and the fallback advance in event
    /// mode when work is due immediately.
    pub const TICK_S: f64 = DT;

    /// Builds a session: calibrates the vision pipeline from the canonical
    /// views (the paper's 0°-azimuth references at the negotiation geometry)
    /// and positions the actors.
    pub fn new(config: SessionConfig) -> Self {
        let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
        pipeline.calibrate_from_views(&ViewSpec::paper_default(
            0.0,
            config.negotiation_altitude_m,
            config.contact_distance_m,
        ));

        // contact point: at contact distance from the human, on the side the
        // drone approaches from
        let approach = (config.drone_home - config.human_position)
            .normalized()
            .unwrap_or(Vec2::X);
        let contact_ground = config.human_position + approach * config.contact_distance_m;
        let contact_point = Vec3::from_xy(contact_ground, config.negotiation_altitude_m);

        CollaborationSession {
            drone: Drone::new(DroneConfig {
                home: Vec3::from_xy(config.drone_home, 0.0),
                wind: config.wind,
                // a distinct stream derived from the one session seed, so the
                // wind process and the human never share draws
                seed: config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0xD1B5),
                battery_wh: config.battery_wh,
                ..DroneConfig::default()
            }),
            machine: NegotiationMachine::new(config.negotiation),
            pipeline,
            observer: PatternClassifier::default(),
            monitor: SafetyMonitor::default(),
            dynamic: hdc_vision::dynamic::DynamicRecognizer::new(
                hdc_vision::dynamic::DynamicConfig {
                    window_s: 6.0,
                    min_cycles: 2,
                    min_amplitude: 0.12,
                    static_max_sd: 0.03,
                    min_frames: 6,
                },
            ),
            human: HumanState {
                heading: config.human_heading,
                activity: HumanActivity::Idle,
                pending: None,
            },
            rng: SmallRng::seed_from_u64(config.seed),
            log: EventLog::new(),
            time: 0.0,
            drone_ticks: 0,
            next_frame_at: 0.0,
            frames_processed: 0,
            frames_recognized: 0,
            frames_dropped: 0,
            frames_duplicated: 0,
            contact_point,
            flying_to: None,
            entered_area: false,
            static_filter: hdc_vision::DecisionFilter::new(2),
            faults: None,
            link: config
                .datalink
                .map(|datalink| SessionLink::new(datalink, config.seed, 0.0)),
            config,
        }
    }

    /// Installs a fault-injection layer. The hooks are consulted at every
    /// disturbance point from the next step on.
    pub fn set_faults(&mut self, faults: Box<dyn SessionFaults>) {
        self.faults = Some(faults);
    }

    /// Mutable access to the drone (fault injection: LED channel failure and
    /// other hardware degradation set up by a harness before the run).
    pub fn drone_mut(&mut self) -> &mut Drone {
        &mut self.drone
    }

    /// The event log so far.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The simulated drone (for inspection).
    pub fn drone(&self) -> &Drone {
        &self.drone
    }

    /// The protocol machine state.
    pub fn state(&self) -> NegotiationState {
        self.machine.state()
    }

    /// Elapsed simulated time, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Whether the session has reached a terminal protocol state and the
    /// drone has finished moving. With a datalink configured the link must
    /// also be quiet (every command acknowledged, nothing in flight) so a
    /// terminal decision's actions still reach the drone — unless the drone
    /// has already engaged its safety latch, in which case a permanently
    /// partitioned link cannot hold the session open.
    pub fn is_done(&self) -> bool {
        let link_settled = match &self.link {
            None => true,
            Some(link) => link.is_quiet() || self.drone.safety_engaged(),
        };
        self.machine.state().is_terminal()
            && !self.drone.is_executing()
            && self.flying_to.is_none()
            && link_settled
    }

    fn note(&mut self, entry: LogEntry) {
        self.log.push(self.time, entry);
    }

    /// The behavioural profile in force (override or the role's standard).
    fn behaviour_profile(&self) -> crate::roles::RoleProfile {
        self.config
            .profile_override
            .unwrap_or_else(|| self.config.role.profile())
    }

    fn apply_actions(&mut self, actions: Vec<ProtocolAction>) {
        for action in actions {
            self.note(LogEntry::Action(action.clone()));
            match action {
                ProtocolAction::FlyToContact => {
                    // take off first if grounded
                    if self.drone.state().is_grounded() {
                        self.drone.execute_pattern(FlightPattern::TakeOff {
                            target_altitude: self.config.negotiation_altitude_m,
                        });
                    }
                    self.flying_to = Some(self.contact_point);
                }
                ProtocolAction::ExecutePoke => {
                    let toward = self.config.human_position - self.drone.state().position.xy();
                    // clear the trace so the human reads only the gesture,
                    // not the preceding transit
                    let _ = self.drone.take_trace();
                    self.drone.execute_pattern(FlightPattern::Poke { toward });
                }
                ProtocolAction::ExecuteRectangle => {
                    let _ = self.drone.take_trace();
                    // small enough that no corner of the circuit can breach
                    // the 2 m separation from the 3 m contact distance
                    self.drone.execute_pattern(FlightPattern::RectangleRequest {
                        half_width: 0.45,
                        half_depth: 0.35,
                    });
                }
                ProtocolAction::ExecuteNod => self.drone.execute_pattern(FlightPattern::Nod),
                ProtocolAction::ExecuteTurn => self.drone.execute_pattern(FlightPattern::Turn),
                ProtocolAction::EnterArea => {
                    self.monitor.access_granted = true;
                    self.entered_area = true;
                    self.flying_to = Some(Vec3::from_xy(
                        self.config.human_position,
                        self.config.negotiation_altitude_m,
                    ));
                }
                ProtocolAction::Retreat => {
                    let away = (self.drone.state().position.xy() - self.config.human_position)
                        .normalized()
                        .unwrap_or(Vec2::X);
                    self.flying_to = Some(Vec3::from_xy(
                        self.config.human_position + away * (self.config.contact_distance_m * 3.0),
                        self.config.negotiation_altitude_m,
                    ));
                }
                ProtocolAction::DangerLand => {
                    self.flying_to = None;
                    self.drone.trigger_safety("protocol abort");
                }
            }
        }
    }

    /// Queues a drone-side negotiation event for the supervisor. Only
    /// called when a datalink is configured — the endpoint gives it
    /// exactly-once, in-order delivery, so a redelivered event can never
    /// drive the machine twice.
    fn link_event(&mut self, event: LinkEvent) {
        let now = self.time;
        if let Some(link) = self.link.as_mut() {
            link.send_event(now, event);
        }
    }

    /// Hands supervisor-decided actions to the drone: a direct in-process
    /// call without a datalink, a reliable downlink message with one.
    fn forward_actions(&mut self, actions: Vec<ProtocolAction>) {
        if self.link.is_some() {
            let now = self.time;
            for action in actions {
                if let Some(link) = self.link.as_mut() {
                    link.send_action(now, action);
                }
            }
        } else {
            self.apply_actions(actions);
        }
    }

    /// Supervisor side of the uplink: one delivered event drives exactly
    /// one machine handler; any resulting actions go back down the link.
    fn on_link_event(&mut self, event: LinkEvent) {
        let before = self.machine.state();
        let actions = match event {
            LinkEvent::Arrived => self.machine.on_arrived(self.time),
            LinkEvent::PatternComplete => self.machine.on_pattern_complete(self.time),
            LinkEvent::Sign(sign) => self.machine.on_sign(Some(sign), self.time),
            LinkEvent::WaveOff => self.machine.on_wave_off(self.time),
            LinkEvent::Safety => self.machine.on_safety(self.time),
        };
        if self.machine.state() != before {
            self.note(LogEntry::StateChanged {
                to: self.machine.state(),
            });
        }
        self.forward_actions(actions);
    }

    /// The human perceives a completed drone pattern and maybe schedules a
    /// response.
    fn human_perceive(&mut self, trace: hdc_drone::Trajectory) {
        let Some(kind) = self.observer.classify(&trace) else {
            self.note(LogEntry::Note(
                "human could not read the drone's motion".into(),
            ));
            return;
        };
        self.note(LogEntry::Note(format!("human reads the motion as: {kind}")));

        // scripted humans bypass the stochastic profile entirely: exact
        // response, exact latency, no RNG draws
        if let Some(script) = self.config.script {
            let scripted = match kind {
                PatternKind::Poke => script.on_poke,
                PatternKind::RectangleRequest => script.on_request,
                _ => return,
            };
            let response = match scripted {
                ScriptedResponse::Sign(sign) => PlannedResponse::Sign(sign),
                ScriptedResponse::WaveOff => PlannedResponse::WaveOff,
                ScriptedResponse::Ignore => {
                    self.note(LogEntry::Note(
                        "human (scripted) ignores the pattern".into(),
                    ));
                    return;
                }
            };
            let extra = self.extra_response_delay();
            self.human.pending = Some(PendingResponse {
                due_at: self.time + script.latency_s + extra,
                response,
            });
            return;
        }

        let profile = self.behaviour_profile();
        let respond = |rng: &mut SmallRng, p: f64| rng.gen::<f64>() < p;

        let intended = match kind {
            PatternKind::Poke => {
                if !respond(&mut self.rng, profile.attend_probability) {
                    self.note(LogEntry::Note("human ignores the poke".into()));
                    return;
                }
                // someone who will refuse anyway may wave the drone off right
                // at the poke — "don't even ask"
                if !self.config.will_consent && self.rng.gen::<f64>() < WAVE_OFF_PROB {
                    let latency = profile.sample_latency(&mut self.rng);
                    let due_at = self.time + latency + self.extra_response_delay();
                    self.human.pending = Some(PendingResponse {
                        due_at,
                        response: PlannedResponse::WaveOff,
                    });
                    return;
                }
                MarshallingSign::AttentionGained
            }
            PatternKind::RectangleRequest => {
                if !respond(&mut self.rng, profile.answer_probability) {
                    self.note(LogEntry::Note("human does not answer the request".into()));
                    return;
                }
                if self.config.will_consent {
                    MarshallingSign::Yes
                } else {
                    // an emphatic refuser may wave the drone off instead of
                    // holding the static No
                    if self.rng.gen::<f64>() < WAVE_OFF_PROB {
                        let latency = profile.sample_latency(&mut self.rng);
                        let due_at = self.time + latency + self.extra_response_delay();
                        self.human.pending = Some(PendingResponse {
                            due_at,
                            response: PlannedResponse::WaveOff,
                        });
                        return;
                    }
                    MarshallingSign::No
                }
            }
            _ => return, // nod/turn/transits need no human response
        };

        // training errors: the wrong sign comes out
        let sign = if respond(&mut self.rng, profile.correct_sign_probability) {
            intended
        } else {
            let options: Vec<MarshallingSign> = MarshallingSign::ALL
                .into_iter()
                .filter(|s| *s != intended)
                .collect();
            options[self.rng.gen_range(0..options.len())]
        };
        let latency = profile.sample_latency(&mut self.rng);
        let due_at = self.time + latency + self.extra_response_delay();
        self.human.pending = Some(PendingResponse {
            due_at,
            response: PlannedResponse::Sign(sign),
        });
    }

    /// Extra response latency requested by an installed fault layer.
    fn extra_response_delay(&mut self) -> f64 {
        let t = self.time;
        self.faults.as_mut().map_or(0.0, |f| f.response_delay(t))
    }

    /// Renders the drone's camera view of the human and runs recognition.
    fn process_frame(&mut self) {
        let drone_pos = self.drone.state().position;
        let distance = drone_pos.xy().distance(self.config.human_position);
        if distance < 0.5 {
            return; // directly overhead: no usable view
        }
        let pose = match self.human.activity {
            HumanActivity::Holding(_, _, pose) => pose,
            HumanActivity::Waving(_, started_at) => {
                Pose::wave_off_phase((self.time - started_at) * WAVE_HZ)
            }
            HumanActivity::Idle => Pose::neutral(),
        };
        let signaller = Signaller::new(self.config.human_position, self.human.heading, pose);
        let eye = drone_pos;
        let target = signaller.chest();
        let camera = PinholeCamera::look_at(eye, target, CameraIntrinsics::new(640, 480, 640.0));
        let mut frame = render_signaller(&signaller, &camera);

        // the fault layer sees (and may corrupt or discard) the frame before
        // either recognition channel does
        let t = self.time;
        let fate = match self.faults.as_mut() {
            Some(f) => f.on_frame(t, &mut frame),
            None => FrameFate::Deliver,
        };
        match fate {
            FrameFate::Deliver => self.ingest_frame(&frame),
            FrameFate::Drop => self.frames_dropped += 1,
            FrameFate::Duplicate => {
                self.frames_duplicated += 1;
                self.ingest_frame(&frame);
                // the stuck buffer only matters while we are still listening
                if !self.machine.state().is_terminal() {
                    self.ingest_frame(&frame);
                }
            }
        }
    }

    /// Feeds one delivered camera frame to both recognition channels.
    fn ingest_frame(&mut self, frame: &GrayImage) {
        // dynamic channel: the temporal recogniser sees every frame
        let mask = hdc_raster::threshold::binarize(frame, 128);
        self.dynamic.push(self.time, &mask);
        if self.dynamic.decision() == hdc_vision::dynamic::DynamicDecision::WaveOff {
            self.note(LogEntry::Note("dynamic gesture: wave-off detected".into()));
            self.dynamic.reset();
            if self.link.is_some() {
                self.link_event(LinkEvent::WaveOff);
                return;
            }
            let actions = self.machine.on_wave_off(self.time);
            if !actions.is_empty() {
                self.note(LogEntry::StateChanged {
                    to: self.machine.state(),
                });
                self.apply_actions(actions);
                return;
            }
        }

        // static channel — debounced: a label is believed only when two
        // consecutive frames agree (a single mid-gesture frame can alias to
        // a static sign; a held sign always repeats)
        let result = self.pipeline.recognize(frame);
        self.frames_processed += 1;
        if result.decision.is_some() {
            self.frames_recognized += 1;
        }
        self.note(LogEntry::Recognized(result.decision.clone()));
        let confirmed = self
            .static_filter
            .push(result.decision.as_deref())
            .map(str::to_owned);
        let sign = confirmed.as_deref().and_then(|label| {
            MarshallingSign::ALL
                .into_iter()
                .find(|s| s.label() == label)
        });
        if self.link.is_some() {
            // only confirmed signs are worth a link message; silence is
            // covered by the supervisor's own timeouts
            if let Some(sign) = sign {
                self.link_event(LinkEvent::Sign(sign));
            }
            return;
        }
        let actions = self.machine.on_sign(sign, self.time);
        if !actions.is_empty() {
            self.note(LogEntry::StateChanged {
                to: self.machine.state(),
            });
        }
        self.apply_actions(actions);
    }

    /// Fires an external safety fault into the session (fault injection for
    /// experiment E12 and failure-mode tests). The protocol aborts, the ring
    /// goes all-red and the drone lands — exactly as for an organically
    /// detected violation.
    pub fn inject_safety(&mut self, reason: &str) {
        self.note(LogEntry::Note(format!("SAFETY (injected): {reason}")));
        if self.link.is_some() {
            // safety is reflexive at the drone — it cannot wait on the
            // link; the supervisor is told over the uplink (and its own
            // lease expiry covers the case where that message never lands)
            self.flying_to = None;
            self.drone.trigger_safety(reason);
            self.link_event(LinkEvent::Safety);
            return;
        }
        let actions = self.machine.on_safety(self.time);
        self.note(LogEntry::StateChanged {
            to: self.machine.state(),
        });
        if actions.is_empty() {
            // already terminal: still force the hardware posture
            self.flying_to = None;
            self.drone.trigger_safety(reason);
        } else {
            self.apply_actions(actions);
        }
    }

    /// Advances the session by one lockstep tick of `DT` seconds.
    pub fn step(&mut self) {
        self.time += DT;
        self.step_body(DT);
    }

    /// Advances the session directly to absolute time `t` (event-driven
    /// mode): one pass of the session loop covering the whole span since the
    /// previous pass, with the idle drone coasting across the gap.
    ///
    /// # Panics
    /// Panics unless `t` is strictly after the current session time.
    pub fn step_to(&mut self, t: f64) {
        let dt = t - self.time;
        assert!(dt > 0.0, "step_to must move time forward");
        self.time = t;
        self.step_body(dt);
    }

    /// One pass of the session loop. `self.time` has already been advanced;
    /// `dt` is the span this pass covers (always exactly `DT` in lockstep
    /// mode, so lockstep behaviour is bit-identical to the pre-scheduler
    /// engine).
    fn step_body(&mut self, dt: f64) {
        // --- fault layer: mid-negotiation role change ---
        let t = self.time;
        if let Some(role) = self.faults.as_mut().and_then(|f| f.role_change(t)) {
            if role != self.config.role {
                self.config.role = role;
                self.note(LogEntry::Note(format!(
                    "human role changed mid-negotiation to {role}"
                )));
            }
        }

        // --- protocol bootstrap ---
        if self.machine.state() == NegotiationState::Idle {
            let actions = self.machine.start(self.time);
            self.note(LogEntry::StateChanged {
                to: self.machine.state(),
            });
            self.forward_actions(actions);
        }

        // --- drone motion ---
        if let Some(target) = self.flying_to {
            if !self.drone.is_executing() {
                self.drone.goto(target);
                if self.drone.state().position.distance(target) < 0.35 {
                    self.flying_to = None;
                    if self.machine.state() == NegotiationState::Approaching {
                        if self.link.is_some() {
                            self.link_event(LinkEvent::Arrived);
                        } else {
                            let actions = self.machine.on_arrived(self.time);
                            self.note(LogEntry::StateChanged {
                                to: self.machine.state(),
                            });
                            self.apply_actions(actions);
                        }
                    }
                }
            }
        }
        // Busy drones (pattern playback, waypoint transit) need true ticks
        // for motion fidelity; an idle hover over a longer event gap
        // coalesces into one coast — what makes a quiet session cost
        // O(events) instead of O(duration / DT).
        if self.drone.is_executing() || self.drone.has_waypoint() || dt <= DT + 1e-9 {
            self.drone.tick(dt);
            self.drone_ticks += 1;
        } else {
            self.drone.coast(dt);
        }

        // --- drone events ---
        for event in self.drone.drain_events() {
            if let DroneEvent::PatternComplete(kind) = &event {
                let kind = *kind;
                self.note(LogEntry::PatternDone(kind));
                if self.link.is_some() {
                    self.link_event(LinkEvent::PatternComplete);
                } else {
                    let actions = self.machine.on_pattern_complete(self.time);
                    if !actions.is_empty()
                        || matches!(kind, PatternKind::Poke | PatternKind::RectangleRequest)
                    {
                        self.note(LogEntry::StateChanged {
                            to: self.machine.state(),
                        });
                    }
                    self.apply_actions(actions);
                }
                // the human watches communicative patterns
                if matches!(kind, PatternKind::Poke | PatternKind::RectangleRequest) {
                    let trace = self.drone.take_trace();
                    self.human_perceive(trace);
                }
            } else {
                let is_safety = matches!(event, DroneEvent::SafetyTriggered(_));
                self.note(LogEntry::Drone(event));
                // a drone-side safety engagement (battery reserve, hardware
                // fault) aborts the negotiation too — the protocol must not
                // keep waiting on a platform that has landed itself
                if is_safety {
                    if self.link.is_some() {
                        self.link_event(LinkEvent::Safety);
                    } else {
                        let actions = self.machine.on_safety(self.time);
                        if !actions.is_empty() {
                            self.note(LogEntry::StateChanged {
                                to: self.machine.state(),
                            });
                            self.apply_actions(actions);
                        }
                    }
                }
            }
        }
        // keep the trace bounded between patterns
        if !self.drone.is_executing() && self.drone.trace().len() > 4000 {
            let _ = self.drone.take_trace();
        }

        // --- human signalling ---
        if let Some(pending) = self.human.pending {
            if self.time >= pending.due_at {
                self.human.pending = None;
                // turn toward the drone — imperfectly for a stochastic
                // human, exactly for a scripted one; a fault layer can push
                // the facing toward the recogniser's dead angle either way
                let bearing =
                    (self.drone.state().position.xy() - self.config.human_position).angle();
                let bias = {
                    let t = self.time;
                    self.faults.as_mut().map_or(0.0, |f| f.facing_bias(t))
                };
                let facing_error = if self.config.script.is_some() {
                    0.0
                } else {
                    self.behaviour_profile().sample_facing_error(&mut self.rng)
                };
                self.human.heading = bearing + facing_error + bias;
                match pending.response {
                    PlannedResponse::Sign(sign) => {
                        let pose = if self.config.script.is_some() {
                            Pose::for_sign(sign)
                        } else {
                            let jitter = self.behaviour_profile().pose_jitter_rad;
                            Pose::for_sign(sign).jittered(jitter, &mut self.rng)
                        };
                        self.human.activity =
                            HumanActivity::Holding(sign, self.time + SIGN_HOLD_S, pose);
                        self.note(LogEntry::HumanSigned(sign));
                    }
                    PlannedResponse::WaveOff => {
                        self.human.activity =
                            HumanActivity::Waving(self.time + WAVE_HOLD_S, self.time);
                        self.note(LogEntry::Note("human waves the drone off".into()));
                    }
                }
            }
        }
        match self.human.activity {
            HumanActivity::Holding(_, until, _) | HumanActivity::Waving(until, _) => {
                if self.time >= until {
                    self.human.activity = HumanActivity::Idle;
                    self.note(LogEntry::HumanIdle);
                } else if self.faults.is_some() {
                    // fault layer: the signaller slowly rotates (e.g. into
                    // the ~100° azimuth dead angle) while holding the sign
                    let t = self.time;
                    let drift = self.faults.as_mut().map_or(0.0, |f| f.heading_drift(t));
                    self.human.heading += drift * dt;
                }
            }
            HumanActivity::Idle => {}
        }

        // --- vision frames while listening ---
        let listening = matches!(
            self.machine.state(),
            NegotiationState::AwaitingAttention | NegotiationState::AwaitingAnswer
        );
        if listening && !self.drone.is_executing() && self.time >= self.next_frame_at {
            self.next_frame_at = self.time + self.config.frame_interval_s;
            self.process_frame();
        }

        // --- datalink ---
        if self.link.is_some() {
            let now = self.time;
            let pump = self.link.as_mut().expect("checked above").pump(now);
            for event in pump.events {
                self.on_link_event(event);
            }
            for action in pump.actions {
                self.apply_actions(vec![action]);
            }
            if pump.drone_lease_expired {
                // the drone has heard nothing for the lease timeout: it
                // must not keep holding position near a person on a dead
                // command link — autonomous safe-hold
                self.inject_safety("datalink lease expired: autonomous safe-hold");
            }
            if pump.supervisor_lease_expired {
                // the supervisor declares the drone lost and aborts
                self.note(LogEntry::Note(
                    "datalink lease expired: supervisor declares the drone lost".into(),
                ));
                let before = self.machine.state();
                let actions = self.machine.on_safety(self.time);
                if self.machine.state() != before {
                    self.note(LogEntry::StateChanged {
                        to: self.machine.state(),
                    });
                }
                self.forward_actions(actions);
            }
        }

        // --- timeouts ---
        let actions = self.machine.poll(self.time);
        if !actions.is_empty() {
            self.note(LogEntry::StateChanged {
                to: self.machine.state(),
            });
        }
        self.forward_actions(actions);

        // --- safety ---
        let drone_already_latched = self.link.is_some() && self.drone.safety_engaged();
        if !self.machine.state().is_terminal() && !drone_already_latched {
            if let Some(violation) = self
                .monitor
                .check(self.drone.state(), self.config.human_position)
            {
                self.note(LogEntry::Note(format!("SAFETY: {violation}")));
                if self.link.is_some() {
                    // reflexive at the drone; the supervisor learns over
                    // the uplink
                    self.flying_to = None;
                    self.drone.trigger_safety("proximity/safety violation");
                    self.link_event(LinkEvent::Safety);
                } else {
                    let actions = self.machine.on_safety(self.time);
                    self.note(LogEntry::StateChanged {
                        to: self.machine.state(),
                    });
                    self.apply_actions(actions);
                }
            }
        }
    }

    /// Runs to completion (terminal protocol state or the time cap) and
    /// reports.
    pub fn run(&mut self) -> SessionOutcome {
        while !self.is_done() && self.time < self.config.max_duration_s {
            self.step();
        }
        self.machine.outcome()
    }

    /// The next absolute time at which this session has work to do, given
    /// that it last stepped at `now` — the event-driven scheduler's query.
    ///
    /// Conservative: it may return a time at which nothing observable
    /// happens (that step is then cheap) and may return times at or before
    /// `now` (meaning "work is due immediately"), but it never skips past a
    /// time where observable work exists. Sources: busy-drone per-tick
    /// motion, scheduled human responses, sign/wave expiry, the camera
    /// cadence while listening, protocol deadlines, datalink timers and
    /// lease edges, and the fault layer's own deadlines.
    pub fn next_due_after(&mut self, now: f64) -> f64 {
        let mut due = f64::INFINITY;
        // A busy drone (pattern playback, waypoint transit) needs per-tick
        // motion fidelity; a machine still waiting to bootstrap needs the
        // next tick too.
        if self.drone.is_executing()
            || self.drone.has_waypoint()
            || self.flying_to.is_some()
            || self.machine.state() == NegotiationState::Idle
        {
            due = due.min(now + DT);
        }
        if let Some(pending) = self.human.pending {
            due = due.min(pending.due_at);
        }
        match self.human.activity {
            HumanActivity::Holding(_, until, _) | HumanActivity::Waving(until, _) => {
                due = due.min(until);
            }
            HumanActivity::Idle => {}
        }
        let listening = matches!(
            self.machine.state(),
            NegotiationState::AwaitingAttention | NegotiationState::AwaitingAnswer
        );
        if listening && !self.drone.is_executing() {
            due = due.min(self.next_frame_at.max(now));
        }
        if let Some(deadline) = self.machine.next_deadline() {
            due = due.min(deadline);
        }
        if let Some(link) = &self.link {
            if let Some(d) = link.next_due(now) {
                due = due.min(d);
            }
        }
        if let Some(faults) = self.faults.as_mut() {
            if let Some(d) = faults.next_due(now) {
                due = due.min(d);
            }
        }
        due
    }

    /// Runs to completion in event-driven mode: instead of ticking every
    /// `DT`, the session jumps straight to each next due time, coasting the
    /// idle drone across the gaps. Deterministic and digest-stable for a
    /// given config, but not bit-identical to lockstep [`run`] (coarser idle
    /// traces, gap-dependent float sums) — the event-driven golden manifest
    /// pins this mode separately.
    ///
    /// [`run`]: CollaborationSession::run
    pub fn run_events(&mut self) -> SessionOutcome {
        while !self.is_done() && self.time < self.config.max_duration_s {
            let now = self.time;
            let mut target = self.next_due_after(now);
            if target <= now || target.is_nan() {
                // overdue or immediate work (NaN-proof): take one tick
                target = now + DT;
            }
            self.step_to(target.min(self.config.max_duration_s));
        }
        self.machine.outcome()
    }

    /// True drone ticks executed so far (coasts excluded) — the work metric
    /// the event-driven scheduler is judged on.
    pub fn drone_ticks(&self) -> u64 {
        self.drone_ticks
    }

    /// Runs and produces the full report.
    pub fn run_report(mut self) -> SessionReport {
        self.run();
        self.into_report()
    }

    /// Produces the report for whatever has run so far — for harnesses that
    /// step the session manually (e.g. to fire [`inject_safety`] mid-run).
    ///
    /// [`inject_safety`]: CollaborationSession::inject_safety
    pub fn into_report(self) -> SessionReport {
        SessionReport {
            outcome: self.machine.outcome(),
            duration_s: self.time,
            frames_processed: self.frames_processed,
            frames_recognized: self.frames_recognized,
            frames_dropped: self.frames_dropped,
            frames_duplicated: self.frames_duplicated,
            ring_mode: self.drone.ring().mode(),
            safety_engaged: self.drone.safety_engaged(),
            grounded: self.drone.state().is_grounded(),
            link: self.link.as_ref().map(SessionLink::report),
            log: self.log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_driven_run_matches_lockstep_outcome_with_far_fewer_ticks() {
        // A slow (but still in-time) responder: the drone spends most of the
        // session hovering and listening, which is where coasting pays.
        let cfg = SessionConfig::worker_example(3).with_script(HumanScript {
            on_poke: ScriptedResponse::Sign(MarshallingSign::AttentionGained),
            on_request: ScriptedResponse::Sign(MarshallingSign::Yes),
            latency_s: 6.0,
        });
        let mut lock = CollaborationSession::new(cfg);
        let lock_outcome = lock.run();
        let mut ev = CollaborationSession::new(cfg);
        let ev_outcome = ev.run_events();
        assert_eq!(lock_outcome, ev_outcome, "log:\n{}", ev.log());
        // Flight time is irreducible, so the bound here is modest; the
        // idle-heavy capacity bench is where the big ratios show up.
        assert!(
            ev.drone_ticks() + 50 < lock.drone_ticks(),
            "event mode must do fewer drone ticks: {} vs {}",
            ev.drone_ticks(),
            lock.drone_ticks()
        );
    }

    #[test]
    fn idle_gaps_between_events_cost_zero_drone_ticks() {
        // An ignoring human leaves the drone hovering and listening; every
        // gap until the next camera frame or protocol deadline must coast.
        let cfg = SessionConfig::worker_example(11).with_script(HumanScript {
            on_poke: ScriptedResponse::Ignore,
            on_request: ScriptedResponse::Ignore,
            latency_s: 1.0,
        });
        let mut s = CollaborationSession::new(cfg);
        let mut checked_gaps = 0;
        for _ in 0..10_000 {
            if s.is_done() || s.time() >= 60.0 {
                break;
            }
            let now = s.time();
            let mut due = s.next_due_after(now);
            if due <= now || due.is_nan() {
                due = now + DT;
            }
            let hovering = !s.drone().is_executing() && !s.drone().has_waypoint();
            let ticks_before = s.drone_ticks();
            s.step_to(due);
            if hovering && due - now > DT + 1e-9 {
                checked_gaps += 1;
                assert_eq!(
                    s.drone_ticks(),
                    ticks_before,
                    "an idle gap of {:.3} s at t={now:.3} must not tick the drone",
                    due - now
                );
            }
        }
        assert!(
            checked_gaps > 10,
            "the ignore script should produce many coastable gaps, saw {checked_gaps}"
        );
    }

    #[test]
    fn supervisor_yes_is_granted() {
        let mut s = CollaborationSession::new(SessionConfig::for_role(Role::Supervisor, true, 3));
        let outcome = s.run();
        assert_eq!(outcome, SessionOutcome::Granted, "log:\n{}", s.log());
    }

    #[test]
    fn supervisor_no_is_denied() {
        let mut s = CollaborationSession::new(SessionConfig::for_role(Role::Supervisor, false, 4));
        let outcome = s.run();
        assert_eq!(outcome, SessionOutcome::Denied, "log:\n{}", s.log());
    }

    #[test]
    fn worker_sessions_terminate() {
        for seed in 0..5 {
            let mut s = CollaborationSession::new(SessionConfig::worker_example(seed));
            let outcome = s.run();
            assert_ne!(outcome, SessionOutcome::StillRunning, "seed {seed}");
        }
    }

    #[test]
    fn granted_session_enters_only_after_yes() {
        let mut s = CollaborationSession::new(SessionConfig::for_role(Role::Supervisor, true, 5));
        let outcome = s.run();
        assert_eq!(outcome, SessionOutcome::Granted);
        let log = s.log();
        let yes_t = log
            .first_time(|e| matches!(e, LogEntry::Recognized(Some(l)) if l == "Yes"))
            .expect("a Yes must be recognised");
        let enter_t = log
            .first_time(|e| *e == LogEntry::Action(ProtocolAction::EnterArea))
            .expect("entry happens on grant");
        assert!(yes_t <= enter_t, "R4: recognition precedes entry");
    }

    #[test]
    fn visitor_often_fails_to_negotiate() {
        let mut abandoned = 0;
        for seed in 0..8 {
            let mut s =
                CollaborationSession::new(SessionConfig::for_role(Role::Visitor, true, seed));
            if s.run() == SessionOutcome::Abandoned {
                abandoned += 1;
            }
        }
        assert!(
            abandoned >= 1,
            "untrained visitors should sometimes stall the protocol"
        );
    }

    #[test]
    fn report_counts_frames() {
        let s = CollaborationSession::new(SessionConfig::for_role(Role::Supervisor, true, 6));
        let report = s.run_report();
        assert!(report.frames_processed > 0);
        assert!(report.frames_recognized <= report.frames_processed);
        assert!(report.duration_s > 0.0);
        assert!(!report.log.is_empty());
    }

    #[test]
    fn wave_off_is_detected_dynamically_and_denies() {
        // the scripted human waves the drone off at the poke stage on ANY
        // seed — the assertion no longer depends on a hand-tuned RNG stream
        for seed in [0, 13, 21, 0xDEAD_BEEF] {
            let config = SessionConfig::for_role(Role::Worker, false, seed)
                .with_script(HumanScript::wave_off());
            let mut s = CollaborationSession::new(config);
            let outcome = s.run();
            assert_eq!(outcome, SessionOutcome::Denied, "seed {seed}");
            let waved = s.log().first_time(
                |e| matches!(e, LogEntry::Note(n) if n.contains("waves the drone off")),
            );
            let detected = s
                .log()
                .first_time(|e| matches!(e, LogEntry::Note(n) if n.contains("wave-off detected")));
            assert!(waved.is_some(), "seed {seed}; log:\n{}", s.log());
            assert!(
                detected.is_some(),
                "dynamic channel must fire; seed {seed}; log:\n{}",
                s.log()
            );
            assert!(waved < detected, "waving precedes detection");
        }
    }

    #[test]
    fn scripted_sessions_are_seed_invariant() {
        // with a script installed, the human RNG is never consulted: the
        // whole event log must be identical across seeds
        let run = |seed: u64| {
            let config = SessionConfig::for_role(Role::Supervisor, true, seed).with_script(
                HumanScript::answering(ScriptedResponse::Sign(MarshallingSign::Yes)),
            );
            CollaborationSession::new(config).run_report()
        };
        let a = run(1);
        let b = run(999);
        assert_eq!(a.outcome, SessionOutcome::Granted, "log:\n{}", a.log);
        assert_eq!(format!("{}", a.log), format!("{}", b.log));
    }

    #[test]
    fn refusing_workers_always_end_denied_or_abandoned() {
        for seed in 0..6 {
            let mut s =
                CollaborationSession::new(SessionConfig::for_role(Role::Worker, false, seed));
            let outcome = s.run();
            assert!(
                matches!(outcome, SessionOutcome::Denied | SessionOutcome::Abandoned),
                "seed {seed}: {outcome}"
            );
        }
    }

    #[test]
    fn clean_datalink_reaches_the_same_grant() {
        let config = SessionConfig::for_role(Role::Supervisor, true, 3)
            .with_script(HumanScript::answering(ScriptedResponse::Sign(
                MarshallingSign::Yes,
            )))
            .with_datalink(crate::DatalinkConfig::clean());
        let report = CollaborationSession::new(config).run_report();
        assert_eq!(
            report.outcome,
            SessionOutcome::Granted,
            "log:\n{}",
            report.log
        );
        let link = report.link.expect("a datalink was configured");
        assert!(link.up.delivered > 0 && link.down.delivered > 0);
        assert!(!link.drone_lease_expired && !link.supervisor_lease_expired);
    }

    #[test]
    fn lossy_datalink_recovers_by_retransmission() {
        let quality = hdc_link::LinkQuality::clean().with_drop(0.25);
        let config = SessionConfig::for_role(Role::Supervisor, true, 3)
            .with_script(HumanScript::answering(ScriptedResponse::Sign(
                MarshallingSign::Yes,
            )))
            .with_datalink(crate::DatalinkConfig::symmetric(quality));
        let report = CollaborationSession::new(config).run_report();
        assert_eq!(
            report.outcome,
            SessionOutcome::Granted,
            "log:\n{}",
            report.log
        );
        let link = report.link.expect("a datalink was configured");
        assert!(link.up.dropped + link.down.dropped > 0, "loss must occur");
        assert!(
            link.drone_endpoint.retransmits + link.supervisor_endpoint.retransmits > 0,
            "recovery must come from retransmission"
        );
    }

    #[test]
    fn duplicated_commands_are_applied_exactly_once() {
        let quality = hdc_link::LinkQuality::clean()
            .with_dup(0.9)
            .with_jitter(0.3);
        let config = SessionConfig::for_role(Role::Supervisor, true, 3)
            .with_script(HumanScript::answering(ScriptedResponse::Sign(
                MarshallingSign::Yes,
            )))
            .with_datalink(crate::DatalinkConfig::symmetric(quality));
        let report = CollaborationSession::new(config).run_report();
        assert_eq!(
            report.outcome,
            SessionOutcome::Granted,
            "log:\n{}",
            report.log
        );
        let entries = report
            .log
            .filter(|e| *e == LogEntry::Action(ProtocolAction::EnterArea))
            .count();
        assert_eq!(entries, 1, "EnterArea must apply exactly once");
        let link = report.link.expect("a datalink was configured");
        assert!(
            link.drone_endpoint.duplicates_discarded
                + link.supervisor_endpoint.duplicates_discarded
                > 0,
            "the dedup window must have engaged"
        );
    }

    #[test]
    fn dead_datalink_forces_the_autonomous_failsafe() {
        // the link partitions at t=2 s and never heals: the drone must end
        // grounded with the danger ring, the supervisor must end aborted
        let quality = hdc_link::LinkQuality::clean().with_partition(2.0, 1.0e9);
        let config = SessionConfig::for_role(Role::Supervisor, true, 3)
            .with_script(HumanScript::answering(ScriptedResponse::Sign(
                MarshallingSign::Yes,
            )))
            .with_datalink(crate::DatalinkConfig::symmetric(quality));
        let report = CollaborationSession::new(config).run_report();
        assert_eq!(
            report.outcome,
            SessionOutcome::Aborted,
            "log:\n{}",
            report.log
        );
        assert!(report.safety_engaged, "the safety latch must engage");
        assert!(report.grounded, "the drone must land itself");
        assert_eq!(report.ring_mode, LedMode::Danger);
        let link = report.link.expect("a datalink was configured");
        assert!(link.drone_lease_expired && link.supervisor_lease_expired);
        assert!(
            report.duration_s < 60.0,
            "the failsafe must fire promptly, not ride the session cap"
        );
    }

    #[test]
    fn linked_sessions_are_reproducible() {
        let quality = hdc_link::LinkQuality::clean()
            .with_drop(0.3)
            .with_jitter(0.5);
        let run = || {
            let config = SessionConfig::for_role(Role::Supervisor, true, 11)
                .with_script(HumanScript::answering(ScriptedResponse::Sign(
                    MarshallingSign::Yes,
                )))
                .with_datalink(crate::DatalinkConfig::symmetric(quality));
            CollaborationSession::new(config).run_report()
        };
        let a = run();
        let b = run();
        assert_eq!(format!("{}", a.log), format!("{}", b.log));
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn session_log_contains_the_figure3_flow() {
        let mut s = CollaborationSession::new(SessionConfig::for_role(Role::Supervisor, true, 7));
        s.run();
        let log = s.log();
        let poke = log.first_time(|e| *e == LogEntry::Action(ProtocolAction::ExecutePoke));
        let attention = log
            .first_time(|e| matches!(e, LogEntry::HumanSigned(MarshallingSign::AttentionGained)));
        let rect = log.first_time(|e| *e == LogEntry::Action(ProtocolAction::ExecuteRectangle));
        let answer = log.first_time(|e| matches!(e, LogEntry::HumanSigned(MarshallingSign::Yes)));
        assert!(poke.is_some() && attention.is_some() && rect.is_some() && answer.is_some());
        assert!(poke < attention, "poke precedes attention");
        assert!(attention < rect, "attention precedes the request");
        assert!(rect < answer, "request precedes the answer");
    }
}
