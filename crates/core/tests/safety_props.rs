//! Property tests for the safety layer (paper requirement R2: "fundamental
//! safety aspects first").
//!
//! Two families of properties:
//!
//! 1. **Machine-level** — from *any* reachable negotiation state, a safety
//!    event terminates the negotiation, and the danger state is never left
//!    afterwards: no event sequence produces further actions.
//! 2. **Session-level** — `inject_safety` fired at an arbitrary moment of
//!    an arbitrary session (random role, consent, seed, fault schedule)
//!    drives the whole stack to the safe terminal posture: all-red ring,
//!    safety latch engaged, drone grounded — and it stays there without an
//!    explicit all-clear (which does not exist: a new session is required).

use hdc_core::{
    CollaborationSession, FrameFate, NegotiationConfig, NegotiationMachine, NegotiationState,
    ProtocolAction, Role, SessionConfig, SessionFaults,
};
use hdc_drone::LedMode;
use hdc_figure::MarshallingSign;
use proptest::prelude::*;

/// One abstract input to the negotiation machine.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrived,
    PatternComplete,
    Sign(Option<MarshallingSign>),
    Poll,
    WaveOff,
}

fn ev() -> impl Strategy<Value = Ev> {
    (0usize..8).prop_map(|k| match k {
        0 => Ev::Arrived,
        1 => Ev::PatternComplete,
        2 => Ev::Sign(Some(MarshallingSign::AttentionGained)),
        3 => Ev::Sign(Some(MarshallingSign::Yes)),
        4 => Ev::Sign(Some(MarshallingSign::No)),
        5 => Ev::Sign(None),
        6 => Ev::Poll,
        _ => Ev::WaveOff,
    })
}

/// Replays `events` against a fresh machine, advancing time 1 s per event.
fn drive(events: &[Ev]) -> (NegotiationMachine, f64) {
    let mut m = NegotiationMachine::new(NegotiationConfig::default());
    let mut now = 0.0;
    m.start(now);
    for e in events {
        now += 1.0;
        match e {
            Ev::Arrived => m.on_arrived(now),
            Ev::PatternComplete => m.on_pattern_complete(now),
            Ev::Sign(s) => m.on_sign(*s, now),
            Ev::Poll => m.poll(now),
            Ev::WaveOff => m.on_wave_off(now),
        };
    }
    (m, now)
}

/// A deterministic fault schedule for the session-level properties; all
/// parameters come from the proptest strategy, no hidden randomness.
#[derive(Debug)]
struct ScheduledFaults {
    drop_every: usize,
    frame_no: usize,
    delay_s: f64,
    facing_bias: f64,
}

impl SessionFaults for ScheduledFaults {
    fn on_frame(&mut self, _t: f64, _frame: &mut hdc_raster::GrayImage) -> FrameFate {
        self.frame_no += 1;
        if self.drop_every > 0 && self.frame_no.is_multiple_of(self.drop_every) {
            FrameFate::Drop
        } else {
            FrameFate::Deliver
        }
    }

    fn response_delay(&mut self, _t: f64) -> f64 {
        self.delay_s
    }

    fn facing_bias(&mut self, _t: f64) -> f64 {
        self.facing_bias
    }
}

proptest! {
    // From any reachable state, `on_safety` lands in a terminal state; if
    // the negotiation was still live it is Aborted with a DangerLand.
    #[test]
    fn safety_terminates_from_any_reachable_state(events in prop::collection::vec(ev(), 0..12)) {
        let (mut m, now) = drive(&events);
        let was_terminal = m.state().is_terminal();
        let actions = m.on_safety(now + 1.0);
        prop_assert!(m.state().is_terminal(), "state {:?} after safety", m.state());
        if !was_terminal {
            prop_assert_eq!(m.state(), NegotiationState::Aborted);
            prop_assert!(actions.contains(&ProtocolAction::DangerLand));
        } else {
            prop_assert!(actions.is_empty(), "terminal state must absorb safety");
        }
    }

    // Once aborted, the danger state is never left: no subsequent event —
    // signs, polls, wave-offs, arrivals — changes state or emits actions.
    #[test]
    fn danger_state_is_never_left_without_all_clear(
        prefix in prop::collection::vec(ev(), 0..10),
        suffix in prop::collection::vec(ev(), 1..12),
    ) {
        let (mut m, mut now) = drive(&prefix);
        m.on_safety(now);
        let frozen = m.state();
        prop_assert!(frozen.is_terminal());
        for e in &suffix {
            now += 1.0;
            let actions = match e {
                Ev::Arrived => m.on_arrived(now),
                Ev::PatternComplete => m.on_pattern_complete(now),
                Ev::Sign(s) => m.on_sign(*s, now),
                Ev::Poll => m.poll(now),
                Ev::WaveOff => m.on_wave_off(now),
            };
            prop_assert!(actions.is_empty(), "{:?} re-animated an aborted negotiation", e);
            prop_assert_eq!(m.state(), frozen);
        }
    }

    // `inject_safety` at an arbitrary moment of an arbitrary faulted
    // session reaches the safe terminal posture and holds it to the end.
    #[test]
    fn injected_safety_reaches_and_holds_the_safe_posture(
        seed in 0u64..1000,
        role_pick in 0usize..3,
        consent in any::<bool>(),
        inject_at in 0.5f64..40.0,
        drop_every in 0usize..5,
        delay_s in 0.0f64..3.0,
        facing_bias in -0.6f64..0.6,
    ) {
        let role = [Role::Supervisor, Role::Worker, Role::Visitor][role_pick];
        let mut s = CollaborationSession::new(SessionConfig::for_role(role, consent, seed));
        s.set_faults(Box::new(ScheduledFaults {
            drop_every,
            frame_no: 0,
            delay_s,
            facing_bias,
        }));

        let mut injected = false;
        while !(injected && s.is_done()) && s.time() < 180.0 {
            if !injected && s.time() >= inject_at {
                s.inject_safety("property-test fault");
                injected = true;
                prop_assert!(s.state().is_terminal(),
                    "inject_safety must terminate the negotiation, got {:?}", s.state());
            }
            s.step();
            if injected {
                // the danger posture latches: never left mid-run
                prop_assert!(s.drone().safety_engaged(), "safety latch released at {:.1}s", s.time());
                prop_assert_eq!(s.drone().ring().mode(), LedMode::Danger);
            }
        }
        prop_assert!(injected, "session ended before the injection time");

        let report = s.into_report();
        prop_assert!(report.safety_engaged);
        prop_assert_eq!(report.ring_mode, LedMode::Danger);
        prop_assert!(report.grounded, "drone must land after a safety abort");
        prop_assert!(
            !report.log.entries().is_empty()
                && report.duration_s < 180.0,
            "session must settle in bounded time after a safety abort"
        );
    }
}
