//! Property tests for protocol idempotence under at-least-once delivery.
//!
//! The datalink endpoint deduplicates by sequence number, but the protocol
//! machine is the last line of defence: if a retransmitted command or event
//! slips through (or the link layer is bypassed entirely), the machine's
//! state guards must absorb the replay. Three properties pin that down:
//!
//! 1. **Immediate duplicates are absorbed** — redelivering the event that
//!    was just handled produces no actions and no state change.
//! 2. **One-shot actions never repeat** — `EnterArea` and `DangerLand`
//!    are emitted at most once over *any* event sequence, however
//!    duplicated or reordered, and the machine commits to at most one
//!    terminal transition.
//! 3. **Stale replays never resurrect a terminal negotiation** — once
//!    terminal, replaying the entire history (a worst-case retransmit
//!    storm) yields nothing.

use hdc_core::{NegotiationConfig, NegotiationMachine, NegotiationState, ProtocolAction};
use hdc_figure::MarshallingSign;
use proptest::prelude::*;

/// One abstract input to the negotiation machine, as the datalink would
/// deliver it (events uplinked from the drone, signs from vision, polls
/// from the supervisor clock).
#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrived,
    PatternComplete,
    Sign(Option<MarshallingSign>),
    Poll,
    WaveOff,
    Safety,
}

fn ev() -> impl Strategy<Value = Ev> {
    (0usize..9).prop_map(|k| match k {
        0 => Ev::Arrived,
        1 => Ev::PatternComplete,
        2 => Ev::Sign(Some(MarshallingSign::AttentionGained)),
        3 => Ev::Sign(Some(MarshallingSign::Yes)),
        4 => Ev::Sign(Some(MarshallingSign::No)),
        5 => Ev::Sign(None),
        6 => Ev::Poll,
        7 => Ev::WaveOff,
        _ => Ev::Safety,
    })
}

fn apply(m: &mut NegotiationMachine, e: Ev, now: f64) -> Vec<ProtocolAction> {
    match e {
        Ev::Arrived => m.on_arrived(now),
        Ev::PatternComplete => m.on_pattern_complete(now),
        Ev::Sign(s) => m.on_sign(s, now),
        Ev::Poll => m.poll(now),
        Ev::WaveOff => m.on_wave_off(now),
        Ev::Safety => m.on_safety(now),
    }
}

/// Replays `events` against a fresh started machine, 1 s apart, collecting
/// every emitted action.
fn drive(events: &[Ev]) -> (NegotiationMachine, Vec<ProtocolAction>, f64) {
    let mut m = NegotiationMachine::new(NegotiationConfig::default());
    let mut now = 0.0;
    let mut all = m.start(now);
    for e in events {
        now += 1.0;
        all.extend(apply(&mut m, *e, now));
    }
    (m, all, now)
}

proptest! {
    // Redelivering the event that was just handled — the exact failure a
    // duplicating link produces — is a no-op: no actions, no state change.
    #[test]
    fn immediate_duplicates_are_absorbed(
        prefix in prop::collection::vec(ev(), 0..12),
        dup in ev(),
    ) {
        let (mut m, _, now) = drive(&prefix);
        apply(&mut m, dup, now + 1.0);
        let state = m.state();
        let replayed = apply(&mut m, dup, now + 1.0);
        prop_assert!(
            replayed.is_empty(),
            "duplicate {:?} re-emitted {:?} from {:?}", dup, replayed, state
        );
        prop_assert_eq!(m.state(), state, "duplicate {:?} moved the machine", dup);
    }

    // Over any delivery order with any duplication, the irreversible
    // commands fire at most once, and the machine commits to at most one
    // terminal state (terminal latches are never re-entered or swapped).
    #[test]
    fn one_shot_actions_never_repeat(events in prop::collection::vec(ev(), 0..40)) {
        let mut m = NegotiationMachine::new(NegotiationConfig::default());
        let mut now = 0.0;
        let mut all = m.start(now);
        let mut terminal: Option<NegotiationState> = None;
        for e in &events {
            now += 1.0;
            all.extend(apply(&mut m, *e, now));
            match terminal {
                None => {
                    if m.state().is_terminal() {
                        terminal = Some(m.state());
                    }
                }
                Some(t) => prop_assert_eq!(
                    m.state(), t, "terminal state changed after {:?}", e
                ),
            }
        }
        for one_shot in [ProtocolAction::EnterArea, ProtocolAction::DangerLand] {
            let n = all.iter().filter(|a| **a == one_shot).count();
            prop_assert!(n <= 1, "{one_shot} emitted {n} times");
        }
    }

    // A worst-case retransmit storm — the entire history redelivered after
    // the negotiation already terminated — produces nothing at all.
    #[test]
    fn stale_replays_never_resurrect_a_terminal_negotiation(
        prefix in prop::collection::vec(ev(), 0..15),
    ) {
        let (mut m, _, mut now) = drive(&prefix);
        // force termination if the random prefix did not reach it
        apply(&mut m, Ev::Safety, now + 1.0);
        now += 1.0;
        let frozen = m.state();
        prop_assert!(frozen.is_terminal());
        for e in &prefix {
            now += 1.0;
            let actions = apply(&mut m, *e, now);
            prop_assert!(
                actions.is_empty(),
                "replayed {:?} re-animated a terminal negotiation with {:?}", e, actions
            );
            prop_assert_eq!(m.state(), frozen);
        }
    }
}
