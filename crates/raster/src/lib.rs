//! Minimal raster-imaging substrate for the `hdc` workspace.
//!
//! The paper's recognition pipeline ran on OpenCV; this crate supplies the
//! handful of image operations that pipeline actually needs, from scratch:
//!
//! * a generic [`Image`] container with a grayscale [`GrayImage`] alias,
//! * a bit-packed binary mask ([`BitMask`], 64 px per word) with
//!   word-parallel `*_packed` forms of every silhouette kernel,
//! * rasterisation of disks, tapered capsules and polygons ([`draw`]),
//! * fixed and Otsu [`threshold`]ing,
//! * connected-component labelling ([`components`]),
//! * Moore-neighbour [`contour`] tracing,
//! * binary [`morphology`] (erode / dilate / open / close),
//! * tiled frame differencing for temporal-coherence gating ([`diff`]),
//! * FNV-1a/64 [`digest`]s of raw byte slices (frame identity, golden traces),
//! * sensor [`noise`] models,
//! * portable-anymap [`io`] (PGM) plus ASCII-art dumps for debugging.
//!
//! # Example
//!
//! ```
//! use hdc_raster::{GrayImage, draw, threshold, contour};
//! use hdc_geometry::Vec2;
//!
//! let mut img = GrayImage::new(64, 64);
//! draw::fill_disk(&mut img, Vec2::new(32.0, 32.0), 10.0, 255);
//! let bin = threshold::binarize(&img, 128);
//! let contour = contour::trace_outer_contour(&bin).expect("disk has a boundary");
//! assert!(contour.len() > 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmask;
pub mod components;
pub mod contour;
pub mod diff;
pub mod digest;
pub mod draw;
pub mod image;
pub mod io;
pub mod morphology;
pub mod noise;
pub mod threshold;

pub use bitmask::{BitMask, WORD_BITS};
pub use components::{
    label_components, label_components_bfs, label_components_packed, largest_component,
    largest_component_packed_with, largest_component_with, Component, Connectivity, LabelScratch,
};
pub use contour::{
    trace_outer_contour, trace_outer_contour_into, trace_outer_contour_packed_into, ContourPoint,
};
pub use image::{Bitmap, GrayImage, Image};
