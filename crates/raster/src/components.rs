//! Connected-component labelling.

use crate::image::{Bitmap, Image};
use hdc_geometry::Vec2;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Pixel connectivity for component labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Connectivity {
    /// Edge-adjacent neighbours only.
    Four,
    /// Edge- and corner-adjacent neighbours.
    Eight,
}

impl Connectivity {
    fn offsets(self) -> &'static [(i64, i64)] {
        match self {
            Connectivity::Four => &[(1, 0), (-1, 0), (0, 1), (0, -1)],
            Connectivity::Eight => &[
                (1, 0),
                (-1, 0),
                (0, 1),
                (0, -1),
                (1, 1),
                (1, -1),
                (-1, 1),
                (-1, -1),
            ],
        }
    }
}

/// A labelled connected component of foreground pixels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// 1-based label as written into the label image.
    pub label: u32,
    /// Number of pixels.
    pub area: usize,
    /// Pixel-centroid of the component.
    pub centroid: Vec2,
    /// Inclusive bounding box `(min_x, min_y, max_x, max_y)`.
    pub bbox: (u32, u32, u32, u32),
}

impl Component {
    /// Bounding-box width in pixels.
    pub fn width(&self) -> u32 {
        self.bbox.2 - self.bbox.0 + 1
    }

    /// Bounding-box height in pixels.
    pub fn height(&self) -> u32 {
        self.bbox.3 - self.bbox.1 + 1
    }
}

/// Labels all foreground components with breadth-first flood fill.
///
/// Returns the label image (0 = background, labels start at 1) and per-label
/// statistics ordered by label.
///
/// # Example
/// ```
/// use hdc_raster::{Bitmap, label_components, Connectivity};
/// let mut mask = Bitmap::new(5, 5);
/// mask.set(0, 0, true);
/// mask.set(4, 4, true);
/// let (_labels, comps) = label_components(&mask, Connectivity::Four);
/// assert_eq!(comps.len(), 2);
/// ```
pub fn label_components(mask: &Bitmap, conn: Connectivity) -> (Image<u32>, Vec<Component>) {
    let w = mask.width();
    let h = mask.height();
    let mut labels: Image<u32> = Image::new(w, h);
    let mut comps = Vec::new();
    let mut next = 1u32;
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();

    for y in 0..h {
        for x in 0..w {
            if mask.get(x, y) != Some(true) || labels.get(x, y) != Some(0) {
                continue;
            }
            // flood fill a new component
            let label = next;
            next += 1;
            labels.set(x, y, label);
            queue.push_back((x, y));
            let mut area = 0usize;
            let mut sum = Vec2::ZERO;
            let mut bbox = (x, y, x, y);
            while let Some((cx, cy)) = queue.pop_front() {
                area += 1;
                sum += Vec2::new(cx as f64, cy as f64);
                bbox.0 = bbox.0.min(cx);
                bbox.1 = bbox.1.min(cy);
                bbox.2 = bbox.2.max(cx);
                bbox.3 = bbox.3.max(cy);
                for (dx, dy) in conn.offsets() {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0 || ny < 0 {
                        continue;
                    }
                    let (nx, ny) = (nx as u32, ny as u32);
                    if mask.get(nx, ny) == Some(true) && labels.get(nx, ny) == Some(0) {
                        labels.set(nx, ny, label);
                        queue.push_back((nx, ny));
                    }
                }
            }
            comps.push(Component {
                label,
                area,
                centroid: sum / area as f64,
                bbox,
            });
        }
    }
    (labels, comps)
}

/// Extracts the largest foreground component as a fresh mask.
///
/// Returns `None` when the mask has no foreground at all. This implements the
/// pipeline's assumption that the signaller is the dominant blob in frame.
pub fn largest_component(mask: &Bitmap, conn: Connectivity) -> Option<(Bitmap, Component)> {
    let (labels, comps) = label_components(mask, conn);
    let biggest = comps.into_iter().max_by_key(|c| c.area)?;
    let out = labels.map(|l| l == biggest.label);
    Some((out, biggest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_rows(rows: &[&str]) -> Bitmap {
        let h = rows.len() as u32;
        let w = rows[0].len() as u32;
        let mut m = Bitmap::new(w, h);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                m.set(x as u32, y as u32, c == '#');
            }
        }
        m
    }

    #[test]
    fn single_blob() {
        let m = mask_from_rows(&["....", ".##.", ".##.", "...."]);
        let (labels, comps) = label_components(&m, Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 4);
        assert_eq!(comps[0].centroid, Vec2::new(1.5, 1.5));
        assert_eq!(comps[0].bbox, (1, 1, 2, 2));
        assert_eq!(labels.get(1, 1), Some(1));
        assert_eq!(labels.get(0, 0), Some(0));
    }

    #[test]
    fn diagonal_blobs_depend_on_connectivity() {
        let m = mask_from_rows(&["#.", ".#"]);
        let (_, four) = label_components(&m, Connectivity::Four);
        assert_eq!(four.len(), 2);
        let (_, eight) = label_components(&m, Connectivity::Eight);
        assert_eq!(eight.len(), 1);
    }

    #[test]
    fn largest_selected() {
        let m = mask_from_rows(&["##....", "##....", "......", "....#."]);
        let (mask, comp) = largest_component(&m, Connectivity::Four).unwrap();
        assert_eq!(comp.area, 4);
        assert_eq!(mask.count_foreground(), 4);
        assert_eq!(mask.get(4, 3), Some(false), "small blob removed");
    }

    #[test]
    fn empty_mask_has_no_largest() {
        let m = Bitmap::new(3, 3);
        assert!(largest_component(&m, Connectivity::Eight).is_none());
    }

    #[test]
    fn component_dimensions() {
        let m = mask_from_rows(&["###", "..."]);
        let (_, comps) = label_components(&m, Connectivity::Four);
        assert_eq!(comps[0].width(), 3);
        assert_eq!(comps[0].height(), 1);
    }
}
