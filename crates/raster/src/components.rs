//! Connected-component labelling.

use crate::bitmask::{BitMask, WORD_BITS};
use crate::image::{Bitmap, Image};
use hdc_geometry::Vec2;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Pixel connectivity for component labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Connectivity {
    /// Edge-adjacent neighbours only.
    Four,
    /// Edge- and corner-adjacent neighbours.
    Eight,
}

impl Connectivity {
    fn offsets(self) -> &'static [(i64, i64)] {
        match self {
            Connectivity::Four => &[(1, 0), (-1, 0), (0, 1), (0, -1)],
            Connectivity::Eight => &[
                (1, 0),
                (-1, 0),
                (0, 1),
                (0, -1),
                (1, 1),
                (1, -1),
                (-1, 1),
                (-1, -1),
            ],
        }
    }

    /// How far apart two runs on adjacent rows may start/end and still
    /// touch: 8-connectivity also joins runs that only meet diagonally.
    fn margin(self) -> u32 {
        match self {
            Connectivity::Four => 0,
            Connectivity::Eight => 1,
        }
    }
}

/// A labelled connected component of foreground pixels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// 1-based label as written into the label image.
    pub label: u32,
    /// Number of pixels.
    pub area: usize,
    /// Pixel-centroid of the component.
    pub centroid: Vec2,
    /// Inclusive bounding box `(min_x, min_y, max_x, max_y)`.
    pub bbox: (u32, u32, u32, u32),
}

impl Component {
    /// Bounding-box width in pixels.
    pub fn width(&self) -> u32 {
        self.bbox.2 - self.bbox.0 + 1
    }

    /// Bounding-box height in pixels.
    pub fn height(&self) -> u32 {
        self.bbox.3 - self.bbox.1 + 1
    }
}

/// Reusable buffers for component labelling, so the per-frame segmentation
/// step performs no heap allocation in steady state.
///
/// The labeller is run-based: one sequential pass extracts horizontal
/// foreground runs, a union-find over run indices merges runs that touch
/// across rows, and statistics come from run arithmetic. Cost scales with
/// the number of runs (hundreds per frame), not with the pixel count, which
/// is what makes the component stage cheap at 1280×960.
#[derive(Debug, Default, Clone)]
pub struct LabelScratch {
    /// Foreground runs `(row, start, end)` (inclusive), in row-major order.
    runs: Vec<(u32, u32, u32)>,
    /// Union-find parent per run.
    parent: Vec<u32>,
    /// 0-based component index per run (filled by the resolve pass).
    run_comp: Vec<u32>,
    /// Per-label statistics, rebuilt each call.
    comps: Vec<Component>,
}

impl LabelScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The components from the most recent labelling, ordered by label.
    pub fn components(&self) -> &[Component] {
        &self.comps
    }
}

/// Union-find root with path halving. Roots are always the component's
/// first (row-major) run, because `union_runs` keeps the smaller index as
/// the root.
fn find(parent: &mut [u32], mut i: u32) -> u32 {
    while parent[i as usize] != i {
        parent[i as usize] = parent[parent[i as usize] as usize];
        i = parent[i as usize];
    }
    i
}

fn union_runs(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra < rb {
        parent[rb as usize] = ra;
    } else if rb < ra {
        parent[ra as usize] = rb;
    }
}

/// Appends the run `(y, s, e)` and unions it with every previous-row run it
/// touches (`margin` 1 widens the overlap test for 8-connectivity). The
/// cursor `p` only advances past runs that end strictly before this run
/// starts, so a wide run above can still merge with the next run here.
/// Shared by the byte and packed extractors, so both produce the identical
/// union-find structure.
#[allow(clippy::too_many_arguments)]
fn push_run(
    runs: &mut Vec<(u32, u32, u32)>,
    parent: &mut Vec<u32>,
    y: u32,
    s: u32,
    e: u32,
    margin: u32,
    p: &mut usize,
    prev_hi: usize,
) {
    let ri = runs.len() as u32;
    runs.push((y, s, e));
    parent.push(ri);
    while *p < prev_hi && runs[*p].2 + margin < s {
        *p += 1;
    }
    let mut q = *p;
    while q < prev_hi && runs[q].1 <= e + margin {
        union_runs(parent, ri, q as u32);
        q += 1;
    }
}

/// Resolves union-find roots to component indices in first-run order
/// (= row-major discovery order) and accumulates per-component statistics
/// from run arithmetic.
///
/// Statistics are exact: every coordinate sum is a sum of integers, which
/// f64 accumulates exactly at these image sizes regardless of order, so the
/// results are bit-identical to the per-pixel BFS oracle.
fn resolve_runs(scratch: &mut LabelScratch) {
    let runs = &scratch.runs;
    let parent = &mut scratch.parent;
    let run_comp = &mut scratch.run_comp;
    run_comp.clear();
    run_comp.resize(runs.len(), 0);
    scratch.comps.clear();
    for ri in 0..runs.len() {
        let root = find(parent, ri as u32) as usize;
        let ci = if root == ri {
            let ci = scratch.comps.len() as u32;
            scratch.comps.push(Component {
                label: ci + 1,
                area: 0,
                centroid: Vec2::ZERO,
                bbox: (u32::MAX, u32::MAX, 0, 0),
            });
            ci
        } else {
            run_comp[root] // roots are minimal, so already resolved
        };
        run_comp[ri] = ci;
        let (y, s, e) = runs[ri];
        let len = (e - s + 1) as usize;
        let c = &mut scratch.comps[ci as usize];
        c.area += len;
        // Σ x over the run is an arithmetic series; len·(s+e) is always even.
        c.centroid += Vec2::new((s + e) as f64 * len as f64 / 2.0, y as f64 * len as f64);
        c.bbox.0 = c.bbox.0.min(s);
        c.bbox.1 = c.bbox.1.min(y);
        c.bbox.2 = c.bbox.2.max(e);
        c.bbox.3 = c.bbox.3.max(y);
    }
    for c in &mut scratch.comps {
        c.centroid /= c.area as f64;
    }
}

/// Core run-based labelling: extracts foreground runs, unions runs that
/// touch across adjacent rows and resolves per-component statistics into
/// `scratch`. Component numbering matches a row-major flood fill: labels are
/// assigned in discovery order of each component's first (topmost, then
/// leftmost) pixel.
fn label_into(mask: &Bitmap, conn: Connectivity, scratch: &mut LabelScratch) {
    let w = mask.width() as usize;
    let h = mask.height() as usize;
    let px = mask.pixels();
    let runs = &mut scratch.runs;
    let parent = &mut scratch.parent;
    runs.clear();
    parent.clear();
    // 8-connectivity also joins runs that only touch diagonally: widen the
    // overlap test by one pixel on each side.
    let margin = conn.margin();

    let (mut prev_lo, mut prev_hi) = (0usize, 0usize);
    for y in 0..h {
        let row = &px[y * w..(y + 1) * w];
        let row_lo = runs.len();
        let mut p = prev_lo; // cursor over the previous row's runs
        let mut x = 0usize;
        while x < w {
            // Skip background in 32-pixel blocks (the `any` over a fixed
            // chunk vectorises), then byte-wise to the run start.
            while x + 32 <= w && !row[x..x + 32].iter().any(|&b| b) {
                x += 32;
            }
            if x >= w {
                break;
            }
            if !row[x] {
                x += 1;
                continue;
            }
            let s = x as u32;
            while x + 32 <= w && row[x..x + 32].iter().all(|&b| b) {
                x += 32;
            }
            while x < w && row[x] {
                x += 1;
            }
            let e = (x - 1) as u32;
            push_run(runs, parent, y as u32, s, e, margin, &mut p, prev_hi);
        }
        prev_lo = row_lo;
        prev_hi = runs.len();
    }
    resolve_runs(scratch);
}

/// [`label_into`] on a bit-packed mask: foreground runs come straight from
/// the mask words via trailing-zeros/trailing-ones scans — a zero word skips
/// 64 background pixels in one compare, and run ends inside a word are found
/// without touching individual pixels. Run order, the union-find structure
/// and the resolved statistics are identical to the byte extractor's, so
/// the two paths label bit-identically.
fn label_into_packed(mask: &BitMask, conn: Connectivity, scratch: &mut LabelScratch) {
    let w = mask.width();
    let h = mask.height() as usize;
    let wpr = mask.words_per_row();
    let words = mask.words();
    let runs = &mut scratch.runs;
    let parent = &mut scratch.parent;
    runs.clear();
    parent.clear();
    let margin = conn.margin();

    let (mut prev_lo, mut prev_hi) = (0usize, 0usize);
    for y in 0..h {
        let row = &words[y * wpr..(y + 1) * wpr];
        let row_lo = runs.len();
        let mut p = prev_lo; // cursor over the previous row's runs
                             // Start of a run that is still open at the current word boundary.
        let mut open: Option<u32> = None;
        for (j, &w0) in row.iter().enumerate() {
            let base = (j * WORD_BITS) as u32;
            let mut word = w0;
            if let Some(s) = open {
                let ones = word.trailing_ones();
                if ones == WORD_BITS as u32 {
                    continue; // run spans the whole word, still open
                }
                push_run(
                    runs,
                    parent,
                    y as u32,
                    s,
                    base + ones - 1,
                    margin,
                    &mut p,
                    prev_hi,
                );
                open = None;
                word &= !((1u64 << ones) - 1);
            }
            while word != 0 {
                let tz = word.trailing_zeros();
                let ones = (word >> tz).trailing_ones();
                if tz + ones == WORD_BITS as u32 {
                    open = Some(base + tz); // run reaches the word's MSB
                    break;
                }
                push_run(
                    runs,
                    parent,
                    y as u32,
                    base + tz,
                    base + tz + ones - 1,
                    margin,
                    &mut p,
                    prev_hi,
                );
                word &= !(((1u64 << ones) - 1) << tz);
            }
        }
        if let Some(s) = open {
            // The tail invariant keeps bits ≥ width zero, so a run open at
            // the last word boundary ends exactly at the image edge.
            push_run(runs, parent, y as u32, s, w - 1, margin, &mut p, prev_hi);
        }
        prev_lo = row_lo;
        prev_hi = runs.len();
    }
    resolve_runs(scratch);
}

/// Labels all foreground components with flood fill over the raw row-major
/// pixel slice.
///
/// Returns the label image (0 = background, labels start at 1) and per-label
/// statistics ordered by label. Labels are assigned in row-major discovery
/// order, exactly like [`label_components_bfs`]; component statistics are
/// accumulated in row-major pixel order.
///
/// # Example
/// ```
/// use hdc_raster::{Bitmap, label_components, Connectivity};
/// let mut mask = Bitmap::new(5, 5);
/// mask.set(0, 0, true);
/// mask.set(4, 4, true);
/// let (_labels, comps) = label_components(&mask, Connectivity::Four);
/// assert_eq!(comps.len(), 2);
/// ```
pub fn label_components(mask: &Bitmap, conn: Connectivity) -> (Image<u32>, Vec<Component>) {
    let mut scratch = LabelScratch::new();
    label_into(mask, conn, &mut scratch);
    let w = mask.width() as usize;
    let mut labels = vec![0u32; w * mask.height() as usize];
    for (ri, &(y, s, e)) in scratch.runs.iter().enumerate() {
        let base = y as usize * w;
        labels[base + s as usize..=base + e as usize].fill(scratch.run_comp[ri] + 1);
    }
    (
        Image::from_raw(mask.width(), mask.height(), labels),
        scratch.comps,
    )
}

/// Reference implementation of [`label_components`]: breadth-first flood fill
/// through the bounds-checked pixel accessors. Kept as the test oracle and
/// the honest "before" baseline for the committed benchmark.
pub fn label_components_bfs(mask: &Bitmap, conn: Connectivity) -> (Image<u32>, Vec<Component>) {
    let w = mask.width();
    let h = mask.height();
    let mut labels: Image<u32> = Image::new(w, h);
    let mut comps = Vec::new();
    let mut next = 1u32;
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();

    for y in 0..h {
        for x in 0..w {
            if mask.get(x, y) != Some(true) || labels.get(x, y) != Some(0) {
                continue;
            }
            // flood fill a new component
            let label = next;
            next += 1;
            labels.set(x, y, label);
            queue.push_back((x, y));
            let mut area = 0usize;
            let mut sum = Vec2::ZERO;
            let mut bbox = (x, y, x, y);
            while let Some((cx, cy)) = queue.pop_front() {
                area += 1;
                sum += Vec2::new(cx as f64, cy as f64);
                bbox.0 = bbox.0.min(cx);
                bbox.1 = bbox.1.min(cy);
                bbox.2 = bbox.2.max(cx);
                bbox.3 = bbox.3.max(cy);
                for (dx, dy) in conn.offsets() {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0 || ny < 0 {
                        continue;
                    }
                    let (nx, ny) = (nx as u32, ny as u32);
                    if mask.get(nx, ny) == Some(true) && labels.get(nx, ny) == Some(0) {
                        labels.set(nx, ny, label);
                        queue.push_back((nx, ny));
                    }
                }
            }
            comps.push(Component {
                label,
                area,
                centroid: sum / area as f64,
                bbox,
            });
        }
    }
    (labels, comps)
}

/// Extracts the largest foreground component as a fresh mask.
///
/// Returns `None` when the mask has no foreground at all. This implements the
/// pipeline's assumption that the signaller is the dominant blob in frame.
pub fn largest_component(mask: &Bitmap, conn: Connectivity) -> Option<(Bitmap, Component)> {
    let mut out = Bitmap::new(mask.width(), mask.height());
    let comp = largest_component_with(mask, conn, &mut out, &mut LabelScratch::new())?;
    Some((out, comp))
}

/// [`largest_component`] with caller-provided output mask and scratch
/// buffers; the allocation-free form used by the steady-state frame loop.
///
/// `out` is re-dimensioned to match `mask` and every pixel is overwritten.
/// Ties on area resolve to the highest label, like [`largest_component`].
pub fn largest_component_with(
    mask: &Bitmap,
    conn: Connectivity,
    out: &mut Bitmap,
    scratch: &mut LabelScratch,
) -> Option<Component> {
    label_into(mask, conn, scratch);
    let biggest = scratch.comps.iter().max_by_key(|c| c.area)?.clone();
    out.reset_dimensions(mask.width(), mask.height());
    let w = mask.width() as usize;
    let dst = out.pixels_mut();
    dst.fill(false);
    let target = biggest.label - 1;
    for (ri, &(y, s, e)) in scratch.runs.iter().enumerate() {
        if scratch.run_comp[ri] == target {
            let base = y as usize * w;
            dst[base + s as usize..=base + e as usize].fill(true);
        }
    }
    Some(biggest)
}

/// [`label_components`] on a bit-packed mask. Labels, statistics and their
/// order are bit-identical to the byte and BFS forms.
pub fn label_components_packed(mask: &BitMask, conn: Connectivity) -> (Image<u32>, Vec<Component>) {
    let mut scratch = LabelScratch::new();
    label_into_packed(mask, conn, &mut scratch);
    let w = mask.width() as usize;
    let mut labels = vec![0u32; w * mask.height() as usize];
    for (ri, &(y, s, e)) in scratch.runs.iter().enumerate() {
        let base = y as usize * w;
        labels[base + s as usize..=base + e as usize].fill(scratch.run_comp[ri] + 1);
    }
    (
        Image::from_raw(mask.width(), mask.height(), labels),
        scratch.comps,
    )
}

/// [`largest_component_with`] on a bit-packed mask: labels via the
/// word-scan run extractor and rebuilds the dominant blob into `out` with
/// whole-word run stores. Ties on area resolve to the highest label, like
/// the byte form.
pub fn largest_component_packed_with(
    mask: &BitMask,
    conn: Connectivity,
    out: &mut BitMask,
    scratch: &mut LabelScratch,
) -> Option<Component> {
    label_into_packed(mask, conn, scratch);
    let biggest = scratch.comps.iter().max_by_key(|c| c.area)?.clone();
    out.reset_dimensions(mask.width(), mask.height());
    out.fill(false);
    let target = biggest.label - 1;
    for (ri, &(y, s, e)) in scratch.runs.iter().enumerate() {
        if scratch.run_comp[ri] == target {
            out.set_run(y, s, e);
        }
    }
    Some(biggest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_rows(rows: &[&str]) -> Bitmap {
        let h = rows.len() as u32;
        let w = rows[0].len() as u32;
        let mut m = Bitmap::new(w, h);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                m.set(x as u32, y as u32, c == '#');
            }
        }
        m
    }

    #[test]
    fn single_blob() {
        let m = mask_from_rows(&["....", ".##.", ".##.", "...."]);
        let (labels, comps) = label_components(&m, Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 4);
        assert_eq!(comps[0].centroid, Vec2::new(1.5, 1.5));
        assert_eq!(comps[0].bbox, (1, 1, 2, 2));
        assert_eq!(labels.get(1, 1), Some(1));
        assert_eq!(labels.get(0, 0), Some(0));
    }

    #[test]
    fn diagonal_blobs_depend_on_connectivity() {
        let m = mask_from_rows(&["#.", ".#"]);
        let (_, four) = label_components(&m, Connectivity::Four);
        assert_eq!(four.len(), 2);
        let (_, eight) = label_components(&m, Connectivity::Eight);
        assert_eq!(eight.len(), 1);
    }

    #[test]
    fn largest_selected() {
        let m = mask_from_rows(&["##....", "##....", "......", "....#."]);
        let (mask, comp) = largest_component(&m, Connectivity::Four).unwrap();
        assert_eq!(comp.area, 4);
        assert_eq!(mask.count_foreground(), 4);
        assert_eq!(mask.get(4, 3), Some(false), "small blob removed");
    }

    #[test]
    fn empty_mask_has_no_largest() {
        let m = Bitmap::new(3, 3);
        assert!(largest_component(&m, Connectivity::Eight).is_none());
    }

    fn speckled(w: u32, h: u32, salt: u64) -> Bitmap {
        // Deterministic pseudo-random mask with blobs at several scales.
        let mut m = Bitmap::new(w, h);
        let mut state = salt | 1;
        for y in 0..h {
            for x in 0..w {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = (state >> 60) < 6;
                let blob = (x / 7 + y / 5) % 3 == 0;
                m.set(x, y, noise ^ blob);
            }
        }
        m
    }

    #[test]
    fn fast_labelling_matches_bfs_oracle() {
        for (w, h, salt) in [(17u32, 13u32, 1u64), (40, 31, 7), (64, 48, 99)] {
            let m = speckled(w, h, salt);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let (labels, comps) = label_components(&m, conn);
                let (labels_bfs, comps_bfs) = label_components_bfs(&m, conn);
                assert_eq!(labels, labels_bfs, "label image ({w}×{h}, {conn:?})");
                assert_eq!(comps.len(), comps_bfs.len());
                for (a, b) in comps.iter().zip(&comps_bfs) {
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.area, b.area);
                    assert_eq!(a.bbox, b.bbox);
                    assert!(
                        (a.centroid.x - b.centroid.x).abs() < 1e-9
                            && (a.centroid.y - b.centroid.y).abs() < 1e-9,
                        "centroid {:?} vs {:?}",
                        a.centroid,
                        b.centroid
                    );
                }
            }
        }
    }

    #[test]
    fn packed_labelling_matches_byte_path() {
        // Widths straddling the word boundary so runs open and close across
        // words, plus 1-px-tall and 1-px-wide degenerate masks.
        for (w, h, salt) in [
            (17u32, 13u32, 1u64),
            (63, 5, 2),
            (64, 48, 99),
            (65, 9, 3),
            (130, 21, 7),
            (200, 1, 11),
            (1, 40, 13),
        ] {
            let m = speckled(w, h, salt);
            let packed = BitMask::from_bitmap(&m);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let (labels, comps) = label_components(&m, conn);
                let (labels_p, comps_p) = label_components_packed(&packed, conn);
                assert_eq!(labels, labels_p, "label image ({w}×{h}, {conn:?})");
                assert_eq!(comps, comps_p, "components ({w}×{h}, {conn:?})");
            }
        }
    }

    #[test]
    fn packed_labelling_handles_full_rows() {
        // All-foreground rows exercise the run-spans-whole-word carry and
        // the close-at-image-edge path for both ×64 and non-×64 widths.
        for w in [64u32, 128, 65, 190] {
            let m = {
                let mut m = Bitmap::new(w, 3);
                m.pixels_mut().fill(true);
                m
            };
            let packed = BitMask::from_bitmap(&m);
            let (_, comps) = label_components_packed(&packed, Connectivity::Four);
            assert_eq!(comps.len(), 1, "width {w}");
            assert_eq!(comps[0].area, (w * 3) as usize);
            assert_eq!(comps[0].bbox, (0, 0, w - 1, 2));
        }
    }

    #[test]
    fn packed_largest_component_matches_byte_path() {
        let mut out = Bitmap::new(1, 1);
        let mut out_p = BitMask::new(1, 1);
        let mut scratch = LabelScratch::new();
        let mut scratch_p = LabelScratch::new();
        for (w, h, salt) in [(33u32, 21u32, 3u64), (130, 17, 5), (64, 11, 8)] {
            let m = speckled(w, h, salt);
            let packed = BitMask::from_bitmap(&m);
            let byte = largest_component_with(&m, Connectivity::Eight, &mut out, &mut scratch);
            let fast = largest_component_packed_with(
                &packed,
                Connectivity::Eight,
                &mut out_p,
                &mut scratch_p,
            );
            assert_eq!(byte, fast, "component ({w}×{h})");
            assert_eq!(out, out_p.to_bitmap(), "blob mask ({w}×{h})");
        }
    }

    #[test]
    fn largest_component_with_reuses_buffers() {
        let mut out = Bitmap::new(1, 1);
        let mut scratch = LabelScratch::new();
        for salt in [3u64, 5, 8] {
            let m = speckled(33, 21, salt);
            let fast = largest_component_with(&m, Connectivity::Eight, &mut out, &mut scratch);
            let slow = largest_component(&m, Connectivity::Eight);
            match (fast, slow) {
                (Some(fc), Some((sm, sc))) => {
                    assert_eq!(fc.area, sc.area);
                    assert_eq!(fc.bbox, sc.bbox);
                    assert_eq!(out, sm);
                }
                (None, None) => {}
                other => panic!("fast/slow disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn component_dimensions() {
        let m = mask_from_rows(&["###", "..."]);
        let (_, comps) = label_components(&m, Connectivity::Four);
        assert_eq!(comps[0].width(), 3);
        assert_eq!(comps[0].height(), 1);
    }
}
