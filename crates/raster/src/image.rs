//! The image container.

use serde::{Deserialize, Serialize};

/// A rectangular raster of pixels stored row-major.
///
/// `Image<u8>` ([`GrayImage`]) carries grayscale frames; `Image<bool>`
/// ([`Bitmap`]) carries segmentation masks.
///
/// # Example
/// ```
/// use hdc_raster::Image;
/// let mut img: Image<u8> = Image::new(4, 3);
/// img.set(2, 1, 200);
/// assert_eq!(img.get(2, 1), Some(200));
/// assert_eq!(img.get(9, 9), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image<T> {
    width: u32,
    height: u32,
    data: Vec<T>,
}

/// Grayscale 8-bit image.
pub type GrayImage = Image<u8>;

/// Binary mask image.
pub type Bitmap = Image<bool>;

impl<T: Copy + Default> Image<T> {
    /// Creates an image filled with `T::default()`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Image {
            width,
            height,
            data: vec![T::default(); (width as usize) * (height as usize)],
        }
    }

    /// Creates an image filled with `value`.
    pub fn filled(width: u32, height: u32, value: T) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Image {
            width,
            height,
            data: vec![value; (width as usize) * (height as usize)],
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Panics
    /// Panics if either dimension is zero or `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<T>) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        assert_eq!(
            data.len(),
            (width as usize) * (height as usize),
            "pixel buffer does not match dimensions"
        );
        Image {
            width,
            height,
            data,
        }
    }

    /// Re-dimensions the image to `width × height`, reusing the existing
    /// pixel buffer when possible (no allocation when the capacity already
    /// suffices). Pixel contents are unspecified afterwards; callers are
    /// expected to overwrite every pixel.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn reset_dimensions(&mut self, width: u32, height: u32) {
        assert!(width > 0 && height > 0, "image must be non-empty");
        let n = (width as usize) * (height as usize);
        self.data.resize(n, T::default());
        self.width = width;
        self.height = height;
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        (y as usize) * (self.width as usize) + (x as usize)
    }

    /// Pixel value at `(x, y)`, or `None` out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Option<T> {
        if x < self.width && y < self.height {
            Some(self.data[self.index(x, y)])
        } else {
            None
        }
    }

    /// Pixel value at signed coordinates; out-of-bounds reads as `T::default()`.
    ///
    /// This is the padding convention used by contour tracing and morphology.
    #[inline]
    pub fn get_padded(&self, x: i64, y: i64) -> T {
        if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
            self.data[(y as usize) * (self.width as usize) + (x as usize)]
        } else {
            T::default()
        }
    }

    /// Sets the pixel at `(x, y)`; silently ignores out-of-bounds writes.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: T) {
        if x < self.width && y < self.height {
            let i = self.index(x, y);
            self.data[i] = value;
        }
    }

    /// Fills the whole image with `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Raw row-major pixel slice.
    pub fn pixels(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw row-major pixel slice.
    pub fn pixels_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterates `(x, y, value)` over all pixels in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| ((i as u32) % w, (i as u32) / w, *v))
    }

    /// Applies `f` to every pixel, producing a new image.
    pub fn map<U: Copy + Default, F: Fn(T) -> U>(&self, f: F) -> Image<U> {
        Image {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|v| f(*v)).collect(),
        }
    }
}

impl Bitmap {
    /// Number of `true` (foreground) pixels.
    pub fn count_foreground(&self) -> usize {
        self.pixels().iter().filter(|p| **p).count()
    }

    /// Converts the mask to an 8-bit image (`true` → 255).
    pub fn to_gray(&self) -> GrayImage {
        self.map(|b| if b { 255 } else { 0 })
    }
}

impl GrayImage {
    /// Mean pixel intensity (0 for an empty image is impossible — images are
    /// non-empty by construction).
    pub fn mean(&self) -> f64 {
        self.pixels().iter().map(|p| *p as f64).sum::<f64>() / self.pixel_count() as f64
    }

    /// 256-bin intensity histogram.
    pub fn histogram(&self) -> [usize; 256] {
        let mut h = [0usize; 256];
        for p in self.pixels() {
            h[*p as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut img: Image<u8> = Image::new(10, 5);
        img.set(9, 4, 7);
        assert_eq!(img.get(9, 4), Some(7));
        assert_eq!(img.get(10, 4), None);
        assert_eq!(img.get(9, 5), None);
    }

    #[test]
    fn out_of_bounds_set_is_ignored() {
        let mut img: Image<u8> = Image::new(2, 2);
        img.set(5, 5, 9);
        assert!(img.pixels().iter().all(|p| *p == 0));
    }

    #[test]
    fn padded_reads_default() {
        let mut img: Image<u8> = Image::filled(2, 2, 3);
        img.set(0, 0, 1);
        assert_eq!(img.get_padded(-1, 0), 0);
        assert_eq!(img.get_padded(0, 0), 1);
        assert_eq!(img.get_padded(2, 0), 0);
    }

    #[test]
    fn iter_order_is_row_major() {
        let mut img: Image<u8> = Image::new(2, 2);
        img.set(1, 0, 1);
        img.set(0, 1, 2);
        let pts: Vec<_> = img.iter().collect();
        assert_eq!(pts[1], (1, 0, 1));
        assert_eq!(pts[2], (0, 1, 2));
    }

    #[test]
    fn map_and_bitmap() {
        let mut img: GrayImage = Image::new(3, 3);
        img.set(1, 1, 200);
        let mask: Bitmap = img.map(|v| v > 100);
        assert_eq!(mask.count_foreground(), 1);
        let back = mask.to_gray();
        assert_eq!(back.get(1, 1), Some(255));
        assert_eq!(back.get(0, 0), Some(0));
    }

    #[test]
    fn histogram_and_mean() {
        let img: GrayImage = Image::filled(2, 2, 10);
        assert_eq!(img.mean(), 10.0);
        let h = img.histogram();
        assert_eq!(h[10], 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        let _ = GrayImage::new(0, 10);
    }
}
