//! Moore-neighbour contour tracing.
//!
//! The recognition pipeline converts the signaller's silhouette boundary into
//! a centroid-distance time series (per the paper's SAX-on-shapes approach),
//! so an ordered outer boundary is required — a bag of edge pixels is not
//! enough. Moore-neighbour tracing with Jacob's stopping criterion yields the
//! boundary as a closed, ordered pixel sequence.

use crate::bitmask::{BitMask, WORD_BITS};
use crate::image::Bitmap;
use hdc_geometry::Vec2;
use serde::{Deserialize, Serialize};

/// One point of a traced contour, in pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContourPoint {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl ContourPoint {
    /// Converts to a float vector (pixel centre).
    pub fn to_vec2(self) -> Vec2 {
        Vec2::new(self.x as f64, self.y as f64)
    }
}

/// Clockwise Moore neighbourhood starting west: W, NW, N, NE, E, SE, S, SW.
const MOORE: [(i64, i64); 8] = [
    (-1, 0),
    (-1, -1),
    (0, -1),
    (1, -1),
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
];

/// Traces the outer boundary of the first (row-major) foreground blob.
///
/// Returns the ordered, closed boundary as pixel coordinates, or `None` when
/// the mask is entirely background. An isolated single pixel yields a
/// one-point contour.
///
/// The caller is expected to have isolated the blob of interest first (see
/// [`crate::largest_component`]); if several blobs exist, the one whose
/// top-most/left-most pixel comes first in row-major order is traced.
///
/// # Example
/// ```
/// use hdc_raster::{Bitmap, trace_outer_contour};
/// let mut m = Bitmap::new(5, 5);
/// for y in 1..4 { for x in 1..4 { m.set(x, y, true); } }
/// let c = trace_outer_contour(&m).unwrap();
/// assert_eq!(c.len(), 8); // 3×3 square boundary
/// ```
pub fn trace_outer_contour(mask: &Bitmap) -> Option<Vec<ContourPoint>> {
    let mut contour = Vec::new();
    trace_outer_contour_into(mask, &mut contour).then_some(contour)
}

/// [`trace_outer_contour`] into a caller-provided buffer (cleared first); the
/// allocation-free form used by the steady-state frame loop.
///
/// Returns `false` (with `out` left empty) when the mask is entirely
/// background.
pub fn trace_outer_contour_into(mask: &Bitmap, out: &mut Vec<ContourPoint>) -> bool {
    // Row-major scan for the start pixel; everything before it is background,
    // so its west neighbour is guaranteed background. Skip background in
    // 32-pixel blocks (the `any` over a fixed chunk vectorises).
    let px = mask.pixels();
    let n = px.len();
    let mut i = 0usize;
    while i + 32 <= n && !px[i..i + 32].iter().any(|&b| b) {
        i += 32;
    }
    while i < n && !px[i] {
        i += 1;
    }
    if i == n {
        out.clear();
        return false;
    }
    let w = mask.width() as usize;
    let start = ((i % w) as i64, (i / w) as i64);
    moore_walk(|x, y| mask.get_padded(x, y), start, mask.pixel_count(), out);
    true
}

/// [`trace_outer_contour_into`] on a bit-packed mask: the start-pixel scan
/// compares 64 pixels per word (zero words skip in one branch, the first set
/// bit comes from `trailing_zeros`), then the same Moore walk runs over the
/// packed accessor. The traced contour is bit-identical to the byte form's.
pub fn trace_outer_contour_packed_into(mask: &BitMask, out: &mut Vec<ContourPoint>) -> bool {
    let wpr = mask.words_per_row();
    let words = mask.words();
    // The tail invariant keeps padding bits zero, so the first set bit in
    // the word array is exactly the row-major first foreground pixel.
    let Some((j, &word)) = words.iter().enumerate().find(|(_, w)| **w != 0) else {
        out.clear();
        return false;
    };
    let y = (j / wpr) as i64;
    let x = ((j % wpr) * WORD_BITS) as i64 + i64::from(word.trailing_zeros());
    moore_walk(
        |x, y| mask.get_padded(x, y),
        (x, y),
        (mask.width() * mask.height()) as usize,
        out,
    );
    true
}

/// The Moore-neighbour boundary walk shared by the byte and packed tracers:
/// starts at `start` (whose west neighbour must be background — guaranteed
/// by a row-major start scan), probes the neighbourhood through `fg`, and
/// stops by Jacob's criterion. `out` is cleared first and receives the
/// ordered, closed boundary.
fn moore_walk<F: Fn(i64, i64) -> bool>(
    fg: F,
    start: (i64, i64),
    pixel_count: usize,
    out: &mut Vec<ContourPoint>,
) {
    out.clear();
    let (sx, sy) = start;
    out.push(ContourPoint {
        x: sx as u32,
        y: sy as u32,
    });
    // Backtrack begins at the west neighbour (index 0 in MOORE).
    let mut cur = (sx, sy);
    let mut backtrack_idx = 0usize;
    // Termination (Jacob's criterion, transition form): stop when the move
    // out of the current pixel reproduces the very first move's resulting
    // state `(pixel, backtrack)` — i.e. the walk has started repeating.
    let mut first_move_state: Option<((i64, i64), usize)> = None;
    let max_steps = 4 * pixel_count + 8;

    for _ in 0..max_steps {
        // Scan clockwise from just after the backtrack direction.
        let mut found = None;
        for k in 1..=8 {
            let idx = (backtrack_idx + k) % 8;
            let (dx, dy) = MOORE[idx];
            let n = (cur.0 + dx, cur.1 + dy);
            if fg(n.0, n.1) {
                found = Some((n, (backtrack_idx + k - 1) % 8));
                break;
            }
        }
        let Some((next, prev_bg_idx)) = found else {
            // isolated pixel
            return;
        };
        // New backtrack: direction from `next` to the background pixel we
        // examined immediately before finding `next`.
        let (pdx, pdy) = MOORE[prev_bg_idx];
        let prev_bg = (cur.0 + pdx, cur.1 + pdy);
        let rel = (prev_bg.0 - next.0, prev_bg.1 - next.1);
        let new_backtrack = MOORE
            .iter()
            .position(|d| *d == rel)
            .expect("background neighbour is Moore-adjacent to next pixel");

        let new_state = (next, new_backtrack);
        match first_move_state {
            None => first_move_state = Some(new_state),
            Some(first) if first == new_state => break,
            Some(_) => {}
        }

        cur = next;
        backtrack_idx = new_backtrack;
        out.push(ContourPoint {
            x: cur.0 as u32,
            y: cur.1 as u32,
        });
    }
    // The loop closes back at the start; drop the duplicated start point if present.
    if out.len() > 1 && out.last() == out.first() {
        out.pop();
    }
}

/// Computes the perimeter length of a closed contour (Euclidean, with √2 for
/// diagonal steps).
pub fn contour_perimeter(contour: &[ContourPoint]) -> f64 {
    if contour.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..contour.len() {
        let a = contour[i].to_vec2();
        let b = contour[(i + 1) % contour.len()].to_vec2();
        total += a.distance(b);
    }
    total
}

/// Centroid of the contour points.
pub fn contour_centroid(contour: &[ContourPoint]) -> Option<Vec2> {
    if contour.is_empty() {
        return None;
    }
    Some(contour.iter().map(|p| p.to_vec2()).sum::<Vec2>() / contour.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;
    use crate::image::GrayImage;
    use crate::threshold::binarize;

    fn disk_mask(r: f64) -> Bitmap {
        let size = (2.0 * r + 10.0) as u32;
        let mut img = GrayImage::new(size, size);
        draw::fill_disk(
            &mut img,
            Vec2::new(size as f64 / 2.0, size as f64 / 2.0),
            r,
            255,
        );
        binarize(&img, 128)
    }

    #[test]
    fn empty_mask_yields_none() {
        assert!(trace_outer_contour(&Bitmap::new(4, 4)).is_none());
    }

    #[test]
    fn single_pixel_contour() {
        let mut m = Bitmap::new(3, 3);
        m.set(1, 1, true);
        let c = trace_outer_contour(&m).unwrap();
        assert_eq!(c, vec![ContourPoint { x: 1, y: 1 }]);
    }

    #[test]
    fn square_boundary_is_closed_ring() {
        let mut m = Bitmap::new(6, 6);
        for y in 1..5 {
            for x in 1..5 {
                m.set(x, y, true);
            }
        }
        let c = trace_outer_contour(&m).unwrap();
        // 4×4 square: boundary has 12 pixels
        assert_eq!(c.len(), 12);
        // all contour points are foreground and touch background
        for p in &c {
            assert_eq!(m.get(p.x, p.y), Some(true));
        }
        // consecutive points are Moore-adjacent
        for i in 0..c.len() {
            let a = c[i];
            let b = c[(i + 1) % c.len()];
            let dx = (a.x as i64 - b.x as i64).abs();
            let dy = (a.y as i64 - b.y as i64).abs();
            assert!(
                dx <= 1 && dy <= 1 && (dx + dy) > 0,
                "gap between {a:?} and {b:?}"
            );
        }
    }

    #[test]
    fn disk_contour_matches_circumference() {
        let c = trace_outer_contour(&disk_mask(20.0)).unwrap();
        let per = contour_perimeter(&c);
        let expected = std::f64::consts::TAU * 20.0;
        assert!(
            (per - expected).abs() / expected < 0.15,
            "perimeter {per} vs circle {expected}"
        );
    }

    #[test]
    fn contour_centroid_near_disk_center() {
        let mask = disk_mask(15.0);
        let c = trace_outer_contour(&mask).unwrap();
        let centroid = contour_centroid(&c).unwrap();
        let center = Vec2::new(mask.width() as f64 / 2.0, mask.height() as f64 / 2.0);
        assert!(
            centroid.distance(center) < 1.5,
            "centroid {centroid} vs {center}"
        );
    }

    #[test]
    fn blob_touching_border_traces_without_panic() {
        let mut m = Bitmap::new(5, 5);
        for y in 0..5 {
            for x in 0..3 {
                m.set(x, y, true);
            }
        }
        let c = trace_outer_contour(&m).unwrap();
        assert!(c.len() >= 12);
    }

    #[test]
    fn concave_shape_traced_fully() {
        // A "U" shape: contour must walk into the cavity
        let mut m = Bitmap::new(7, 7);
        for y in 1..6 {
            for x in 1..6 {
                m.set(x, y, true);
            }
        }
        for y in 1..5 {
            m.set(3, y, false); // carve the slot
        }
        let c = trace_outer_contour(&m).unwrap();
        // Boundary must include pixels on both sides of the slot at its bottom
        assert!(c.iter().any(|p| p.x == 2 && p.y == 1));
        assert!(c.iter().any(|p| p.x == 4 && p.y == 1));
        assert!(c.len() > 16);
    }

    #[test]
    fn contour_buffer_reuse_matches_allocating_form() {
        let mut buf = Vec::new();
        for r in [6.0, 20.0, 11.0] {
            let m = disk_mask(r);
            assert!(trace_outer_contour_into(&m, &mut buf));
            assert_eq!(Some(buf.clone()), trace_outer_contour(&m), "radius {r}");
        }
        assert!(!trace_outer_contour_into(&Bitmap::new(4, 4), &mut buf));
        assert!(buf.is_empty(), "empty mask clears the buffer");
    }

    #[test]
    fn packed_trace_matches_byte_trace() {
        let mut byte_buf = Vec::new();
        let mut packed_buf = Vec::new();
        for r in [6.0, 20.0, 35.0] {
            let m = disk_mask(r);
            let packed = BitMask::from_bitmap(&m);
            assert!(trace_outer_contour_into(&m, &mut byte_buf));
            assert!(trace_outer_contour_packed_into(&packed, &mut packed_buf));
            assert_eq!(byte_buf, packed_buf, "radius {r}");
        }
        // Start pixel deep into a later word, blob crossing word boundaries.
        let mut m = Bitmap::new(150, 9);
        for y in 3..8 {
            for x in 60..70 {
                m.set(x, y, true);
            }
        }
        let packed = BitMask::from_bitmap(&m);
        assert!(trace_outer_contour_into(&m, &mut byte_buf));
        assert!(trace_outer_contour_packed_into(&packed, &mut packed_buf));
        assert_eq!(byte_buf, packed_buf);
        // Empty mask clears the buffer and reports false.
        assert!(!trace_outer_contour_packed_into(
            &BitMask::new(70, 4),
            &mut packed_buf
        ));
        assert!(packed_buf.is_empty());
    }

    #[test]
    fn one_pixel_wide_line_traced() {
        let mut m = Bitmap::new(8, 3);
        for x in 1..7 {
            m.set(x, 1, true);
        }
        let c = trace_outer_contour(&m).unwrap();
        // the trace goes out and back along the line: 2*(6-1) points
        assert_eq!(c.len(), 10);
    }
}
