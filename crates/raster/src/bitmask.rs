//! Bit-packed binary masks: 64 pixels per `u64` word.
//!
//! Every value in a segmentation mask is 0 or 1, yet [`Bitmap`]
//! (`Image<bool>`) spends a whole byte per pixel — so the silhouette hot
//! path (binarize → morphology → labelling → contour → diff) was touching
//! 8× more memory than the information it carried. [`BitMask`] packs each
//! row into `u64` words, least-significant bit first (pixel `x` lives in
//! bit `x % 64` of word `x / 64` of its row), with rows padded to whole
//! words. On top of that layout the pipeline kernels become word-parallel:
//!
//! * binarisation thresholds 8 bytes per step into mask words
//!   ([`crate::threshold::binarize_packed_into`]),
//! * erosion/dilation are shift-AND / shift-OR across word boundaries
//!   ([`crate::morphology::erode_packed_into`]),
//! * run extraction for the union-find labeller scans words with
//!   trailing-zero counts ([`crate::components::largest_component_packed_with`]),
//! * mask differencing is XOR + popcount ([`crate::diff::mask_diff_count`]),
//! * contour tracing reads single bits ([`crate::contour::trace_outer_contour_packed_into`]).
//!
//! **Tail invariant.** Bits at or beyond `width` in each row's last word
//! are always zero. Every constructor and kernel in this crate maintains
//! it; it is what lets popcounts, word comparisons and shift-in-zeroes at
//! the right image edge work without per-pixel masking. Code that writes
//! through [`BitMask::words_mut`] must re-establish the invariant (e.g. by
//! AND-ing each row's last word with [`BitMask::tail_mask`]).
//!
//! # Example
//! ```
//! use hdc_raster::{BitMask, Bitmap};
//! let mut m = BitMask::new(70, 2); // 70 px → 2 words per row
//! m.set(69, 1, true);
//! assert_eq!(m.get(69, 1), Some(true));
//! assert_eq!(m.count_ones(), 1);
//! let bytes: Bitmap = m.to_bitmap();
//! assert_eq!(bytes.count_foreground(), 1);
//! assert_eq!(BitMask::from_bitmap(&bytes), m);
//! ```

use crate::digest::Fnv1a64;
use crate::image::{Bitmap, GrayImage};

/// Pixels per storage word.
pub const WORD_BITS: usize = 64;

/// A bit-packed binary mask: one bit per pixel, rows padded to whole
/// `u64` words. See the module docs for the layout and the tail invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    width: u32,
    height: u32,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMask {
    /// Creates an all-background mask.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mask must be non-empty");
        let words_per_row = (width as usize).div_ceil(WORD_BITS);
        BitMask {
            width,
            height,
            words_per_row,
            words: vec![0; words_per_row * height as usize],
        }
    }

    /// Re-dimensions the mask, reusing the word buffer when its capacity
    /// already suffices (no allocation in steady state). Pixel contents are
    /// unspecified afterwards; callers are expected to overwrite every word
    /// (all kernels in this crate do) and to leave the tail invariant intact.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn reset_dimensions(&mut self, width: u32, height: u32) {
        assert!(width > 0 && height > 0, "mask must be non-empty");
        self.words_per_row = (width as usize).div_ceil(WORD_BITS);
        self.words.resize(self.words_per_row * height as usize, 0);
        self.width = width;
        self.height = height;
    }

    /// Mask width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Storage words per row (`ceil(width / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The valid-bit mask of each row's **last** word: all ones when the
    /// width is a multiple of 64, otherwise ones in the low `width % 64`
    /// bits. AND-ing with it re-establishes the tail invariant.
    pub fn tail_mask(&self) -> u64 {
        let rem = (self.width as usize) % WORD_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// The raw row-major word buffer.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw word buffer. Writers must maintain the tail invariant
    /// (see the module docs).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The words of row `y`.
    ///
    /// # Panics
    /// Panics if `y` is out of bounds.
    pub fn row(&self, y: u32) -> &[u64] {
        let base = y as usize * self.words_per_row;
        &self.words[base..base + self.words_per_row]
    }

    /// Mutable words of row `y`. Writers must maintain the tail invariant.
    ///
    /// # Panics
    /// Panics if `y` is out of bounds.
    pub fn row_mut(&mut self, y: u32) -> &mut [u64] {
        let base = y as usize * self.words_per_row;
        &mut self.words[base..base + self.words_per_row]
    }

    /// Pixel value at `(x, y)`, or `None` out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Option<bool> {
        if x < self.width && y < self.height {
            let i = y as usize * self.words_per_row + (x as usize) / WORD_BITS;
            Some(self.words[i] >> (x as usize % WORD_BITS) & 1 != 0)
        } else {
            None
        }
    }

    /// Pixel value at signed coordinates; out-of-bounds reads as background
    /// — the same padding convention as [`crate::image::Image::get_padded`].
    #[inline]
    pub fn get_padded(&self, x: i64, y: i64) -> bool {
        if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
            let i = y as usize * self.words_per_row + (x as usize) / WORD_BITS;
            self.words[i] >> (x as usize % WORD_BITS) & 1 != 0
        } else {
            false
        }
    }

    /// Sets the pixel at `(x, y)`; silently ignores out-of-bounds writes
    /// (matching [`crate::image::Image::set`]).
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: bool) {
        if x < self.width && y < self.height {
            let i = y as usize * self.words_per_row + (x as usize) / WORD_BITS;
            let bit = 1u64 << (x as usize % WORD_BITS);
            if value {
                self.words[i] |= bit;
            } else {
                self.words[i] &= !bit;
            }
        }
    }

    /// Fills the whole mask, maintaining the tail invariant.
    pub fn fill(&mut self, value: bool) {
        if value {
            self.words.fill(u64::MAX);
            let tail = self.tail_mask();
            if tail != u64::MAX {
                let wpr = self.words_per_row;
                for row in self.words.chunks_exact_mut(wpr) {
                    row[wpr - 1] &= tail;
                }
            }
        } else {
            self.words.fill(0);
        }
    }

    /// Sets the inclusive pixel run `[start, end]` of row `y` to foreground
    /// with at most three word-granular stores — the packed equivalent of
    /// `slice.fill(true)` over a byte run.
    ///
    /// # Panics
    /// Panics if the run is reversed or out of bounds.
    pub fn set_run(&mut self, y: u32, start: u32, end: u32) {
        assert!(
            start <= end && end < self.width && y < self.height,
            "run ({start}..={end}) must lie inside row {y} of a {}x{} mask",
            self.width,
            self.height
        );
        let base = y as usize * self.words_per_row;
        let (s, e) = (start as usize, end as usize);
        let (ws, we) = (s / WORD_BITS, e / WORD_BITS);
        // Ones at bit (s % 64) and up.
        let first = u64::MAX << (s % WORD_BITS);
        // Ones at bit (e % 64) and down.
        let last = u64::MAX >> (WORD_BITS - 1 - e % WORD_BITS);
        if ws == we {
            self.words[base + ws] |= first & last;
        } else {
            self.words[base + ws] |= first;
            for w in &mut self.words[base + ws + 1..base + we] {
                *w = u64::MAX;
            }
            self.words[base + we] |= last;
        }
    }

    /// Number of foreground pixels (one `popcount` per word; the tail
    /// invariant keeps padding bits out of the sum).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// FNV-1a/64 fingerprint of the dimensions plus every `row_stride`-th
    /// row's words — the packed analogue of the temporal gate's sampled-row
    /// frame fingerprint, touching ⅛ of the bytes the byte-mask version
    /// hashes. Byte-identical masks always collide (callers verify with a
    /// word compare).
    ///
    /// # Panics
    /// Panics if `row_stride` is zero.
    pub fn fingerprint_sampled(&self, row_stride: usize) -> u64 {
        assert!(row_stride > 0, "row stride must be positive");
        let mut h = Fnv1a64::new();
        h.write(&self.width.to_le_bytes());
        h.write(&self.height.to_le_bytes());
        for y in (0..self.height).step_by(row_stride) {
            for w in self.row(y) {
                h.write(&w.to_le_bytes());
            }
        }
        h.finish()
    }

    /// Packs a byte-per-pixel mask, re-dimensioning `self` to match (the
    /// allocation-free bridge from the byte world).
    pub fn pack_from(&mut self, mask: &Bitmap) {
        self.reset_dimensions(mask.width(), mask.height());
        let w = mask.width() as usize;
        let wpr = self.words_per_row;
        for (dst_row, src_row) in self
            .words
            .chunks_exact_mut(wpr)
            .zip(mask.pixels().chunks_exact(w))
        {
            pack_row(src_row, dst_row);
        }
    }

    /// Packs a byte-per-pixel mask into a fresh [`BitMask`].
    pub fn from_bitmap(mask: &Bitmap) -> Self {
        let mut out = BitMask::new(mask.width(), mask.height());
        out.pack_from(mask);
        out
    }

    /// Packs a 0/1 byte image (as produced by
    /// [`crate::threshold::binarize_bytes_into`]), re-dimensioning `self`
    /// to match. Unlike [`BitMask::pack_from`], the `u8` source rows chunk
    /// into plain little-endian word loads, so each gather multiply is fed
    /// by one 8-byte load instead of eight bool-to-byte conversions — this
    /// is the fast half of the hybrid binarise-then-pack path.
    ///
    /// Every source byte must be 0 or 1; larger values would carry across
    /// gather lanes and corrupt neighbouring bits (debug-asserted).
    pub fn pack_from_bytes(&mut self, mask: &GrayImage) {
        self.reset_dimensions(mask.width(), mask.height());
        let w = mask.width() as usize;
        let wpr = self.words_per_row;
        for (dst_row, src_row) in self
            .words
            .chunks_exact_mut(wpr)
            .zip(mask.pixels().chunks_exact(w))
        {
            let mut full = src_row.chunks_exact(WORD_BITS);
            for (word, chunk) in dst_row.iter_mut().zip(full.by_ref()) {
                // eight independent gathers, combined pairwise: no
                // loop-carried OR chain, so the multiplies pipeline
                let g = |o: usize| gather_unit_bytes(&chunk[o..o + 8]);
                let lo = g(0) | (g(8) << 8) | (g(16) << 16) | (g(24) << 24);
                let hi = (g(32) << 32) | (g(40) << 40) | (g(48) << 48) | (g(56) << 56);
                *word = lo | hi;
            }
            let tail = full.remainder();
            if !tail.is_empty() {
                let mut packed = 0u64;
                let mut bytes = tail.chunks_exact(8);
                for (k, b) in bytes.by_ref().enumerate() {
                    packed |= gather_unit_bytes(b) << (8 * k);
                }
                let tail_base = tail.len() - bytes.remainder().len();
                for (i, &p) in bytes.remainder().iter().enumerate() {
                    debug_assert!(p <= 1, "source bytes must be 0 or 1");
                    packed |= u64::from(p) << (tail_base + i);
                }
                dst_row[wpr - 1] = packed;
            }
        }
    }

    /// Unpacks into a byte-per-pixel mask, re-dimensioning `out` to match.
    pub fn unpack_into(&self, out: &mut Bitmap) {
        out.reset_dimensions(self.width, self.height);
        let w = self.width as usize;
        for (dst_row, src_row) in out
            .pixels_mut()
            .chunks_exact_mut(w)
            .zip(self.words.chunks_exact(self.words_per_row))
        {
            for (x, dst) in dst_row.iter_mut().enumerate() {
                *dst = src_row[x / WORD_BITS] >> (x % WORD_BITS) & 1 != 0;
            }
        }
    }

    /// Unpacks into a fresh byte-per-pixel mask.
    pub fn to_bitmap(&self) -> Bitmap {
        let mut out = Bitmap::new(self.width, self.height);
        self.unpack_into(&mut out);
        out
    }
}

/// Gathers eight 0/1 bytes into the low 8 bits of the result: one
/// little-endian word load and one overflowing multiply (byte `k` of the
/// load lands at bit `k`).
///
/// # Panics
/// Panics if `b` is not exactly 8 bytes.
#[inline]
fn gather_unit_bytes(b: &[u8]) -> u64 {
    const GATHER: u64 = 0x0102_0408_1020_4080;
    let v = u64::from_le_bytes(b.try_into().expect("gather operates on 8 bytes"));
    debug_assert_eq!(v & !0x0101_0101_0101_0101, 0, "source bytes must be 0 or 1");
    v.wrapping_mul(GATHER) >> 56
}

/// Packs one row of bools into words: 8 bools per step through the
/// bit-gather multiply (each `true` is byte `0x01`; the multiply lines the
/// eight low bits up in the top byte).
fn pack_row(src: &[bool], dst: &mut [u64]) {
    const GATHER: u64 = 0x0102_0408_1020_4080;
    for (j, word) in dst.iter_mut().enumerate() {
        let chunk = &src[j * WORD_BITS..(j * WORD_BITS + WORD_BITS).min(src.len())];
        let mut w = 0u64;
        let mut bytes = chunk.chunks_exact(8);
        for (k, b) in bytes.by_ref().enumerate() {
            let v = u64::from_le_bytes([
                b[0] as u8, b[1] as u8, b[2] as u8, b[3] as u8, b[4] as u8, b[5] as u8, b[6] as u8,
                b[7] as u8,
            ]);
            w |= (v.wrapping_mul(GATHER) >> 56) << (8 * k);
        }
        let tail_base = chunk.len() - bytes.remainder().len();
        for (i, &b) in bytes.remainder().iter().enumerate() {
            w |= u64::from(b) << (tail_base + i);
        }
        *word = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speckled(w: u32, h: u32, salt: u64) -> Bitmap {
        let mut m = Bitmap::new(w, h);
        let mut state = salt | 1;
        for y in 0..h {
            for x in 0..w {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m.set(x, y, (state >> 62) != 0);
            }
        }
        m
    }

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut m = BitMask::new(130, 3);
        assert_eq!(m.words_per_row(), 3);
        for &(x, y) in &[(0u32, 0u32), (63, 0), (64, 1), (127, 2), (128, 2), (129, 0)] {
            m.set(x, y, true);
            assert_eq!(m.get(x, y), Some(true), "({x},{y})");
        }
        assert_eq!(m.count_ones(), 6);
        m.set(64, 1, false);
        assert_eq!(m.get(64, 1), Some(false));
        assert_eq!(m.get(130, 0), None);
        assert_eq!(m.get(0, 3), None);
        m.set(200, 0, true); // ignored
        assert_eq!(m.count_ones(), 5);
    }

    #[test]
    fn padded_reads_background_outside() {
        let mut m = BitMask::new(4, 4);
        m.set(0, 0, true);
        assert!(m.get_padded(0, 0));
        assert!(!m.get_padded(-1, 0));
        assert!(!m.get_padded(0, -1));
        assert!(!m.get_padded(4, 0));
    }

    #[test]
    fn fill_maintains_tail_invariant() {
        for w in [1u32, 63, 64, 65, 128, 130] {
            let mut m = BitMask::new(w, 2);
            m.fill(true);
            assert_eq!(m.count_ones(), 2 * w as usize, "width {w}");
            let tail = m.tail_mask();
            let wpr = m.words_per_row();
            for row in m.words().chunks_exact(wpr) {
                assert_eq!(row[wpr - 1] & !tail, 0, "width {w} tail must stay clear");
            }
            m.fill(false);
            assert_eq!(m.count_ones(), 0);
        }
    }

    #[test]
    fn pack_unpack_roundtrip_odd_widths() {
        for (w, h, salt) in [
            (1u32, 1u32, 3u64),
            (63, 2, 5),
            (64, 3, 7),
            (65, 2, 9),
            (190, 4, 11),
        ] {
            let b = speckled(w, h, salt);
            let packed = BitMask::from_bitmap(&b);
            assert_eq!(packed.count_ones(), b.count_foreground(), "{w}x{h}");
            assert_eq!(packed.to_bitmap(), b, "{w}x{h}");
            // tail invariant after packing
            let tail = packed.tail_mask();
            let wpr = packed.words_per_row();
            for row in packed.words().chunks_exact(wpr) {
                assert_eq!(row[wpr - 1] & !tail, 0);
            }
        }
    }

    #[test]
    fn pack_from_bytes_matches_pack_from_bool() {
        for (w, h, salt) in [
            (1u32, 1u32, 3u64),
            (63, 2, 5),
            (64, 3, 7),
            (65, 2, 9),
            (190, 4, 11),
        ] {
            let b = speckled(w, h, salt);
            let mut bytes = GrayImage::new(w, h);
            for (dst, src) in bytes.pixels_mut().iter_mut().zip(b.pixels()) {
                *dst = u8::from(*src);
            }
            let mut from_bytes = BitMask::new(1, 1);
            from_bytes.pack_from_bytes(&bytes);
            assert_eq!(from_bytes, BitMask::from_bitmap(&b), "{w}x{h}");
        }
    }

    #[test]
    fn set_run_matches_per_pixel_sets() {
        for (s, e) in [
            (0u32, 0u32),
            (0, 63),
            (5, 64),
            (63, 64),
            (10, 150),
            (64, 127),
            (150, 169),
        ] {
            let mut by_run = BitMask::new(170, 2);
            by_run.set_run(1, s, e);
            let mut by_pixel = BitMask::new(170, 2);
            for x in s..=e {
                by_pixel.set(x, 1, true);
            }
            assert_eq!(by_run, by_pixel, "run {s}..={e}");
        }
    }

    #[test]
    #[should_panic(expected = "must lie inside")]
    fn set_run_rejects_out_of_bounds() {
        BitMask::new(10, 2).set_run(0, 5, 10);
    }

    #[test]
    fn reset_dimensions_reuses_capacity() {
        let mut m = BitMask::new(200, 100);
        let cap = m.words.capacity();
        m.reset_dimensions(100, 50);
        m.reset_dimensions(200, 100);
        assert_eq!(m.words.capacity(), cap);
        assert_eq!(m.words.len(), m.words_per_row() * 100);
    }

    #[test]
    fn fingerprint_distinguishes_and_samples() {
        let a = BitMask::from_bitmap(&speckled(100, 40, 1));
        let b = BitMask::from_bitmap(&speckled(100, 40, 2));
        assert_ne!(a.fingerprint_sampled(1), b.fingerprint_sampled(1));
        assert_eq!(a.fingerprint_sampled(4), a.clone().fingerprint_sampled(4));
        // a change in an unsampled row is invisible at that stride …
        let mut c = a.clone();
        c.set(0, 1, !c.get(0, 1).unwrap());
        assert_eq!(a.fingerprint_sampled(4), c.fingerprint_sampled(4));
        // … and visible at stride 1
        assert_ne!(a.fingerprint_sampled(1), c.fingerprint_sampled(1));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = BitMask::new(0, 4);
    }
}
