//! FNV-1a/64 hashing of raw byte slices.
//!
//! One digest, two consumers: `hdc-sim` hashes canonical scenario traces
//! into the golden digests committed under `tests/golden/`, and the vision
//! layer's strict temporal gate fingerprints frames so frame-identity
//! checks are hash-then-verify (compare the cached 8-byte digest first, run
//! the full `memcmp` only on a digest match) instead of always a full
//! compare. FNV-1a is the right tool for both: dependency-free, byte-order
//! stable, and deterministic.
//!
//! The multiply-per-byte dependency chain makes FNV roughly 1 GB/s, so
//! hashing a whole VGA frame would cost as much as recognising it; callers
//! that gate on large buffers should hash a sparse sample through the
//! streaming [`Fnv1a64`] (the strict gate samples every 16th row) and let
//! the verifier do the exact work.

/// Streaming FNV-1a/64: feed any number of byte slices, then
/// [`Fnv1a64::finish`]. Hashing the concatenation of the fed slices through
/// [`fnv1a64`] yields the same digest.
///
/// # Example
/// ```
/// use hdc_raster::digest::{fnv1a64, Fnv1a64};
/// let mut h = Fnv1a64::new();
/// h.write(b"foo");
/// h.write(b"bar");
/// assert_eq!(h.finish(), fnv1a64(b"foobar"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher in the initial (offset-basis) state.
    pub fn new() -> Self {
        Fnv1a64 {
            state: Self::OFFSET,
        }
    }

    /// Absorbs `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for byte in bytes {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.state = h;
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64-bit hash of a byte slice.
///
/// # Example
/// ```
/// use hdc_raster::digest::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // standard FNV-1a/64 test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sensitive_to_every_byte() {
        let a = fnv1a64(&[0, 1, 2, 3]);
        let b = fnv1a64(&[0, 1, 2, 4]);
        let c = fnv1a64(&[1, 1, 2, 3]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_matches_one_shot_at_any_split() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let want = fnv1a64(data);
        for split in 0..=data.len() {
            let mut h = Fnv1a64::new();
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), want, "split at {split}");
        }
        assert_eq!(Fnv1a64::default().finish(), fnv1a64(b""));
    }
}
