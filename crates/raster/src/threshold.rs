//! Binarisation.

use crate::bitmask::{BitMask, WORD_BITS};
use crate::image::{Bitmap, GrayImage};

/// Binarises with a fixed threshold: pixels **strictly above** `t` become
/// foreground.
///
/// Routes through [`binarize_into`] so the allocating convenience form and
/// the steady-state form can never drift apart.
///
/// # Example
/// ```
/// use hdc_raster::{GrayImage, threshold::binarize};
/// let mut img = GrayImage::new(2, 1);
/// img.set(0, 0, 200);
/// let b = binarize(&img, 128);
/// assert_eq!(b.get(0, 0), Some(true));
/// assert_eq!(b.get(1, 0), Some(false));
/// ```
pub fn binarize(img: &GrayImage, t: u8) -> Bitmap {
    let mut out = Bitmap::new(img.width(), img.height());
    binarize_into(img, t, &mut out);
    out
}

/// [`binarize`] into a caller-provided mask (re-dimensioned to match, every
/// pixel overwritten); the allocation-free form used by the steady-state
/// frame loop.
pub fn binarize_into(img: &GrayImage, t: u8, out: &mut Bitmap) {
    out.reset_dimensions(img.width(), img.height());
    for (dst, src) in out.pixels_mut().iter_mut().zip(img.pixels()) {
        *dst = *src > t;
    }
}

/// [`binarize`] into a bit-packed [`BitMask`] (re-dimensioned to match,
/// every word overwritten): the word-parallel form used by the packed
/// recognition path.
///
/// Eight pixels are thresholded per step with a SWAR byte comparison — the
/// grayscale bytes are loaded as one `u64`, compared against the broadcast
/// threshold without unpacking, and the eight per-byte verdicts gathered
/// into eight mask bits by one multiply. No per-pixel branches, ⅛ the
/// output traffic of the byte form.
pub fn binarize_packed_into(img: &GrayImage, t: u8, out: &mut BitMask) {
    out.reset_dimensions(img.width(), img.height());
    let w = img.width() as usize;
    let wpr = out.words_per_row();
    for (dst_row, src_row) in out
        .words_mut()
        .chunks_exact_mut(wpr)
        .zip(img.pixels().chunks_exact(w))
    {
        for (j, word) in dst_row.iter_mut().enumerate() {
            let chunk = &src_row[j * WORD_BITS..(j * WORD_BITS + WORD_BITS).min(w)];
            let mut packed = 0u64;
            let mut bytes = chunk.chunks_exact(8);
            for (k, b) in bytes.by_ref().enumerate() {
                let v = u64::from_le_bytes(b.try_into().expect("chunks_exact yields 8 bytes"));
                packed |= gather_gt_bytes(v, t) << (8 * k);
            }
            let tail_base = chunk.len() - bytes.remainder().len();
            for (i, &p) in bytes.remainder().iter().enumerate() {
                packed |= u64::from(p > t) << (tail_base + i);
            }
            *word = packed;
        }
    }
}

/// [`binarize_packed_into`] into a fresh mask (routes through the `_into`
/// form, like every allocating convenience wrapper in this crate).
pub fn binarize_packed(img: &GrayImage, t: u8) -> BitMask {
    let mut out = BitMask::new(img.width(), img.height());
    binarize_packed_into(img, t, &mut out);
    out
}

/// [`binarize`] into a byte-per-pixel 0/1 image: the front half of the
/// hybrid binarise-then-pack path. The straight byte compare is the form
/// the compiler vectorises best — one SIMD compare per register of pixels —
/// and the 0/1 `u8` output (unlike `bool`) can be reloaded eight lanes at a
/// time by [`BitMask::pack_from_bytes`] with plain word loads.
pub fn binarize_bytes_into(img: &GrayImage, t: u8, out: &mut GrayImage) {
    out.reset_dimensions(img.width(), img.height());
    for (dst, src) in out.pixels_mut().iter_mut().zip(img.pixels()) {
        *dst = u8::from(*src > t);
    }
}

/// SWAR bytewise threshold: returns the low 8 bits set where the
/// corresponding byte of `x` is **strictly greater** than `t`.
///
/// Per byte, split off the sign bit: for the low 7 bits `xl`, `xl > t7`
/// holds exactly when `xl + (127 - t7)` overflows into bit 7 (both operands
/// are ≤ 127, so the add never carries across byte lanes). The sign bit
/// then combines by cases — a threshold below 128 is exceeded by *any*
/// byte with the sign bit set (OR), a threshold of 128 or more *requires*
/// it (AND). The eight per-byte verdict bits (at positions 8k+7) are
/// gathered into the low byte by one overflowing multiply: each verdict
/// lands at bit 56 + k with no cross-term collisions, so the top byte of
/// the product is the answer.
#[inline]
fn gather_gt_bytes(x: u64, t: u8) -> u64 {
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    const SIGN: u64 = 0x8080_8080_8080_8080;
    const LANES: u64 = 0x0101_0101_0101_0101;
    const GATHER: u64 = 0x0002_0408_1020_4081;
    let bias = u64::from(127 - (t & 0x7f)) * LANES;
    let gt7 = ((x & LOW7) + bias) & SIGN;
    let verdict = if t >= 128 { x & gt7 } else { (x & SIGN) | gt7 };
    verdict.wrapping_mul(GATHER) >> 56
}

/// Computes Otsu's optimal global threshold from the image histogram.
///
/// Returns the threshold value `t` such that [`binarize`]`(img, t)` separates
/// the two intensity classes with maximal between-class variance. For a
/// constant image every threshold is equivalent; `0` is returned.
pub fn otsu_threshold(img: &GrayImage) -> u8 {
    let hist = img.histogram();
    let total = img.pixel_count() as f64;
    let sum_all: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, c)| i as f64 * *c as f64)
        .sum();

    let mut sum_bg = 0.0;
    let mut weight_bg = 0.0;
    let mut best_t = 0u8;
    let mut best_var = -1.0;

    for (t, count) in hist.iter().enumerate() {
        weight_bg += *count as f64;
        if weight_bg == 0.0 {
            continue;
        }
        let weight_fg = total - weight_bg;
        if weight_fg == 0.0 {
            break;
        }
        sum_bg += t as f64 * *count as f64;
        let mean_bg = sum_bg / weight_bg;
        let mean_fg = (sum_all - sum_bg) / weight_fg;
        let between = weight_bg * weight_fg * (mean_bg - mean_fg).powi(2);
        if between > best_var {
            best_var = between;
            best_t = t as u8;
        }
    }
    best_t
}

/// Convenience: Otsu threshold + binarise in one call.
pub fn binarize_otsu(img: &GrayImage) -> Bitmap {
    binarize(img, otsu_threshold(img))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn fixed_threshold_is_strict() {
        let mut img = GrayImage::new(3, 1);
        img.set(0, 0, 127);
        img.set(1, 0, 128);
        img.set(2, 0, 129);
        let b = binarize(&img, 128);
        assert_eq!(b.get(0, 0), Some(false));
        assert_eq!(b.get(1, 0), Some(false));
        assert_eq!(b.get(2, 0), Some(true));
    }

    #[test]
    fn bytes_form_matches_bool_form() {
        let mut img = GrayImage::new(130, 3);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = (i * 37 % 256) as u8;
        }
        for t in [0u8, 127, 128, 200, 255] {
            let bools = binarize(&img, t);
            let mut bytes = GrayImage::new(1, 1);
            binarize_bytes_into(&img, t, &mut bytes);
            for (a, b) in bools.pixels().iter().zip(bytes.pixels()) {
                assert_eq!(u8::from(*a), *b, "threshold {t}");
            }
        }
    }

    #[test]
    fn otsu_separates_bimodal() {
        let mut img = GrayImage::new(10, 10);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = if i < 50 { 30 } else { 220 };
        }
        let t = otsu_threshold(&img);
        assert!(
            (30..220).contains(&t),
            "otsu threshold {t} should split the modes"
        );
        let b = binarize(&img, t);
        assert_eq!(b.count_foreground(), 50);
    }

    #[test]
    fn otsu_constant_image() {
        let img: GrayImage = Image::filled(4, 4, 77);
        // no second class exists; must not panic
        let _ = otsu_threshold(&img);
    }

    #[test]
    fn binarize_otsu_silhouette() {
        let mut img = GrayImage::new(8, 8);
        img.set(3, 3, 255);
        img.set(4, 3, 255);
        let b = binarize_otsu(&img);
        assert_eq!(b.count_foreground(), 2);
    }
}
