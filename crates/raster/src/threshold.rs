//! Binarisation.

use crate::image::{Bitmap, GrayImage};

/// Binarises with a fixed threshold: pixels **strictly above** `t` become
/// foreground.
///
/// # Example
/// ```
/// use hdc_raster::{GrayImage, threshold::binarize};
/// let mut img = GrayImage::new(2, 1);
/// img.set(0, 0, 200);
/// let b = binarize(&img, 128);
/// assert_eq!(b.get(0, 0), Some(true));
/// assert_eq!(b.get(1, 0), Some(false));
/// ```
pub fn binarize(img: &GrayImage, t: u8) -> Bitmap {
    img.map(|p| p > t)
}

/// [`binarize`] into a caller-provided mask (re-dimensioned to match, every
/// pixel overwritten); the allocation-free form used by the steady-state
/// frame loop.
pub fn binarize_into(img: &GrayImage, t: u8, out: &mut Bitmap) {
    out.reset_dimensions(img.width(), img.height());
    for (dst, src) in out.pixels_mut().iter_mut().zip(img.pixels()) {
        *dst = *src > t;
    }
}

/// Computes Otsu's optimal global threshold from the image histogram.
///
/// Returns the threshold value `t` such that [`binarize`]`(img, t)` separates
/// the two intensity classes with maximal between-class variance. For a
/// constant image every threshold is equivalent; `0` is returned.
pub fn otsu_threshold(img: &GrayImage) -> u8 {
    let hist = img.histogram();
    let total = img.pixel_count() as f64;
    let sum_all: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, c)| i as f64 * *c as f64)
        .sum();

    let mut sum_bg = 0.0;
    let mut weight_bg = 0.0;
    let mut best_t = 0u8;
    let mut best_var = -1.0;

    for (t, count) in hist.iter().enumerate() {
        weight_bg += *count as f64;
        if weight_bg == 0.0 {
            continue;
        }
        let weight_fg = total - weight_bg;
        if weight_fg == 0.0 {
            break;
        }
        sum_bg += t as f64 * *count as f64;
        let mean_bg = sum_bg / weight_bg;
        let mean_fg = (sum_all - sum_bg) / weight_fg;
        let between = weight_bg * weight_fg * (mean_bg - mean_fg).powi(2);
        if between > best_var {
            best_var = between;
            best_t = t as u8;
        }
    }
    best_t
}

/// Convenience: Otsu threshold + binarise in one call.
pub fn binarize_otsu(img: &GrayImage) -> Bitmap {
    binarize(img, otsu_threshold(img))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn fixed_threshold_is_strict() {
        let mut img = GrayImage::new(3, 1);
        img.set(0, 0, 127);
        img.set(1, 0, 128);
        img.set(2, 0, 129);
        let b = binarize(&img, 128);
        assert_eq!(b.get(0, 0), Some(false));
        assert_eq!(b.get(1, 0), Some(false));
        assert_eq!(b.get(2, 0), Some(true));
    }

    #[test]
    fn otsu_separates_bimodal() {
        let mut img = GrayImage::new(10, 10);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = if i < 50 { 30 } else { 220 };
        }
        let t = otsu_threshold(&img);
        assert!(
            (30..220).contains(&t),
            "otsu threshold {t} should split the modes"
        );
        let b = binarize(&img, t);
        assert_eq!(b.count_foreground(), 50);
    }

    #[test]
    fn otsu_constant_image() {
        let img: GrayImage = Image::filled(4, 4, 77);
        // no second class exists; must not panic
        let _ = otsu_threshold(&img);
    }

    #[test]
    fn binarize_otsu_silhouette() {
        let mut img = GrayImage::new(8, 8);
        img.set(3, 3, 255);
        img.set(4, 3, 255);
        let b = binarize_otsu(&img);
        assert_eq!(b.count_foreground(), 2);
    }
}
