//! Sensor-noise models for synthetic frames.
//!
//! Real orchard frames suffer sensor noise, foliage speckle and exposure
//! wobble; these injectors let the experiments measure recognition robustness
//! instead of only clean-frame behaviour.

use crate::image::GrayImage;
use rand::Rng;

/// Adds zero-mean Gaussian noise (approximated by the sum of uniforms via the
/// central limit theorem) with standard deviation `sigma` intensity levels.
///
/// # Example
/// ```
/// use hdc_raster::{GrayImage, noise};
/// use rand::{rngs::SmallRng, SeedableRng};
/// let mut img = GrayImage::filled(8, 8, 128);
/// let mut rng = SmallRng::seed_from_u64(7);
/// noise::add_gaussian(&mut img, 10.0, &mut rng);
/// assert!(img.pixels().iter().any(|p| *p != 128));
/// ```
pub fn add_gaussian<R: Rng>(img: &mut GrayImage, sigma: f64, rng: &mut R) {
    if sigma <= 0.0 {
        return;
    }
    for p in img.pixels_mut() {
        // Irwin–Hall(12) minus 6 has mean 0, variance 1.
        let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        let v = *p as f64 + z * sigma;
        *p = v.round().clamp(0.0, 255.0) as u8;
    }
}

/// Salt-and-pepper noise: each pixel independently becomes 0 or 255 with
/// probability `p/2` each.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn add_salt_pepper<R: Rng>(img: &mut GrayImage, p: f64, rng: &mut R) {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    for px in img.pixels_mut() {
        let u: f64 = rng.gen();
        if u < p / 2.0 {
            *px = 0;
        } else if u < p {
            *px = 255;
        }
    }
}

/// Multiplies every pixel by `gain` (exposure error), saturating at 255.
pub fn apply_gain(img: &mut GrayImage, gain: f64) {
    for px in img.pixels_mut() {
        *px = (*px as f64 * gain).round().clamp(0.0, 255.0) as u8;
    }
}

/// Randomly zeroes `fraction` of the pixels (foliage occlusion speckle).
///
/// # Panics
/// Panics if `fraction` is outside `[0, 1]`.
pub fn add_dropout<R: Rng>(img: &mut GrayImage, fraction: f64, rng: &mut R) {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    for px in img.pixels_mut() {
        if rng.gen::<f64>() < fraction {
            *px = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_preserves_mean_roughly() {
        let mut img = GrayImage::filled(64, 64, 128);
        let mut rng = SmallRng::seed_from_u64(1);
        add_gaussian(&mut img, 8.0, &mut rng);
        let mean = img.mean();
        assert!((mean - 128.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut img = GrayImage::filled(8, 8, 50);
        let mut rng = SmallRng::seed_from_u64(2);
        add_gaussian(&mut img, 0.0, &mut rng);
        assert!(img.pixels().iter().all(|p| *p == 50));
    }

    #[test]
    fn salt_pepper_hits_expected_fraction() {
        let mut img = GrayImage::filled(100, 100, 128);
        let mut rng = SmallRng::seed_from_u64(3);
        add_salt_pepper(&mut img, 0.1, &mut rng);
        let changed = img.pixels().iter().filter(|p| **p != 128).count();
        assert!((800..1200).contains(&changed), "changed {changed}");
    }

    #[test]
    fn gain_saturates() {
        let mut img: GrayImage = Image::filled(2, 2, 200);
        apply_gain(&mut img, 2.0);
        assert!(img.pixels().iter().all(|p| *p == 255));
    }

    #[test]
    fn dropout_zeroes_fraction() {
        let mut img = GrayImage::filled(100, 100, 255);
        let mut rng = SmallRng::seed_from_u64(4);
        add_dropout(&mut img, 0.25, &mut rng);
        let zeros = img.pixels().iter().filter(|p| **p == 0).count();
        assert!((2000..3000).contains(&zeros), "zeros {zeros}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let mut img = GrayImage::new(2, 2);
        let mut rng = SmallRng::seed_from_u64(5);
        add_salt_pepper(&mut img, 1.5, &mut rng);
    }
}
