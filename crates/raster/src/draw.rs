//! Rasterisation of the primitives the silhouette renderer needs.

use crate::image::Image;
use hdc_geometry::{Polygon, Vec2};

/// Fills a solid disk centred at `center` with the given pixel `value`.
///
/// Pixels are treated as unit squares sampled at their centres.
///
/// # Example
/// ```
/// use hdc_raster::{GrayImage, draw};
/// use hdc_geometry::Vec2;
/// let mut img = GrayImage::new(16, 16);
/// draw::fill_disk(&mut img, Vec2::new(8.0, 8.0), 3.0, 255);
/// assert_eq!(img.get(8, 8), Some(255));
/// assert_eq!(img.get(0, 0), Some(0));
/// ```
pub fn fill_disk<T: Copy + Default>(img: &mut Image<T>, center: Vec2, radius: f64, value: T) {
    if radius <= 0.0 {
        return;
    }
    let x0 = ((center.x - radius).floor().max(0.0)) as u32;
    let x1 = ((center.x + radius).ceil().min(img.width() as f64 - 1.0)).max(0.0) as u32;
    let y0 = ((center.y - radius).floor().max(0.0)) as u32;
    let y1 = ((center.y + radius).ceil().min(img.height() as f64 - 1.0)).max(0.0) as u32;
    let r_sq = radius * radius;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let p = Vec2::new(x as f64 + 0.5, y as f64 + 0.5);
            if (p - center).norm_sq() <= r_sq {
                img.set(x, y, value);
            }
        }
    }
}

/// Fills a tapered capsule: segment `a`→`b` with linearly interpolated radii.
///
/// This is the projected image of a 3-D capsule limb: the end nearer the
/// camera appears thicker. Radii are in pixels.
pub fn fill_tapered_capsule<T: Copy + Default>(
    img: &mut Image<T>,
    a: Vec2,
    radius_a: f64,
    b: Vec2,
    radius_b: f64,
    value: T,
) {
    let r_max = radius_a.max(radius_b).max(0.0);
    let lo = a.min(b) - Vec2::splat(r_max);
    let hi = a.max(b) + Vec2::splat(r_max);
    let x0 = lo.x.floor().max(0.0) as u32;
    let y0 = lo.y.floor().max(0.0) as u32;
    let x1 = (hi.x.ceil().min(img.width() as f64 - 1.0)).max(0.0) as u32;
    let y1 = (hi.y.ceil().min(img.height() as f64 - 1.0)).max(0.0) as u32;
    let ab = b - a;
    let len_sq = ab.norm_sq();
    for y in y0..=y1 {
        for x in x0..=x1 {
            let p = Vec2::new(x as f64 + 0.5, y as f64 + 0.5);
            let t = if len_sq <= 1e-12 {
                0.0
            } else {
                ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0)
            };
            let closest = a + ab * t;
            let r = radius_a + (radius_b - radius_a) * t;
            if (p - closest).norm_sq() <= r * r {
                img.set(x, y, value);
            }
        }
    }
}

/// Scanline-fills a polygon (even-odd rule).
pub fn fill_polygon<T: Copy + Default>(img: &mut Image<T>, poly: &Polygon, value: T) {
    let Some(bb) = poly.aabb() else { return };
    let y0 = bb.min().y.floor().max(0.0) as u32;
    let y1 = (bb.max().y.ceil().min(img.height() as f64 - 1.0)).max(0.0) as u32;
    let verts = poly.vertices();
    let n = verts.len();
    if n < 3 {
        return;
    }
    for y in y0..=y1 {
        let yc = y as f64 + 0.5;
        let mut xs: Vec<f64> = Vec::new();
        for i in 0..n {
            let p = verts[i];
            let q = verts[(i + 1) % n];
            if (p.y > yc) != (q.y > yc) {
                let t = (yc - p.y) / (q.y - p.y);
                xs.push(p.x + t * (q.x - p.x));
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pair in xs.chunks_exact(2) {
            let xa = pair[0].ceil().max(0.0) as u32;
            let xb = pair[1].floor().min(img.width() as f64 - 1.0).max(0.0) as u32;
            for x in xa..=xb {
                if (x as f64 + 0.5) >= pair[0] && (x as f64 + 0.5) <= pair[1] {
                    img.set(x, y, value);
                }
            }
        }
    }
}

/// Draws a 1-pixel line with Bresenham's algorithm.
pub fn draw_line<T: Copy + Default>(img: &mut Image<T>, a: Vec2, b: Vec2, value: T) {
    let mut x0 = a.x.round() as i64;
    let mut y0 = a.y.round() as i64;
    let x1 = b.x.round() as i64;
    let y1 = b.y.round() as i64;
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        if x0 >= 0 && y0 >= 0 {
            img.set(x0 as u32, y0 as u32, value);
        }
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::GrayImage;

    #[test]
    fn disk_area_close_to_pi_r_squared() {
        let mut img = GrayImage::new(100, 100);
        fill_disk(&mut img, Vec2::new(50.0, 50.0), 20.0, 255);
        let area = img.pixels().iter().filter(|p| **p > 0).count() as f64;
        let expected = std::f64::consts::PI * 400.0;
        assert!(
            (area - expected).abs() / expected < 0.05,
            "area {area} vs {expected}"
        );
    }

    #[test]
    fn disk_clips_at_border() {
        let mut img = GrayImage::new(10, 10);
        fill_disk(&mut img, Vec2::new(0.0, 0.0), 5.0, 255);
        assert_eq!(img.get(0, 0), Some(255));
        // no panic, nothing outside written
    }

    #[test]
    fn zero_radius_disk_draws_nothing() {
        let mut img = GrayImage::new(10, 10);
        fill_disk(&mut img, Vec2::new(5.0, 5.0), 0.0, 255);
        assert!(img.pixels().iter().all(|p| *p == 0));
    }

    #[test]
    fn capsule_covers_both_ends() {
        let mut img = GrayImage::new(60, 30);
        fill_tapered_capsule(
            &mut img,
            Vec2::new(10.0, 15.0),
            5.0,
            Vec2::new(50.0, 15.0),
            2.0,
            255,
        );
        assert_eq!(img.get(10, 15), Some(255));
        assert_eq!(img.get(50, 15), Some(255));
        assert_eq!(img.get(30, 15), Some(255));
        // taper: thicker end covers (10,19), thin end does not cover (50,19)
        assert_eq!(img.get(10, 19), Some(255));
        assert_eq!(img.get(50, 19), Some(0));
    }

    #[test]
    fn degenerate_capsule_is_disk() {
        let mut img = GrayImage::new(20, 20);
        fill_tapered_capsule(
            &mut img,
            Vec2::new(10.0, 10.0),
            4.0,
            Vec2::new(10.0, 10.0),
            4.0,
            255,
        );
        assert_eq!(img.get(10, 10), Some(255));
        assert!(img.pixels().iter().filter(|p| **p > 0).count() > 30);
    }

    #[test]
    fn polygon_fill_rectangle() {
        let mut img = GrayImage::new(20, 20);
        let rect = Polygon::rectangle(Vec2::new(5.0, 5.0), Vec2::new(15.0, 10.0));
        fill_polygon(&mut img, &rect, 255);
        assert_eq!(img.get(10, 7), Some(255));
        assert_eq!(img.get(4, 7), Some(0));
        assert_eq!(img.get(10, 12), Some(0));
        let count = img.pixels().iter().filter(|p| **p > 0).count();
        assert!((40..=60).contains(&count), "count {count}");
    }

    #[test]
    fn line_endpoints_set() {
        let mut img = GrayImage::new(20, 20);
        draw_line(&mut img, Vec2::new(2.0, 3.0), Vec2::new(17.0, 12.0), 255);
        assert_eq!(img.get(2, 3), Some(255));
        assert_eq!(img.get(17, 12), Some(255));
        assert!(img.pixels().iter().filter(|p| **p > 0).count() >= 15);
    }

    #[test]
    fn tiny_polygon_is_ignored() {
        let mut img = GrayImage::new(10, 10);
        fill_polygon(&mut img, &Polygon::new(vec![Vec2::new(1.0, 1.0)]), 255);
        assert!(img.pixels().iter().all(|p| *p == 0));
    }
}
