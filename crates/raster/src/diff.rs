//! Frame differencing for temporal-coherence gating.
//!
//! A drone watching a mostly static marshaller produces long runs of nearly
//! identical frames; the stream recogniser exploits that by comparing each
//! frame against the reference frame of its cached decision and skipping the
//! silhouette→signature→SAX pipeline when nothing moved. This module is the
//! raster half of that gate, three allocation-free kernels on raw slices:
//!
//! * [`frame_sad`] — whole-frame sum of absolute differences: the serial
//!   oracle the property tests check the tiled kernel against.
//! * [`tile_sad_into`] — per-tile SAD over a fixed grid, one pass over both
//!   frames. Per-tile resolution is what makes the tolerance *local*: a
//!   small moving arm concentrates its delta in a few tiles instead of
//!   being averaged away over the whole frame.
//! * [`box_downsample_into`] + [`coarse_sad`] — a cheap gate pre-pass: box
//!   cell sums at a coarse factor, whose SAD is a provable **lower bound**
//!   on the full-resolution SAD (triangle inequality per cell). When the
//!   coarse bound already exceeds the gate budget the frame has certainly
//!   changed and the fine tile pass can be skipped entirely.
//!
//! All kernels take caller-owned output buffers (`Vec` resized in place) so
//! the steady-state gate performs no heap allocation after the first frame
//! at a given geometry.

use crate::bitmask::{BitMask, WORD_BITS};
use crate::image::GrayImage;

/// Whole-frame sum of absolute pixel differences (the serial oracle).
///
/// # Panics
/// Panics if the frames differ in dimensions.
///
/// # Example
/// ```
/// use hdc_raster::{diff::frame_sad, GrayImage};
/// let a = GrayImage::filled(4, 4, 10);
/// let mut b = a.clone();
/// b.set(1, 1, 14);
/// assert_eq!(frame_sad(&a, &a), 0);
/// assert_eq!(frame_sad(&a, &b), 4);
/// ```
pub fn frame_sad(a: &GrayImage, b: &GrayImage) -> u64 {
    assert_dims_match(a, b);
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| u64::from(x.abs_diff(*y)))
        .sum()
}

/// The shape and aggregates of one [`tile_sad_into`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSummary {
    /// Tiles per row (`ceil(width / tile)`).
    pub tiles_x: u32,
    /// Tile rows (`ceil(height / tile)`).
    pub tiles_y: u32,
    /// Largest per-tile SAD.
    pub max: u64,
    /// Total SAD (equals [`frame_sad`] of the same pair).
    pub total: u64,
}

impl TileSummary {
    /// Total number of tiles in the grid.
    pub fn tile_count(&self) -> usize {
        self.tiles_x as usize * self.tiles_y as usize
    }
}

/// Per-tile sum of absolute differences over a `tile`×`tile` grid (edge
/// tiles are clipped to the frame). `out` is resized to the tile count and
/// filled row-major; the returned summary carries the grid shape plus the
/// max and total, so the common "all tiles under tolerance?" question needs
/// no second pass.
///
/// One pass over both pixel buffers in row-major order, accumulating into
/// the current tile row — no per-tile re-walk, no allocation beyond the
/// one-time growth of `out`.
///
/// # Panics
/// Panics if the frames differ in dimensions or `tile` is zero.
pub fn tile_sad_into(a: &GrayImage, b: &GrayImage, tile: u32, out: &mut Vec<u64>) -> TileSummary {
    assert_dims_match(a, b);
    assert!(tile > 0, "tile size must be positive");
    let (w, h) = (a.width() as usize, a.height() as usize);
    let t = tile as usize;
    let tiles_x = w.div_ceil(t);
    let tiles_y = h.div_ceil(t);
    out.clear();
    out.resize(tiles_x * tiles_y, 0);

    let (pa, pb) = (a.pixels(), b.pixels());
    for y in 0..h {
        let row_a = &pa[y * w..(y + 1) * w];
        let row_b = &pb[y * w..(y + 1) * w];
        let tile_row = &mut out[(y / t) * tiles_x..][..tiles_x];
        for (tx, acc) in tile_row.iter_mut().enumerate() {
            let x0 = tx * t;
            let x1 = (x0 + t).min(w);
            // u32 accumulation so the inner loop vectorises (a tile row
            // segment sums to at most 255 * tile, far below u32::MAX);
            // widening per element to u64 costs ~4x on VGA frames
            let s: u32 = row_a[x0..x1]
                .iter()
                .zip(&row_b[x0..x1])
                .map(|(x, y)| u32::from(x.abs_diff(*y)))
                .sum();
            *acc += u64::from(s);
        }
    }

    let mut max = 0u64;
    let mut total = 0u64;
    for &v in out.iter() {
        max = max.max(v);
        total += v;
    }
    TileSummary {
        tiles_x: tiles_x as u32,
        tiles_y: tiles_y as u32,
        max,
        total,
    }
}

/// Box-downsamples a frame into per-cell intensity *sums* over a
/// `factor`×`factor` grid (edge cells clipped), resizing `out` to the cell
/// count. Sums, not means: the SAD of two cell-sum grids ([`coarse_sad`])
/// is then a lower bound on the full-resolution SAD, which is exactly the
/// property the gate pre-pass needs.
///
/// Returns the grid dimensions `(cells_x, cells_y)`.
///
/// # Panics
/// Panics if `factor` is zero.
pub fn box_downsample_into(frame: &GrayImage, factor: u32, out: &mut Vec<u32>) -> (u32, u32) {
    assert!(factor > 0, "downsample factor must be positive");
    let (w, h) = (frame.width() as usize, frame.height() as usize);
    let f = factor as usize;
    let cells_x = w.div_ceil(f);
    let cells_y = h.div_ceil(f);
    out.clear();
    out.resize(cells_x * cells_y, 0);

    let p = frame.pixels();
    for y in 0..h {
        let row = &p[y * w..(y + 1) * w];
        let cell_row = &mut out[(y / f) * cells_x..][..cells_x];
        // chunks_exact keeps the grouping branch-free so the summing
        // vectorises; the ragged edge cell (if any) is folded in afterwards
        let mut chunks = row.chunks_exact(f);
        for (acc, c) in cell_row.iter_mut().zip(&mut chunks) {
            *acc += c.iter().map(|v| u32::from(*v)).sum::<u32>();
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            cell_row[cells_x - 1] += rem.iter().map(|v| u32::from(*v)).sum::<u32>();
        }
    }
    (cells_x as u32, cells_y as u32)
}

/// Sum of absolute differences between two cell-sum grids produced by
/// [`box_downsample_into`] at the same geometry: a **lower bound** on the
/// full-resolution [`frame_sad`] of the frames they summarise (per cell,
/// `|Σa − Σb| ≤ Σ|a − b|`).
///
/// # Panics
/// Panics if the grids differ in length.
pub fn coarse_sad(a: &[u32], b: &[u32]) -> u64 {
    assert_eq!(a.len(), b.len(), "coarse grids must share their geometry");
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from(x.abs_diff(*y)))
        .sum()
}

/// Number of differing pixels between two packed masks: XOR plus popcount,
/// 64 pixels per word pair. Because both masks obey the tail invariant
/// (padding bits zero), padding never contributes to the count. This is the
/// binary analogue of [`frame_sad`] for mask-level change detection.
///
/// # Panics
/// Panics if the masks differ in dimensions.
pub fn mask_diff_count(a: &BitMask, b: &BitMask) -> u64 {
    assert_mask_dims_match(a, b);
    a.words()
        .iter()
        .zip(b.words())
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

/// Per-tile differing-pixel counts between two packed masks over a
/// `tile`×`tile` grid (edge tiles clipped), the popcount analogue of
/// [`tile_sad_into`]: each XOR word is split at tile boundaries and each
/// segment's popcount lands in its tile. `out` is resized to the tile count
/// and filled row-major; totals equal [`mask_diff_count`] of the same pair.
///
/// # Panics
/// Panics if the masks differ in dimensions or `tile` is zero.
pub fn mask_tile_diff_into(a: &BitMask, b: &BitMask, tile: u32, out: &mut Vec<u64>) -> TileSummary {
    assert_mask_dims_match(a, b);
    assert!(tile > 0, "tile size must be positive");
    let (w, h) = (a.width() as usize, a.height() as usize);
    let t = tile as usize;
    let tiles_x = w.div_ceil(t);
    let tiles_y = h.div_ceil(t);
    out.clear();
    out.resize(tiles_x * tiles_y, 0);

    let wpr = a.words_per_row();
    for y in 0..h {
        let row_a = &a.words()[y * wpr..(y + 1) * wpr];
        let row_b = &b.words()[y * wpr..(y + 1) * wpr];
        let tile_row = &mut out[(y / t) * tiles_x..][..tiles_x];
        for (j, xor) in row_a.iter().zip(row_b).map(|(x, y)| x ^ y).enumerate() {
            if xor == 0 {
                continue;
            }
            // Split this word's 64 pixels at tile boundaries; each
            // segment's popcount goes to its own tile.
            let base = j * WORD_BITS;
            let word_end = (base + WORD_BITS).min(w);
            let mut seg_start = base;
            while seg_start < word_end {
                let tx = seg_start / t;
                let seg_end = ((tx + 1) * t).min(word_end);
                let lo = seg_start - base;
                let len = seg_end - seg_start;
                let segment = (xor >> lo) & (u64::MAX >> (WORD_BITS - len));
                tile_row[tx] += u64::from(segment.count_ones());
                seg_start = seg_end;
            }
        }
    }

    let mut max = 0u64;
    let mut total = 0u64;
    for &v in out.iter() {
        max = max.max(v);
        total += v;
    }
    TileSummary {
        tiles_x: tiles_x as u32,
        tiles_y: tiles_y as u32,
        max,
        total,
    }
}

fn assert_mask_dims_match(a: &BitMask, b: &BitMask) {
    assert!(
        a.width() == b.width() && a.height() == b.height(),
        "mask dimensions must match: {}x{} vs {}x{}",
        a.width(),
        a.height(),
        b.width(),
        b.height()
    );
}

fn assert_dims_match(a: &GrayImage, b: &GrayImage) {
    assert!(
        a.width() == b.width() && a.height() == b.height(),
        "frame dimensions must match: {}x{} vs {}x{}",
        a.width(),
        a.height(),
        b.width(),
        b.height()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: u32, h: u32, step: u32) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, ((x * step + y * 3) % 256) as u8);
            }
        }
        img
    }

    #[test]
    fn identical_frames_have_zero_sad_everywhere() {
        let a = ramp(37, 23, 7);
        assert_eq!(frame_sad(&a, &a), 0);
        let mut tiles = Vec::new();
        let s = tile_sad_into(&a, &a, 8, &mut tiles);
        assert_eq!(s.max, 0);
        assert_eq!(s.total, 0);
        assert!(tiles.iter().all(|&t| t == 0));
    }

    #[test]
    fn tile_totals_match_the_oracle_with_clipped_edges() {
        let a = ramp(37, 23, 7); // not a multiple of the tile size
        let b = ramp(37, 23, 11);
        let mut tiles = Vec::new();
        let s = tile_sad_into(&a, &b, 8, &mut tiles);
        assert_eq!(s.tiles_x, 5);
        assert_eq!(s.tiles_y, 3);
        assert_eq!(tiles.len(), s.tile_count());
        assert_eq!(s.total, frame_sad(&a, &b));
        assert_eq!(s.max, tiles.iter().copied().max().unwrap());
    }

    #[test]
    fn single_pixel_change_lands_in_one_tile() {
        let a = GrayImage::filled(32, 32, 100);
        let mut b = a.clone();
        b.set(20, 5, 110); // tile (1, 0) of a 16-pixel grid
        let mut tiles = Vec::new();
        let s = tile_sad_into(&a, &b, 16, &mut tiles);
        assert_eq!(s.max, 10);
        assert_eq!(s.total, 10);
        assert_eq!(tiles, vec![0, 10, 0, 0]);
    }

    #[test]
    fn coarse_sad_lower_bounds_frame_sad() {
        let a = ramp(40, 30, 5);
        let b = ramp(40, 30, 13);
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        let dims_a = box_downsample_into(&a, 8, &mut ca);
        let dims_b = box_downsample_into(&b, 8, &mut cb);
        assert_eq!(dims_a, (5, 4));
        assert_eq!(dims_a, dims_b);
        assert!(coarse_sad(&ca, &cb) <= frame_sad(&a, &b));
        assert_eq!(coarse_sad(&ca, &ca), 0);
    }

    #[test]
    fn downsample_cells_are_plain_sums() {
        let a = GrayImage::filled(4, 4, 10);
        let mut cells = Vec::new();
        let (cx, cy) = box_downsample_into(&a, 2, &mut cells);
        assert_eq!((cx, cy), (2, 2));
        assert_eq!(cells, vec![40, 40, 40, 40]);
    }

    #[test]
    fn buffers_are_reused_not_regrown() {
        let a = ramp(64, 48, 3);
        let b = ramp(64, 48, 9);
        let mut tiles = Vec::new();
        tile_sad_into(&a, &b, 16, &mut tiles);
        let cap = tiles.capacity();
        for _ in 0..3 {
            tile_sad_into(&a, &b, 16, &mut tiles);
            assert_eq!(tiles.capacity(), cap);
        }
    }

    fn speckled_mask(w: u32, h: u32, salt: u64) -> BitMask {
        let mut m = BitMask::new(w, h);
        let mut state = salt | 1;
        for y in 0..h {
            for x in 0..w {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m.set(x, y, (state >> 62) != 0);
            }
        }
        m
    }

    #[test]
    fn mask_diff_counts_differing_pixels() {
        // Widths straddling word boundaries; compare against a per-pixel count.
        for (w, h) in [(37u32, 23u32), (64, 8), (65, 5), (130, 11)] {
            let a = speckled_mask(w, h, 3);
            let b = speckled_mask(w, h, 17);
            let expected: u64 = (0..h)
                .map(|y| (0..w).filter(|&x| a.get(x, y) != b.get(x, y)).count() as u64)
                .sum();
            assert_eq!(mask_diff_count(&a, &b), expected, "{w}×{h}");
            assert_eq!(mask_diff_count(&a, &a), 0);
        }
    }

    #[test]
    fn mask_tile_diff_matches_per_pixel_tiles() {
        for (w, h, tile) in [(37u32, 23u32, 8u32), (130, 21, 16), (64, 8, 64), (65, 5, 7)] {
            let a = speckled_mask(w, h, 5);
            let b = speckled_mask(w, h, 23);
            let mut tiles = Vec::new();
            let s = mask_tile_diff_into(&a, &b, tile, &mut tiles);
            assert_eq!(s.total, mask_diff_count(&a, &b), "{w}×{h} t{tile}");
            assert_eq!(s.max, tiles.iter().copied().max().unwrap());
            // Per-pixel oracle for every tile.
            let (tx, ty) = (s.tiles_x, s.tiles_y);
            for cy in 0..ty {
                for cx in 0..tx {
                    let mut count = 0u64;
                    for y in cy * tile..((cy + 1) * tile).min(h) {
                        for x in cx * tile..((cx + 1) * tile).min(w) {
                            if a.get(x, y) != b.get(x, y) {
                                count += 1;
                            }
                        }
                    }
                    assert_eq!(
                        tiles[(cy * tx + cx) as usize],
                        count,
                        "tile ({cx},{cy}) of {w}×{h} t{tile}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mask dimensions must match")]
    fn mismatched_mask_dims_rejected() {
        mask_diff_count(&BitMask::new(4, 4), &BitMask::new(4, 5));
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_dims_rejected() {
        frame_sad(&GrayImage::new(4, 4), &GrayImage::new(4, 5));
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn zero_tile_rejected() {
        tile_sad_into(
            &GrayImage::new(4, 4),
            &GrayImage::new(4, 4),
            0,
            &mut Vec::new(),
        );
    }
}
