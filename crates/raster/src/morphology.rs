//! Binary morphology with a 3×3 square structuring element.

use crate::image::Bitmap;

fn neighbourhood_all(mask: &Bitmap, x: i64, y: i64) -> bool {
    for dy in -1..=1 {
        for dx in -1..=1 {
            if !mask.get_padded(x + dx, y + dy) {
                return false;
            }
        }
    }
    true
}

fn neighbourhood_any(mask: &Bitmap, x: i64, y: i64) -> bool {
    for dy in -1..=1 {
        for dx in -1..=1 {
            if mask.get_padded(x + dx, y + dy) {
                return true;
            }
        }
    }
    false
}

/// Erosion: a pixel survives only if its whole 3×3 neighbourhood is foreground.
///
/// Outside-image pixels count as background, so blobs touching the border erode
/// there too.
pub fn erode(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            out.set(x, y, neighbourhood_all(mask, x as i64, y as i64));
        }
    }
    out
}

/// Dilation: a pixel becomes foreground if any 3×3 neighbour is foreground.
pub fn dilate(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            out.set(x, y, neighbourhood_any(mask, x as i64, y as i64));
        }
    }
    out
}

/// Opening (erode then dilate): removes speckle smaller than the kernel.
pub fn open(mask: &Bitmap) -> Bitmap {
    dilate(&erode(mask))
}

/// Closing (dilate then erode): fills pinholes smaller than the kernel.
pub fn close(mask: &Bitmap) -> Bitmap {
    erode(&dilate(mask))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_rows(rows: &[&str]) -> Bitmap {
        let h = rows.len() as u32;
        let w = rows[0].len() as u32;
        let mut m = Bitmap::new(w, h);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                m.set(x as u32, y as u32, c == '#');
            }
        }
        m
    }

    #[test]
    fn erosion_shrinks() {
        let m = mask_from_rows(&["#####", "#####", "#####", "#####", "#####"]);
        let e = erode(&m);
        assert_eq!(e.count_foreground(), 9, "5×5 erodes to 3×3");
        assert_eq!(e.get(2, 2), Some(true));
        assert_eq!(e.get(0, 0), Some(false));
    }

    #[test]
    fn dilation_grows() {
        let m = mask_from_rows(&[".....", ".....", "..#..", ".....", "....."]);
        let d = dilate(&m);
        assert_eq!(d.count_foreground(), 9);
    }

    #[test]
    fn open_removes_speckle() {
        let m = mask_from_rows(&["#....", ".....", "..###", "..###", "..###"]);
        let o = open(&m);
        assert_eq!(o.get(0, 0), Some(false), "lone pixel removed");
        assert_eq!(o.get(3, 3), Some(true), "blob core kept");
    }

    #[test]
    fn close_fills_pinhole() {
        let m = mask_from_rows(&["#####", "#####", "##.##", "#####", "#####"]);
        let c = close(&m);
        assert_eq!(c.get(2, 2), Some(true), "pinhole filled");
    }

    #[test]
    fn erode_dilate_are_monotone() {
        let m = mask_from_rows(&[".....", ".###.", ".###.", ".###.", "....."]);
        let e = erode(&m);
        let d = dilate(&m);
        for (x, y, v) in e.iter() {
            if v {
                assert_eq!(m.get(x, y), Some(true), "erosion is a subset");
            }
        }
        for (x, y, v) in m.iter() {
            if v {
                assert_eq!(d.get(x, y), Some(true), "dilation is a superset");
            }
        }
    }
}
