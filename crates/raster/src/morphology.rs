//! Binary morphology with a 3×3 square structuring element.

use crate::image::Bitmap;

fn neighbourhood_all(mask: &Bitmap, x: i64, y: i64) -> bool {
    for dy in -1..=1 {
        for dx in -1..=1 {
            if !mask.get_padded(x + dx, y + dy) {
                return false;
            }
        }
    }
    true
}

fn neighbourhood_any(mask: &Bitmap, x: i64, y: i64) -> bool {
    for dy in -1..=1 {
        for dx in -1..=1 {
            if mask.get_padded(x + dx, y + dy) {
                return true;
            }
        }
    }
    false
}

/// Erosion: a pixel survives only if its whole 3×3 neighbourhood is foreground.
///
/// Outside-image pixels count as background, so blobs touching the border erode
/// there too.
pub fn erode(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    erode_into(mask, &mut out);
    out
}

/// [`erode`] into a caller-provided mask (re-dimensioned to match, every
/// pixel overwritten); the allocation-free form used by the steady-state
/// frame loop. The inner loop works on three row slices at a time instead of
/// bounds-checked per-neighbour reads.
pub fn erode_into(mask: &Bitmap, out: &mut Bitmap) {
    let w = mask.width() as usize;
    let h = mask.height() as usize;
    out.reset_dimensions(mask.width(), mask.height());
    let src = mask.pixels();
    let dst = out.pixels_mut();
    // Border pixels always erode away (outside counts as background).
    if w <= 2 || h <= 2 {
        dst.fill(false);
        return;
    }
    dst[..w].fill(false);
    dst[(h - 1) * w..].fill(false);
    for y in 1..h - 1 {
        let up = &src[(y - 1) * w..y * w];
        let mid = &src[y * w..(y + 1) * w];
        let down = &src[(y + 1) * w..(y + 2) * w];
        let row = &mut dst[y * w..(y + 1) * w];
        row[0] = false;
        row[w - 1] = false;
        for x in 1..w - 1 {
            row[x] = up[x - 1]
                && up[x]
                && up[x + 1]
                && mid[x - 1]
                && mid[x]
                && mid[x + 1]
                && down[x - 1]
                && down[x]
                && down[x + 1];
        }
    }
}

/// Dilation: a pixel becomes foreground if any 3×3 neighbour is foreground.
pub fn dilate(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    dilate_into(mask, &mut out);
    out
}

/// [`dilate`] into a caller-provided mask (re-dimensioned to match, every
/// pixel overwritten); the allocation-free form used by the steady-state
/// frame loop.
pub fn dilate_into(mask: &Bitmap, out: &mut Bitmap) {
    let w = mask.width() as usize;
    let h = mask.height() as usize;
    out.reset_dimensions(mask.width(), mask.height());
    let src = mask.pixels();
    let dst = out.pixels_mut();
    for y in 0..h {
        let y_lo = y.saturating_sub(1);
        let y_hi = (y + 2).min(h);
        let row = &mut dst[y * w..(y + 1) * w];
        for (x, slot) in row.iter_mut().enumerate() {
            let x_lo = x.saturating_sub(1);
            let x_hi = (x + 2).min(w);
            let mut any = false;
            for ny in y_lo..y_hi {
                let window = &src[ny * w + x_lo..ny * w + x_hi];
                if window.iter().any(|p| *p) {
                    any = true;
                    break;
                }
            }
            *slot = any;
        }
    }
}

/// Opening (erode then dilate): removes speckle smaller than the kernel.
pub fn open(mask: &Bitmap) -> Bitmap {
    dilate(&erode(mask))
}

/// [`open`] through caller-provided intermediate and output masks; the
/// allocation-free form used by the steady-state frame loop.
pub fn open_into(mask: &Bitmap, eroded: &mut Bitmap, out: &mut Bitmap) {
    erode_into(mask, eroded);
    dilate_into(eroded, out);
}

/// Closing (dilate then erode): fills pinholes smaller than the kernel.
pub fn close(mask: &Bitmap) -> Bitmap {
    erode(&dilate(mask))
}

/// Reference erosion through the bounds-checked padded accessor — the
/// pre-optimisation implementation, kept as the test oracle and the honest
/// "before" baseline for the committed benchmark.
pub fn erode_reference(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            out.set(x, y, neighbourhood_all(mask, x as i64, y as i64));
        }
    }
    out
}

/// Reference dilation through the bounds-checked padded accessor (see
/// [`erode_reference`]).
pub fn dilate_reference(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            out.set(x, y, neighbourhood_any(mask, x as i64, y as i64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_rows(rows: &[&str]) -> Bitmap {
        let h = rows.len() as u32;
        let w = rows[0].len() as u32;
        let mut m = Bitmap::new(w, h);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                m.set(x as u32, y as u32, c == '#');
            }
        }
        m
    }

    #[test]
    fn erosion_shrinks() {
        let m = mask_from_rows(&["#####", "#####", "#####", "#####", "#####"]);
        let e = erode(&m);
        assert_eq!(e.count_foreground(), 9, "5×5 erodes to 3×3");
        assert_eq!(e.get(2, 2), Some(true));
        assert_eq!(e.get(0, 0), Some(false));
    }

    #[test]
    fn dilation_grows() {
        let m = mask_from_rows(&[".....", ".....", "..#..", ".....", "....."]);
        let d = dilate(&m);
        assert_eq!(d.count_foreground(), 9);
    }

    #[test]
    fn open_removes_speckle() {
        let m = mask_from_rows(&["#....", ".....", "..###", "..###", "..###"]);
        let o = open(&m);
        assert_eq!(o.get(0, 0), Some(false), "lone pixel removed");
        assert_eq!(o.get(3, 3), Some(true), "blob core kept");
    }

    #[test]
    fn close_fills_pinhole() {
        let m = mask_from_rows(&["#####", "#####", "##.##", "#####", "#####"]);
        let c = close(&m);
        assert_eq!(c.get(2, 2), Some(true), "pinhole filled");
    }

    #[test]
    fn row_slice_morphology_matches_reference() {
        // Deterministic speckle over several sizes, including degenerate 1-2
        // pixel dimensions where every pixel is a border pixel.
        for (w, h) in [(1u32, 1u32), (2, 5), (3, 3), (17, 11), (40, 23)] {
            let mut m = Bitmap::new(w, h);
            let mut state = 0x9e3779b97f4a7c15u64 ^ u64::from(w * 131 + h);
            for y in 0..h {
                for x in 0..w {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    m.set(x, y, (state >> 62) != 0);
                }
            }
            assert_eq!(erode(&m), erode_reference(&m), "erode {w}×{h}");
            assert_eq!(dilate(&m), dilate_reference(&m), "dilate {w}×{h}");
            let mut tmp = Bitmap::new(1, 1);
            let mut out = Bitmap::new(1, 1);
            open_into(&m, &mut tmp, &mut out);
            assert_eq!(out, open(&m), "open {w}×{h}");
        }
    }

    #[test]
    fn erode_dilate_are_monotone() {
        let m = mask_from_rows(&[".....", ".###.", ".###.", ".###.", "....."]);
        let e = erode(&m);
        let d = dilate(&m);
        for (x, y, v) in e.iter() {
            if v {
                assert_eq!(m.get(x, y), Some(true), "erosion is a subset");
            }
        }
        for (x, y, v) in m.iter() {
            if v {
                assert_eq!(d.get(x, y), Some(true), "dilation is a superset");
            }
        }
    }
}
