//! Binary morphology with a 3×3 square structuring element.
//!
//! Two families share one contract: the byte-per-pixel kernels on
//! [`Bitmap`] (the original implementation, retained as the oracle) and
//! the word-parallel kernels on [`BitMask`] (`*_packed*`), which exploit
//! that a 3×3 box erosion/dilation is separable into a vertical 1×3 pass
//! (plain word AND/OR of three rows) and a horizontal 3×1 pass (shift by
//! one bit with the neighbouring word supplying the carried-over edge
//! bit). 64 pixels move per instruction instead of one.

use crate::bitmask::BitMask;
use crate::image::Bitmap;

fn neighbourhood_all(mask: &Bitmap, x: i64, y: i64) -> bool {
    for dy in -1..=1 {
        for dx in -1..=1 {
            if !mask.get_padded(x + dx, y + dy) {
                return false;
            }
        }
    }
    true
}

fn neighbourhood_any(mask: &Bitmap, x: i64, y: i64) -> bool {
    for dy in -1..=1 {
        for dx in -1..=1 {
            if mask.get_padded(x + dx, y + dy) {
                return true;
            }
        }
    }
    false
}

/// Erosion: a pixel survives only if its whole 3×3 neighbourhood is foreground.
///
/// Outside-image pixels count as background, so blobs touching the border erode
/// there too.
pub fn erode(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    erode_into(mask, &mut out);
    out
}

/// [`erode`] into a caller-provided mask (re-dimensioned to match, every
/// pixel overwritten); the allocation-free form used by the steady-state
/// frame loop. The inner loop works on three row slices at a time instead of
/// bounds-checked per-neighbour reads.
pub fn erode_into(mask: &Bitmap, out: &mut Bitmap) {
    let w = mask.width() as usize;
    let h = mask.height() as usize;
    out.reset_dimensions(mask.width(), mask.height());
    let src = mask.pixels();
    let dst = out.pixels_mut();
    // Border pixels always erode away (outside counts as background).
    if w <= 2 || h <= 2 {
        dst.fill(false);
        return;
    }
    dst[..w].fill(false);
    dst[(h - 1) * w..].fill(false);
    for y in 1..h - 1 {
        let up = &src[(y - 1) * w..y * w];
        let mid = &src[y * w..(y + 1) * w];
        let down = &src[(y + 1) * w..(y + 2) * w];
        let row = &mut dst[y * w..(y + 1) * w];
        row[0] = false;
        row[w - 1] = false;
        for x in 1..w - 1 {
            row[x] = up[x - 1]
                && up[x]
                && up[x + 1]
                && mid[x - 1]
                && mid[x]
                && mid[x + 1]
                && down[x - 1]
                && down[x]
                && down[x + 1];
        }
    }
}

/// Dilation: a pixel becomes foreground if any 3×3 neighbour is foreground.
pub fn dilate(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    dilate_into(mask, &mut out);
    out
}

/// [`dilate`] into a caller-provided mask (re-dimensioned to match, every
/// pixel overwritten); the allocation-free form used by the steady-state
/// frame loop.
pub fn dilate_into(mask: &Bitmap, out: &mut Bitmap) {
    let w = mask.width() as usize;
    let h = mask.height() as usize;
    out.reset_dimensions(mask.width(), mask.height());
    let src = mask.pixels();
    let dst = out.pixels_mut();
    for y in 0..h {
        let y_lo = y.saturating_sub(1);
        let y_hi = (y + 2).min(h);
        let row = &mut dst[y * w..(y + 1) * w];
        for (x, slot) in row.iter_mut().enumerate() {
            let x_lo = x.saturating_sub(1);
            let x_hi = (x + 2).min(w);
            let mut any = false;
            for ny in y_lo..y_hi {
                let window = &src[ny * w + x_lo..ny * w + x_hi];
                if window.iter().any(|p| *p) {
                    any = true;
                    break;
                }
            }
            *slot = any;
        }
    }
}

/// Opening (erode then dilate): removes speckle smaller than the kernel.
pub fn open(mask: &Bitmap) -> Bitmap {
    dilate(&erode(mask))
}

/// [`open`] through caller-provided intermediate and output masks; the
/// allocation-free form used by the steady-state frame loop.
pub fn open_into(mask: &Bitmap, eroded: &mut Bitmap, out: &mut Bitmap) {
    erode_into(mask, eroded);
    dilate_into(eroded, out);
}

/// Closing (dilate then erode): fills pinholes smaller than the kernel.
pub fn close(mask: &Bitmap) -> Bitmap {
    let mut dilated = Bitmap::new(mask.width(), mask.height());
    let mut out = Bitmap::new(mask.width(), mask.height());
    close_into(mask, &mut dilated, &mut out);
    out
}

/// [`close`] through caller-provided intermediate and output masks; the
/// allocation-free form (mirrors [`open_into`], so the convenience wrapper
/// and the steady-state form cannot drift).
pub fn close_into(mask: &Bitmap, dilated: &mut Bitmap, out: &mut Bitmap) {
    dilate_into(mask, dilated);
    erode_into(dilated, out);
}

/// [`erode`] on a bit-packed mask: vertical 1×3 AND of the three
/// neighbouring rows into `out`, then a horizontal 3×1 AND in place, with
/// word shifts carrying the edge bit across word boundaries. Outside-image
/// pixels count as background (zeros shift in at every edge), exactly like
/// the byte kernel.
pub fn erode_packed_into(mask: &BitMask, out: &mut BitMask) {
    vertical_pass(mask, out, false);
    let wpr = out.words_per_row();
    for row in out.words_mut().chunks_exact_mut(wpr) {
        horizontal_erode_row(row);
    }
}

/// [`erode_packed_into`] into a fresh mask.
pub fn erode_packed(mask: &BitMask) -> BitMask {
    let mut out = BitMask::new(mask.width(), mask.height());
    erode_packed_into(mask, &mut out);
    out
}

/// [`dilate`] on a bit-packed mask (shift-OR form of
/// [`erode_packed_into`]); the horizontal pass re-clears each row's tail
/// bits so the [`BitMask`] tail invariant survives the left-shift.
pub fn dilate_packed_into(mask: &BitMask, out: &mut BitMask) {
    vertical_pass(mask, out, true);
    let wpr = out.words_per_row();
    let tail = out.tail_mask();
    for row in out.words_mut().chunks_exact_mut(wpr) {
        horizontal_dilate_row(row);
        row[wpr - 1] &= tail;
    }
}

/// [`dilate_packed_into`] into a fresh mask.
pub fn dilate_packed(mask: &BitMask) -> BitMask {
    let mut out = BitMask::new(mask.width(), mask.height());
    dilate_packed_into(mask, &mut out);
    out
}

/// [`open`] on a bit-packed mask through caller-provided buffers.
pub fn open_packed_into(mask: &BitMask, eroded: &mut BitMask, out: &mut BitMask) {
    erode_packed_into(mask, eroded);
    dilate_packed_into(eroded, out);
}

/// [`close`] on a bit-packed mask through caller-provided buffers.
pub fn close_packed_into(mask: &BitMask, dilated: &mut BitMask, out: &mut BitMask) {
    dilate_packed_into(mask, dilated);
    erode_packed_into(dilated, out);
}

/// The vertical 1×3 pass: each output word combines the word above, the
/// word itself and the word below (`union = true` ORs for dilation,
/// `false` ANDs for erosion). Rows outside the image contribute zero
/// words, which is exactly the background padding convention.
fn vertical_pass(mask: &BitMask, out: &mut BitMask, union: bool) {
    out.reset_dimensions(mask.width(), mask.height());
    let wpr = mask.words_per_row();
    let h = mask.height() as usize;
    let src = mask.words();
    let dst = out.words_mut();
    for y in 0..h {
        let mid = &src[y * wpr..(y + 1) * wpr];
        let row = &mut dst[y * wpr..(y + 1) * wpr];
        for (j, slot) in row.iter_mut().enumerate() {
            let up = if y > 0 { src[(y - 1) * wpr + j] } else { 0 };
            let down = if y + 1 < h { src[(y + 1) * wpr + j] } else { 0 };
            *slot = if union {
                up | mid[j] | down
            } else {
                up & mid[j] & down
            };
        }
    }
}

/// In-place horizontal 3×1 erosion of one row of words: a bit survives only
/// if both horizontal neighbours are set, with the adjacent word supplying
/// the bit that crosses the 64-pixel boundary and zeros shifting in at the
/// row ends (outside = background).
fn horizontal_erode_row(row: &mut [u64]) {
    let mut prev = 0u64;
    for j in 0..row.len() {
        let cur = row[j];
        let next = if j + 1 < row.len() { row[j + 1] } else { 0 };
        let left = (cur << 1) | (prev >> 63);
        let right = (cur >> 1) | (next << 63);
        row[j] = left & cur & right;
        prev = cur;
    }
}

/// In-place horizontal 3×1 dilation of one row of words (shift-OR form of
/// [`horizontal_erode_row`]). May set tail bits past the image width; the
/// caller re-masks them.
fn horizontal_dilate_row(row: &mut [u64]) {
    let mut prev = 0u64;
    for j in 0..row.len() {
        let cur = row[j];
        let next = if j + 1 < row.len() { row[j + 1] } else { 0 };
        let left = (cur << 1) | (prev >> 63);
        let right = (cur >> 1) | (next << 63);
        row[j] = left | cur | right;
        prev = cur;
    }
}

/// Reference erosion through the bounds-checked padded accessor — the
/// pre-optimisation implementation, kept as the test oracle and the honest
/// "before" baseline for the committed benchmark.
pub fn erode_reference(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            out.set(x, y, neighbourhood_all(mask, x as i64, y as i64));
        }
    }
    out
}

/// Reference dilation through the bounds-checked padded accessor (see
/// [`erode_reference`]).
pub fn dilate_reference(mask: &Bitmap) -> Bitmap {
    let mut out = Bitmap::new(mask.width(), mask.height());
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            out.set(x, y, neighbourhood_any(mask, x as i64, y as i64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_rows(rows: &[&str]) -> Bitmap {
        let h = rows.len() as u32;
        let w = rows[0].len() as u32;
        let mut m = Bitmap::new(w, h);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                m.set(x as u32, y as u32, c == '#');
            }
        }
        m
    }

    #[test]
    fn erosion_shrinks() {
        let m = mask_from_rows(&["#####", "#####", "#####", "#####", "#####"]);
        let e = erode(&m);
        assert_eq!(e.count_foreground(), 9, "5×5 erodes to 3×3");
        assert_eq!(e.get(2, 2), Some(true));
        assert_eq!(e.get(0, 0), Some(false));
    }

    #[test]
    fn dilation_grows() {
        let m = mask_from_rows(&[".....", ".....", "..#..", ".....", "....."]);
        let d = dilate(&m);
        assert_eq!(d.count_foreground(), 9);
    }

    #[test]
    fn open_removes_speckle() {
        let m = mask_from_rows(&["#....", ".....", "..###", "..###", "..###"]);
        let o = open(&m);
        assert_eq!(o.get(0, 0), Some(false), "lone pixel removed");
        assert_eq!(o.get(3, 3), Some(true), "blob core kept");
    }

    #[test]
    fn close_fills_pinhole() {
        let m = mask_from_rows(&["#####", "#####", "##.##", "#####", "#####"]);
        let c = close(&m);
        assert_eq!(c.get(2, 2), Some(true), "pinhole filled");
    }

    #[test]
    fn row_slice_morphology_matches_reference() {
        // Deterministic speckle over several sizes, including degenerate 1-2
        // pixel dimensions where every pixel is a border pixel.
        for (w, h) in [(1u32, 1u32), (2, 5), (3, 3), (17, 11), (40, 23)] {
            let mut m = Bitmap::new(w, h);
            let mut state = 0x9e3779b97f4a7c15u64 ^ u64::from(w * 131 + h);
            for y in 0..h {
                for x in 0..w {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    m.set(x, y, (state >> 62) != 0);
                }
            }
            assert_eq!(erode(&m), erode_reference(&m), "erode {w}×{h}");
            assert_eq!(dilate(&m), dilate_reference(&m), "dilate {w}×{h}");
            let mut tmp = Bitmap::new(1, 1);
            let mut out = Bitmap::new(1, 1);
            open_into(&m, &mut tmp, &mut out);
            assert_eq!(out, open(&m), "open {w}×{h}");
        }
    }

    #[test]
    fn packed_morphology_matches_byte_kernels() {
        // Sizes straddling the 64-bit word boundary plus the degenerate
        // 1-2 pixel dimensions where every pixel is a border pixel.
        for (w, h) in [
            (1u32, 1u32),
            (2, 5),
            (63, 3),
            (64, 4),
            (65, 5),
            (130, 7),
            (40, 23),
        ] {
            let mut m = Bitmap::new(w, h);
            let mut state = 0xa076_1d64_78bd_642fu64 ^ u64::from(w * 131 + h);
            for y in 0..h {
                for x in 0..w {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    m.set(x, y, (state >> 62) != 0);
                }
            }
            let packed = BitMask::from_bitmap(&m);
            assert_eq!(
                erode_packed(&packed).to_bitmap(),
                erode(&m),
                "erode {w}×{h}"
            );
            assert_eq!(
                dilate_packed(&packed).to_bitmap(),
                dilate(&m),
                "dilate {w}×{h}"
            );
            let mut tmp = BitMask::new(1, 1);
            let mut out = BitMask::new(1, 1);
            open_packed_into(&packed, &mut tmp, &mut out);
            assert_eq!(out.to_bitmap(), open(&m), "open {w}×{h}");
            close_packed_into(&packed, &mut tmp, &mut out);
            assert_eq!(out.to_bitmap(), close(&m), "close {w}×{h}");
            assert_eq!(
                out.tail_mask() | out.row(0).last().copied().unwrap_or(0),
                out.tail_mask(),
                "tail invariant after close {w}×{h}"
            );
        }
    }

    #[test]
    fn erode_dilate_are_monotone() {
        let m = mask_from_rows(&[".....", ".###.", ".###.", ".###.", "....."]);
        let e = erode(&m);
        let d = dilate(&m);
        for (x, y, v) in e.iter() {
            if v {
                assert_eq!(m.get(x, y), Some(true), "erosion is a subset");
            }
        }
        for (x, y, v) in m.iter() {
            if v {
                assert_eq!(d.get(x, y), Some(true), "dilation is a superset");
            }
        }
    }
}
