//! Image serialisation: binary PGM (P5) output and ASCII-art debugging dumps.

use crate::image::{Bitmap, GrayImage};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// Encodes a grayscale image as binary PGM (P5).
pub fn encode_pgm(img: &GrayImage) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", img.width(), img.height()).into_bytes();
    out.extend_from_slice(img.pixels());
    out
}

/// Writes a grayscale image to a PGM file.
///
/// # Errors
/// Returns any underlying I/O error from creating or writing the file.
pub fn write_pgm<P: AsRef<Path>>(img: &GrayImage, path: P) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_pgm(img))
}

/// Decodes a binary PGM (P5) image previously produced by [`encode_pgm`].
///
/// # Errors
/// Returns `InvalidData` for malformed headers, unsupported max values or
/// truncated pixel data.
pub fn decode_pgm(bytes: &[u8]) -> io::Result<GrayImage> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    // Tokenise the header directly from bytes: four whitespace-delimited
    // tokens (magic, width, height, maxval), then exactly one whitespace
    // byte, then raw pixel data.
    let mut tokens: Vec<String> = Vec::with_capacity(4);
    let mut pos = 0usize;
    let mut token = String::new();
    for (i, b) in bytes.iter().enumerate() {
        if b.is_ascii_whitespace() {
            if !token.is_empty() {
                tokens.push(std::mem::take(&mut token));
                if tokens.len() == 4 {
                    pos = i + 1;
                    break;
                }
            }
        } else if b.is_ascii_graphic() {
            token.push(*b as char);
        } else if tokens.len() < 4 {
            return Err(err("binary byte inside header"));
        }
    }
    if tokens.len() < 4 {
        return Err(err("truncated header"));
    }
    if tokens[0] != "P5" {
        return Err(err("not a binary PGM"));
    }
    let w: u32 = tokens[1].parse().map_err(|_| err("bad width"))?;
    let h: u32 = tokens[2].parse().map_err(|_| err("bad height"))?;
    let maxval: u32 = tokens[3].parse().map_err(|_| err("bad maxval"))?;
    if maxval != 255 {
        return Err(err("only maxval 255 supported"));
    }
    let need = (w as usize) * (h as usize);
    let data = bytes
        .get(pos..pos + need)
        .ok_or_else(|| err("truncated pixel data"))?;
    let mut img = GrayImage::new(w, h);
    img.pixels_mut().copy_from_slice(data);
    Ok(img)
}

/// Renders a binary mask as ASCII art (`#` foreground, `.` background), one
/// row per line. Intended for debugging and documentation snapshots.
pub fn ascii_art(mask: &Bitmap) -> String {
    let mut s = String::with_capacity((mask.width() as usize + 1) * mask.height() as usize);
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            let _ = write!(
                s,
                "{}",
                if mask.get(x, y) == Some(true) {
                    '#'
                } else {
                    '.'
                }
            );
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn pgm_roundtrip() {
        let mut img = GrayImage::new(3, 2);
        img.set(0, 0, 10);
        img.set(2, 1, 250);
        let bytes = encode_pgm(&img);
        let back = decode_pgm(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_rejects_garbage() {
        assert!(decode_pgm(b"P6\n1 1\n255\nx").is_err());
        assert!(decode_pgm(b"P5\n2 2\n255\nab").is_err()); // truncated
        assert!(decode_pgm(b"").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let img: GrayImage = Image::filled(4, 4, 42);
        let dir = std::env::temp_dir().join("hdc_raster_io_test.pgm");
        write_pgm(&img, &dir).unwrap();
        let bytes = std::fs::read(&dir).unwrap();
        assert_eq!(decode_pgm(&bytes).unwrap(), img);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn ascii_art_renders() {
        let mut m = Bitmap::new(3, 2);
        m.set(1, 0, true);
        assert_eq!(ascii_art(&m), ".#.\n...\n");
    }
}
