//! Property-based tests for the raster substrate.

use hdc_geometry::Vec2;
use hdc_raster::contour::{
    contour_perimeter, trace_outer_contour, trace_outer_contour_into,
    trace_outer_contour_packed_into,
};
use hdc_raster::diff;
use hdc_raster::io::{decode_pgm, encode_pgm};
use hdc_raster::morphology::{
    close, close_packed_into, dilate, dilate_packed, dilate_reference, erode, erode_packed,
    erode_reference, open, open_packed_into,
};
use hdc_raster::threshold::{binarize, binarize_packed, otsu_threshold};
use hdc_raster::{
    draw, label_components, label_components_bfs, label_components_packed, largest_component,
    largest_component_packed_with, largest_component_with, BitMask, Bitmap, Connectivity,
    GrayImage, LabelScratch,
};
use proptest::prelude::*;

fn small_gray() -> impl Strategy<Value = GrayImage> {
    (2u32..24, 2u32..24).prop_flat_map(|(w, h)| {
        prop::collection::vec(any::<u8>(), (w * h) as usize).prop_map(move |data| {
            let mut img = GrayImage::new(w, h);
            img.pixels_mut().copy_from_slice(&data);
            img
        })
    })
}

fn small_mask() -> impl Strategy<Value = Bitmap> {
    small_gray().prop_map(|g| g.map(|p| p > 128))
}

proptest! {
    #[test]
    fn pgm_roundtrip_any_image(img in small_gray()) {
        let back = decode_pgm(&encode_pgm(&img)).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn binarize_counts_consistent(img in small_gray(), t in any::<u8>()) {
        let b = binarize(&img, t);
        let count = img.pixels().iter().filter(|p| **p > t).count();
        prop_assert_eq!(b.count_foreground(), count);
    }

    #[test]
    fn otsu_in_range(img in small_gray()) {
        let _t = otsu_threshold(&img); // must not panic for any image
    }

    #[test]
    fn erosion_subset_dilation_superset(m in small_mask()) {
        let e = erode(&m);
        let d = dilate(&m);
        for (x, y, v) in e.iter() {
            if v { prop_assert_eq!(m.get(x, y), Some(true)); }
        }
        for (x, y, v) in m.iter() {
            if v { prop_assert_eq!(d.get(x, y), Some(true)); }
        }
    }

    #[test]
    fn open_close_idempotent_on_result(m in small_mask()) {
        let o = open(&m);
        prop_assert_eq!(open(&o).count_foreground(), o.count_foreground());
        let c = close(&m);
        prop_assert_eq!(close(&c).count_foreground(), c.count_foreground());
    }

    #[test]
    fn component_areas_sum_to_foreground(m in small_mask()) {
        let (_, comps) = label_components(&m, Connectivity::Eight);
        let sum: usize = comps.iter().map(|c| c.area).sum();
        prop_assert_eq!(sum, m.count_foreground());
    }

    #[test]
    fn largest_component_is_max(m in small_mask()) {
        if let Some((mask, comp)) = largest_component(&m, Connectivity::Four) {
            let (_, comps) = label_components(&m, Connectivity::Four);
            let max_area = comps.iter().map(|c| c.area).max().unwrap();
            prop_assert_eq!(comp.area, max_area);
            prop_assert_eq!(mask.count_foreground(), comp.area);
        } else {
            prop_assert_eq!(m.count_foreground(), 0);
        }
    }

    #[test]
    fn run_labelling_matches_bfs_oracle(m in small_mask(), eight in any::<bool>()) {
        // The run-based union-find labeller must agree with the retained BFS
        // oracle on everything: the label image exactly, and every
        // component's label, area, bbox and centroid.
        let conn = if eight { Connectivity::Eight } else { Connectivity::Four };
        let (labels, comps) = label_components(&m, conn);
        let (labels_bfs, comps_bfs) = label_components_bfs(&m, conn);
        prop_assert_eq!(labels, labels_bfs);
        prop_assert_eq!(comps.len(), comps_bfs.len());
        for (c, r) in comps.iter().zip(&comps_bfs) {
            prop_assert_eq!(c.label, r.label);
            prop_assert_eq!(c.area, r.area);
            prop_assert_eq!(c.bbox, r.bbox);
            prop_assert!((c.centroid - r.centroid).norm() < 1e-9,
                "centroid {} vs {}", c.centroid, r.centroid);
        }
    }

    #[test]
    fn largest_blob_matches_bfs_oracle(m in small_mask()) {
        // The pipeline's blob-isolation step against the BFS reference:
        // same largest blob (area, bbox, centroid) and same isolated mask.
        match largest_component(&m, Connectivity::Eight) {
            Some((mask, comp)) => {
                let (labels, comps) = label_components_bfs(&m, Connectivity::Eight);
                let best = comps.iter().max_by_key(|c| c.area).unwrap();
                prop_assert_eq!(comp.area, best.area);
                prop_assert_eq!(comp.bbox, best.bbox);
                prop_assert!((comp.centroid - best.centroid).norm() < 1e-9);
                for (x, y, v) in mask.iter() {
                    prop_assert_eq!(v, labels.get(x, y) == Some(best.label));
                }
            }
            None => prop_assert_eq!(m.count_foreground(), 0),
        }
    }

    #[test]
    fn row_slice_morphology_matches_padded_reference(m in small_mask()) {
        prop_assert_eq!(erode(&m), erode_reference(&m));
        prop_assert_eq!(dilate(&m), dilate_reference(&m));
    }

    #[test]
    fn contour_points_are_foreground_and_adjacent(m in small_mask()) {
        if let Some(c) = trace_outer_contour(&m) {
            for p in &c {
                prop_assert_eq!(m.get(p.x, p.y), Some(true));
            }
            for i in 0..c.len().saturating_sub(1) {
                let dx = (c[i].x as i64 - c[i + 1].x as i64).abs();
                let dy = (c[i].y as i64 - c[i + 1].y as i64).abs();
                prop_assert!(dx <= 1 && dy <= 1);
            }
        }
    }

    #[test]
    fn disk_contour_perimeter_scales(r in 5.0f64..25.0) {
        let size = (2.0 * r + 8.0) as u32;
        let mut img = GrayImage::new(size, size);
        draw::fill_disk(&mut img, Vec2::new(size as f64 / 2.0, size as f64 / 2.0), r, 255);
        let mask = binarize(&img, 128);
        let contour = trace_outer_contour(&mask).unwrap();
        let per = contour_perimeter(&contour);
        let circ = std::f64::consts::TAU * r;
        prop_assert!((per - circ).abs() / circ < 0.2, "perimeter {} vs {}", per, circ);
    }
}

/// Dimensions for the packed-kernel equivalence properties: widths biased
/// to straddle the 64-pixel word boundary, plus 1-px-tall and 1-px-wide
/// degenerate shapes.
fn packed_dims() -> impl Strategy<Value = (u32, u32)> {
    prop_oneof![
        (60u32..70, 1u32..8),    // around one word
        (120u32..134, 1u32..6),  // around two words
        (1u32..24, 1u32..24),    // small, incl. 1-px-wide
        (30u32..80, Just(1u32)), // 1-px-tall
    ]
}

fn wide_gray() -> impl Strategy<Value = GrayImage> {
    packed_dims().prop_flat_map(|(w, h)| {
        prop::collection::vec(any::<u8>(), (w * h) as usize).prop_map(move |data| {
            let mut img = GrayImage::new(w, h);
            img.pixels_mut().copy_from_slice(&data);
            img
        })
    })
}

fn wide_mask() -> impl Strategy<Value = Bitmap> {
    wide_gray().prop_map(|g| g.map(|p| p > 128))
}

fn wide_mask_pair() -> impl Strategy<Value = (Bitmap, Bitmap)> {
    packed_dims().prop_flat_map(|(w, h)| {
        let n = (w * h) as usize;
        (
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(da, db)| {
                let mut a = Bitmap::new(w, h);
                a.pixels_mut().copy_from_slice(&da);
                let mut b = Bitmap::new(w, h);
                b.pixels_mut().copy_from_slice(&db);
                (a, b)
            })
    })
}

proptest! {
    #[test]
    fn packed_binarize_matches_byte_oracle(img in wide_gray(), t in any::<u8>()) {
        // Thresholds 0, 127, 128, 255 are the SWAR sign-split corner cases;
        // any::<u8>() covers them plus everything between over the run.
        let packed = binarize_packed(&img, t);
        prop_assert_eq!(packed.to_bitmap(), binarize(&img, t));
        // Tail invariant: popcount equals the per-pixel foreground count.
        prop_assert_eq!(packed.count_ones(), binarize(&img, t).count_foreground());
    }

    #[test]
    fn packed_pack_unpack_roundtrip(m in wide_mask()) {
        let packed = BitMask::from_bitmap(&m);
        prop_assert_eq!(packed.to_bitmap(), m);
    }

    #[test]
    fn packed_morphology_matches_byte_oracle(m in wide_mask()) {
        let packed = BitMask::from_bitmap(&m);
        prop_assert_eq!(erode_packed(&packed).to_bitmap(), erode(&m));
        prop_assert_eq!(dilate_packed(&packed).to_bitmap(), dilate(&m));
        let mut tmp = BitMask::new(1, 1);
        let mut out = BitMask::new(1, 1);
        open_packed_into(&packed, &mut tmp, &mut out);
        prop_assert_eq!(out.to_bitmap(), open(&m));
        close_packed_into(&packed, &mut tmp, &mut out);
        prop_assert_eq!(out.to_bitmap(), close(&m));
    }

    #[test]
    fn packed_labelling_matches_byte_oracle(m in wide_mask(), eight in any::<bool>()) {
        let conn = if eight { Connectivity::Eight } else { Connectivity::Four };
        let packed = BitMask::from_bitmap(&m);
        let (labels, comps) = label_components(&m, conn);
        let (labels_p, comps_p) = label_components_packed(&packed, conn);
        prop_assert_eq!(labels, labels_p);
        prop_assert_eq!(comps, comps_p);
    }

    #[test]
    fn packed_largest_blob_matches_byte_oracle(m in wide_mask()) {
        let packed = BitMask::from_bitmap(&m);
        let mut out = Bitmap::new(1, 1);
        let mut out_p = BitMask::new(1, 1);
        let mut scratch = LabelScratch::new();
        let mut scratch_p = LabelScratch::new();
        let byte = largest_component_with(&m, Connectivity::Eight, &mut out, &mut scratch);
        let fast = largest_component_packed_with(
            &packed, Connectivity::Eight, &mut out_p, &mut scratch_p);
        prop_assert_eq!(&byte, &fast);
        if byte.is_some() {
            prop_assert_eq!(out, out_p.to_bitmap());
        }
    }

    #[test]
    fn packed_contour_matches_byte_oracle(m in wide_mask()) {
        let packed = BitMask::from_bitmap(&m);
        let mut byte_buf = Vec::new();
        let mut packed_buf = Vec::new();
        let found = trace_outer_contour_into(&m, &mut byte_buf);
        prop_assert_eq!(found, trace_outer_contour_packed_into(&packed, &mut packed_buf));
        prop_assert_eq!(byte_buf, packed_buf);
    }

    #[test]
    fn packed_tile_diff_matches_popcount_oracle((a, b) in wide_mask_pair(), tile in 1u32..9) {
        let pa = BitMask::from_bitmap(&a);
        let pb = BitMask::from_bitmap(&b);
        // Whole-mask popcount diff vs the per-pixel definition.
        let want: u64 = a.pixels().iter().zip(b.pixels())
            .filter(|(x, y)| x != y).count() as u64;
        prop_assert_eq!(diff::mask_diff_count(&pa, &pb), want);
        // Tiled popcount diff: totals and every tile against a naive oracle.
        let mut tiles = Vec::new();
        let summary = diff::mask_tile_diff_into(&pa, &pb, tile, &mut tiles);
        prop_assert_eq!(summary.total, want);
        prop_assert_eq!(summary.max, tiles.iter().copied().max().unwrap_or(0));
        for ty in 0..summary.tiles_y {
            for tx in 0..summary.tiles_x {
                let mut cell = 0u64;
                for y in (ty * tile)..((ty + 1) * tile).min(a.height()) {
                    for x in (tx * tile)..((tx + 1) * tile).min(a.width()) {
                        if a.get(x, y) != b.get(x, y) {
                            cell += 1;
                        }
                    }
                }
                prop_assert_eq!(tiles[(ty * summary.tiles_x + tx) as usize], cell);
            }
        }
    }

    #[test]
    fn packed_fingerprint_detects_any_flip(m in wide_mask(), bit in any::<u64>()) {
        // Sampling every row (stride 1) must change the fingerprint for any
        // single-pixel flip, because FNV-1a hashes every word.
        let packed = BitMask::from_bitmap(&m);
        let before = packed.fingerprint_sampled(1);
        let x = (bit % u64::from(m.width())) as u32;
        let y = ((bit / u64::from(m.width())) % u64::from(m.height())) as u32;
        let mut flipped = packed.clone();
        flipped.set(x, y, !flipped.get(x, y).unwrap());
        prop_assert_ne!(before, flipped.fingerprint_sampled(1));
        prop_assert_eq!(before, packed.fingerprint_sampled(1));
    }
}

fn gray_pair() -> impl Strategy<Value = (GrayImage, GrayImage)> {
    (2u32..24, 2u32..24).prop_flat_map(|(w, h)| {
        let n = (w * h) as usize;
        (
            prop::collection::vec(any::<u8>(), n),
            prop::collection::vec(any::<u8>(), n),
        )
            .prop_map(move |(da, db)| {
                let mut a = GrayImage::new(w, h);
                a.pixels_mut().copy_from_slice(&da);
                let mut b = GrayImage::new(w, h);
                b.pixels_mut().copy_from_slice(&db);
                (a, b)
            })
    })
}

proptest! {
    #[test]
    fn tiled_sad_matches_whole_frame_oracle((a, b) in gray_pair(), tile in 1u32..9) {
        let mut tiles = Vec::new();
        let summary = diff::tile_sad_into(&a, &b, tile, &mut tiles);
        prop_assert_eq!(summary.total, diff::frame_sad(&a, &b));
        prop_assert_eq!(summary.total, tiles.iter().sum::<u64>());
        prop_assert_eq!(summary.max, tiles.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(tiles.len(), summary.tile_count());
    }

    #[test]
    fn each_tile_matches_a_naive_per_tile_oracle((a, b) in gray_pair(), tile in 1u32..9) {
        let mut tiles = Vec::new();
        let summary = diff::tile_sad_into(&a, &b, tile, &mut tiles);
        for ty in 0..summary.tiles_y {
            for tx in 0..summary.tiles_x {
                let mut want = 0u64;
                for y in (ty * tile)..((ty + 1) * tile).min(a.height()) {
                    for x in (tx * tile)..((tx + 1) * tile).min(a.width()) {
                        want += u64::from(a.get(x, y).unwrap().abs_diff(b.get(x, y).unwrap()));
                    }
                }
                prop_assert_eq!(tiles[(ty * summary.tiles_x + tx) as usize], want);
            }
        }
    }

    #[test]
    fn coarse_sad_is_a_lower_bound((a, b) in gray_pair(), factor in 1u32..9) {
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        let dims_a = diff::box_downsample_into(&a, factor, &mut ca);
        let dims_b = diff::box_downsample_into(&b, factor, &mut cb);
        prop_assert_eq!(dims_a, dims_b);
        prop_assert!(diff::coarse_sad(&ca, &cb) <= diff::frame_sad(&a, &b));
    }

    #[test]
    fn sad_is_symmetric_and_zero_on_self((a, b) in gray_pair()) {
        prop_assert_eq!(diff::frame_sad(&a, &b), diff::frame_sad(&b, &a));
        prop_assert_eq!(diff::frame_sad(&a, &a), 0);
        prop_assert_eq!(diff::frame_sad(&b, &b), 0);
    }
}
