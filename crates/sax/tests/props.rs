//! Property-based tests for SAX invariants.

use hdc_sax::{
    breakpoints, min_rotated_mindist, mindist, normal_quantile, SaxEncoder, SaxIndex, SaxParams,
    SaxWord,
};
use hdc_timeseries::{euclidean, rotate_left, TimeSeries};
use proptest::prelude::*;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, len)
}

fn params() -> impl Strategy<Value = SaxParams> {
    (2usize..24, 2u8..12).prop_map(|(w, a)| SaxParams::new(w, a).unwrap())
}

proptest! {
    #[test]
    fn quantile_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(normal_quantile(lo) <= normal_quantile(hi) + 1e-12);
    }

    #[test]
    fn breakpoints_strictly_ascending(a in 2u8..=26) {
        let b = breakpoints(a);
        prop_assert_eq!(b.len(), (a - 1) as usize);
        for w in b.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn encoding_has_requested_length(v in series(1..128), p in params()) {
        let enc = SaxEncoder::new(p);
        let w = enc.encode(&v);
        prop_assert_eq!(w.len(), p.segments());
        prop_assert_eq!(w.alphabet(), p.alphabet());
    }

    #[test]
    fn encoding_is_scale_invariant(v in series(4..64), p in params(), scale in 0.1f64..50.0, offset in -100.0f64..100.0) {
        let enc = SaxEncoder::new(p);
        let scaled: Vec<f64> = v.iter().map(|x| x * scale + offset).collect();
        prop_assert_eq!(enc.encode(&v), enc.encode(&scaled));
    }

    #[test]
    fn word_display_parse_roundtrip(v in series(4..64), p in params()) {
        let enc = SaxEncoder::new(p);
        let w = enc.encode(&v);
        let parsed: SaxWord = w.to_string().parse().unwrap();
        prop_assert_eq!(parsed.symbols(), w.symbols());
    }

    #[test]
    fn mindist_is_symmetric_and_self_zero(v1 in series(32..33), v2 in series(32..33), p in params()) {
        let enc = SaxEncoder::new(p);
        let w1 = enc.encode(&v1);
        let w2 = enc.encode(&v2);
        let d12 = mindist(&w1, &w2, 32);
        let d21 = mindist(&w2, &w1, 32);
        prop_assert!((d12 - d21).abs() < 1e-12);
        prop_assert_eq!(mindist(&w1, &w1, 32), 0.0);
    }

    #[test]
    fn mindist_lower_bounds_euclidean(v1 in series(32..33), v2 in series(32..33), p in params()) {
        let z1 = TimeSeries::new(v1).znormalized().into_values();
        let z2 = TimeSeries::new(v2).znormalized().into_values();
        let enc = SaxEncoder::new(p);
        let w1 = enc.encode(&z1);
        let w2 = enc.encode(&z2);
        let lb = mindist(&w1, &w2, 32);
        let d = euclidean(&z1, &z2).unwrap();
        prop_assert!(lb <= d + 1e-9, "MINDIST {} must lower-bound {}", lb, d);
    }

    #[test]
    fn rotated_mindist_bounded_by_plain(v1 in series(24..25), v2 in series(24..25), p in params()) {
        let enc = SaxEncoder::new(p);
        let w1 = enc.encode(&v1);
        let w2 = enc.encode(&v2);
        let plain = mindist(&w1, &w2, 24);
        let (rot, shift) = min_rotated_mindist(&w1, &w2, 24);
        prop_assert!(rot <= plain + 1e-12);
        prop_assert!(shift < w2.len());
    }

    #[test]
    fn index_self_query_is_exact(v in series(16..96)) {
        let mut idx = SaxIndex::new(SaxParams::default(), 64);
        idx.insert("self", &v);
        let m = idx.best_match(&v).unwrap();
        prop_assert_eq!(m.label.as_str(), "self");
        prop_assert!(m.distance < 1e-9);
        prop_assert!(m.lower_bound <= m.distance + 1e-9);
    }

    #[test]
    fn index_rotation_invariance(v in series(64..65), shift in 0usize..64) {
        // use a non-degenerate series: skip near-constant draws
        let ts = TimeSeries::new(v.clone());
        prop_assume!(ts.std_dev() > 1e-6);
        let mut idx = SaxIndex::new(SaxParams::default(), 64);
        idx.insert("shape", &v);
        let rotated = rotate_left(&v, shift);
        let m = idx.best_match(&rotated).unwrap();
        prop_assert!(m.distance < 1e-6, "rotation should be free, got {}", m.distance);
    }

    #[test]
    fn index_agrees_with_exhaustive_reference_on_random_databases(
        db in prop::collection::vec(series(48..49), 1..8),
        q in series(48..49),
    ) {
        // the pruned lookup must agree with the exhaustive oracle on any
        // database: same label, same distance, same runner-up gap
        let mut idx = SaxIndex::new(SaxParams::default(), 48);
        for (i, v) in db.iter().enumerate() {
            idx.insert(format!("t{i}"), v);
        }
        let fast = idx.best_match(&q).unwrap();
        let slow = idx.best_match_reference(&q).unwrap();
        prop_assert_eq!(&fast.label, &slow.label);
        prop_assert!((fast.distance - slow.distance).abs() < 1e-9,
            "pruned {} vs exhaustive {}", fast.distance, slow.distance);

        let (fast_best, fast_ru) = idx.best_two(&q).unwrap();
        let (slow_best, slow_ru) = idx.best_two_reference(&q).unwrap();
        prop_assert_eq!(&fast_best.label, &slow_best.label);
        prop_assert!((fast_best.distance - slow_best.distance).abs() < 1e-9);
        match (fast_ru, slow_ru) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9,
                "runner-up {} vs {}", a, b),
            (a, b) => prop_assert!(false, "runner-up presence differs: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn index_prefers_true_nearest(v1 in series(48..49), v2 in series(48..49)) {
        let z1 = TimeSeries::new(v1.clone()).znormalized();
        let z2 = TimeSeries::new(v2.clone()).znormalized();
        prop_assume!(z1.std_dev() > 1e-6 && z2.std_dev() > 1e-6);
        // ensure the two templates are distinguishable
        let d = euclidean(z1.values(), z2.values()).unwrap();
        prop_assume!(d > 1.0);
        let mut idx = SaxIndex::new(SaxParams::default(), 48);
        idx.insert("one", &v1);
        idx.insert("two", &v2);
        let m1 = idx.best_match(&v1).unwrap();
        let m2 = idx.best_match(&v2).unwrap();
        prop_assert_eq!(m1.label.as_str(), "one");
        prop_assert_eq!(m2.label.as_str(), "two");
    }
}
