//! A template database of SAX words with lower-bound pruned lookup.
//!
//! The paper: *"This last step facilitates a comparison of the string against
//! a database of strings and hence can be used quite effectively to identify
//! features in images."* The [`SaxIndex`] is that database: canonical sign
//! signatures inserted once, live frames matched with a rotation-invariant
//! MINDIST lower bound and an exact Euclidean refinement.

use crate::encoder::{SaxEncoder, SaxParams};
use crate::mindist::{mindist_with_table, symbol_distance_table};
use crate::word::SaxWord;
use hdc_timeseries::{
    min_rotated_euclidean_naive, min_rotated_euclidean_with, paa_into, resample, resample_into,
    znormalize_in_place, RotationScratch, TimeSeries,
};
use serde::{Deserialize, Serialize};

/// A stored canonical signature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Template {
    /// The class label (e.g. `"No"`).
    pub label: String,
    /// The template's SAX word.
    pub word: SaxWord,
    /// The z-normalised, uniformly resampled series.
    pub series: Vec<f64>,
}

/// Result of a database lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexMatch {
    /// Label of the best-matching template.
    pub label: String,
    /// Rotation-invariant MINDIST lower bound to that template.
    pub lower_bound: f64,
    /// Exact rotation-invariant Euclidean distance.
    pub distance: f64,
    /// Circular shift (in samples) that aligned the query with the template.
    pub shift: usize,
}

/// A lookup result borrowing its label from the index — the allocation-free
/// counterpart of [`IndexMatch`] returned by the `*_with` query methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexMatchRef<'a> {
    /// Label of the best-matching template (borrowed from the index).
    pub label: &'a str,
    /// Rotation-invariant MINDIST lower bound to that template.
    pub lower_bound: f64,
    /// Exact rotation-invariant Euclidean distance.
    pub distance: f64,
    /// Circular shift (in samples) that aligned the query with the template.
    pub shift: usize,
}

impl IndexMatchRef<'_> {
    /// Converts to the owning form (clones the label).
    pub fn into_owned(self) -> IndexMatch {
        IndexMatch {
            label: self.label.to_string(),
            lower_bound: self.lower_bound,
            distance: self.distance,
            shift: self.shift,
        }
    }
}

/// Reusable buffers for the `*_with` query methods on [`SaxIndex`], so the
/// steady-state recognition loop performs no heap allocation per query.
#[derive(Debug, Default, Clone)]
pub struct QueryScratch {
    /// Canonical (resampled + z-normalised) query signature.
    canonical: Vec<f64>,
    /// Second z-normalisation pass feeding the encoder (mirrors the encoder's
    /// own normalisation of the canonical series).
    znorm: Vec<f64>,
    /// PAA frames of the query.
    frames: Vec<f64>,
    /// SAX symbols of the query.
    syms: Vec<u8>,
    /// `(lower bound, template index)` visit order.
    order: Vec<(f64, usize)>,
    /// Rotation-distance scratch.
    rot: RotationScratch,
}

impl QueryScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A database of SAX-encoded shape signatures.
///
/// # Example
/// ```
/// use hdc_sax::{SaxIndex, SaxParams};
/// let mut idx = SaxIndex::new(SaxParams::default(), 128);
/// let square: Vec<f64> = (0..128).map(|i| if (i / 16) % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let sine: Vec<f64> = (0..128).map(|i| (i as f64 * 0.3).sin()).collect();
/// idx.insert("square", &square);
/// idx.insert("sine", &sine);
/// let m = idx.best_match(&square).unwrap();
/// assert_eq!(m.label, "square");
/// ```
#[derive(Debug, Clone)]
pub struct SaxIndex {
    encoder: SaxEncoder,
    series_len: usize,
    templates: Vec<Template>,
    table: Vec<Vec<f64>>,
    /// Flattened `alphabet × alphabet` table of *squared* symbol distances —
    /// the per-position MINDIST cost without the per-query squaring.
    dsq: Vec<f64>,
    /// Per-template word symbols doubled back-to-back, so the word rotated
    /// left by `s` is the slice `doubled[s..s + w]` — no allocation per shift.
    doubled: Vec<Vec<u8>>,
}

impl SaxIndex {
    /// Creates an empty index.
    ///
    /// `series_len` is the common length all signatures are resampled to
    /// before encoding and matching.
    ///
    /// # Panics
    /// Panics if `series_len` is zero.
    pub fn new(params: SaxParams, series_len: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        let table = symbol_distance_table(params.alphabet());
        let a = params.alphabet() as usize;
        let mut dsq = vec![0.0; a * a];
        for (i, row) in table.iter().enumerate() {
            for (j, d) in row.iter().enumerate() {
                dsq[i * a + j] = d * d;
            }
        }
        SaxIndex {
            encoder: SaxEncoder::new(params),
            series_len,
            templates: Vec::new(),
            table,
            dsq,
            doubled: Vec::new(),
        }
    }

    /// The encoder parameters.
    pub fn params(&self) -> SaxParams {
        self.encoder.params()
    }

    /// The common signature length.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Number of stored templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the index holds no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The stored templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Normalises a raw signature to the index's canonical form.
    fn canonicalize(&self, series: &[f64]) -> Vec<f64> {
        let resampled = resample(series, self.series_len);
        TimeSeries::new(resampled).znormalized().into_values()
    }

    /// Inserts a canonical signature under `label`.
    pub fn insert(&mut self, label: impl Into<String>, series: &[f64]) {
        let canonical = self.canonicalize(series);
        let word = self.encoder.encode(&canonical);
        let mut doubled = Vec::with_capacity(word.len() * 2);
        doubled.extend_from_slice(word.symbols());
        doubled.extend_from_slice(word.symbols());
        self.doubled.push(doubled);
        self.templates.push(Template {
            label: label.into(),
            word,
            series: canonical,
        });
    }

    /// Encodes an arbitrary series with the index's encoder (exposed for
    /// diagnostics and the experiment harness).
    pub fn encode(&self, series: &[f64]) -> SaxWord {
        self.encoder.encode(&self.canonicalize(series))
    }

    /// Canonicalises the query into `scratch` and computes the rotation
    /// lower bound to every template, leaving `(lb, index)` pairs in
    /// `scratch.order` sorted ascending. No heap allocation in steady state.
    fn prepare_query(&self, series: &[f64], scratch: &mut QueryScratch) {
        scratch.canonical.resize(self.series_len, 0.0);
        resample_into(series, &mut scratch.canonical);
        znormalize_in_place(&mut scratch.canonical);

        // The encoder z-normalises its input itself; replicate that second
        // pass so the symbols match `encode(&canonicalize(series))` exactly.
        scratch.znorm.clear();
        scratch.znorm.extend_from_slice(&scratch.canonical);
        znormalize_in_place(&mut scratch.znorm);
        let w = self.encoder.params().segments();
        scratch.frames.resize(w, 0.0);
        if w <= self.series_len {
            paa_into(&scratch.znorm, &mut scratch.frames);
        } else {
            // Series shorter than the word: the encoder stretches by
            // resampling (PAA is the identity in that regime).
            resample_into(&scratch.znorm, &mut scratch.frames);
        }
        self.encoder
            .symbolize_into(&scratch.frames, &mut scratch.syms);

        let a = self.encoder.params().alphabet() as usize;
        let scale = self.series_len as f64 / w as f64;
        scratch.order.clear();
        for (i, doubled) in self.doubled.iter().enumerate() {
            let mut lb = f64::INFINITY;
            for shift in 0..w {
                let window = &doubled[shift..shift + w];
                let sum: f64 = scratch
                    .syms
                    .iter()
                    .zip(window)
                    .map(|(q, t)| self.dsq[*q as usize * a + *t as usize])
                    .sum();
                let d = (scale * sum).sqrt();
                if d < lb {
                    lb = d;
                }
            }
            scratch.order.push((lb, i));
        }
        // Ascending lower bound, ties broken by insertion order — the same
        // visit order a stable sort on the lower bound alone would give.
        scratch
            .order
            .sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
    }

    /// Finds the best-matching template for a query signature.
    ///
    /// Strategy: compute the rotation-invariant MINDIST lower bound to every
    /// template (cheap, word-level), visit templates in ascending lower-bound
    /// order and compute the exact rotation-invariant Euclidean distance,
    /// skipping any template whose lower bound already exceeds the best exact
    /// distance found — the classic lower-bound pruning search.
    ///
    /// Returns `None` when the index is empty.
    pub fn best_match(&self, series: &[f64]) -> Option<IndexMatch> {
        self.best_match_with(series, &mut QueryScratch::new())
            .map(IndexMatchRef::into_owned)
    }

    /// [`SaxIndex::best_match`] with caller-provided scratch buffers and a
    /// borrowed label; the allocation-free form used by the steady-state
    /// recognition loop.
    pub fn best_match_with<'a>(
        &'a self,
        series: &[f64],
        scratch: &mut QueryScratch,
    ) -> Option<IndexMatchRef<'a>> {
        if self.templates.is_empty() {
            return None;
        }
        self.prepare_query(series, scratch);
        let mut best: Option<IndexMatchRef<'a>> = None;
        for k in 0..scratch.order.len() {
            let (lb, i) = scratch.order[k];
            if let Some(ref b) = best {
                if lb >= b.distance {
                    break; // every remaining lower bound is worse
                }
            }
            let t = &self.templates[i];
            let (d, shift) =
                min_rotated_euclidean_with(&scratch.canonical, &t.series, 1, &mut scratch.rot)
                    .expect("canonical series are equal-length and non-empty");
            if best.as_ref().is_none_or(|b| d < b.distance) {
                best = Some(IndexMatchRef {
                    label: &t.label,
                    lower_bound: lb,
                    distance: d,
                    shift,
                });
            }
        }
        best
    }

    /// Like [`SaxIndex::best_match`] but also returns the exact distance to
    /// the best template of a *different* label, when one exists — the
    /// runner-up used by ambiguity (ratio) tests.
    ///
    /// Note that the runner-up distance is exact (not approximated): ratio
    /// tests need the true second-best value. Pruning therefore only skips a
    /// template once its lower bound exceeds the current runner-up distance —
    /// such a template can change neither the winner nor the runner-up.
    pub fn best_two(&self, series: &[f64]) -> Option<(IndexMatch, Option<f64>)> {
        self.best_two_with(series, &mut QueryScratch::new())
            .map(|(m, r)| (m.into_owned(), r))
    }

    /// [`SaxIndex::best_two`] with caller-provided scratch buffers and a
    /// borrowed label; the allocation-free form used by the steady-state
    /// recognition loop.
    pub fn best_two_with<'a>(
        &'a self,
        series: &[f64],
        scratch: &mut QueryScratch,
    ) -> Option<(IndexMatchRef<'a>, Option<f64>)> {
        if self.templates.is_empty() {
            return None;
        }
        self.prepare_query(series, scratch);

        // Track the global best and the best among *other* labels, ordering
        // ties by template index (what a stable sort on exact distance over
        // the whole database would produce).
        struct Entry {
            d: f64,
            idx: usize,
            lb: f64,
            shift: usize,
        }
        let beats = |d: f64, idx: usize, e: &Entry| d < e.d || (d == e.d && idx < e.idx);
        let mut best: Option<Entry> = None;
        let mut runner: Option<Entry> = None;
        for k in 0..scratch.order.len() {
            let (lb, i) = scratch.order[k];
            if let Some(ref r) = runner {
                if lb > r.d {
                    break; // can change neither winner nor runner-up
                }
            }
            let t = &self.templates[i];
            let (d, shift) =
                min_rotated_euclidean_with(&scratch.canonical, &t.series, 1, &mut scratch.rot)
                    .expect("canonical series are equal-length and non-empty");
            let entry = Entry {
                d,
                idx: i,
                lb,
                shift,
            };
            match best {
                None => best = Some(entry),
                Some(ref b) if beats(d, i, b) => {
                    // The dethroned winner is the best candidate from any
                    // other label (it beat the previous runner-up too).
                    let old = best.replace(entry).expect("just matched Some");
                    if self.templates[old.idx].label != t.label {
                        runner = Some(old);
                    }
                }
                Some(ref b) => {
                    if self.templates[b.idx].label != t.label
                        && runner.as_ref().is_none_or(|r| beats(d, i, r))
                    {
                        runner = Some(entry);
                    }
                }
            }
        }
        let b = best.expect("templates are non-empty");
        let best_ref = IndexMatchRef {
            label: &self.templates[b.idx].label,
            lower_bound: b.lb,
            distance: b.d,
            shift: b.shift,
        };
        Some((best_ref, runner.map(|r| r.d)))
    }

    /// Reference implementation of [`SaxIndex::best_match`]: the
    /// pre-optimisation search that materialises a rotated word per shift and
    /// a rotated series per alignment. Kept as the test oracle and the honest
    /// "before" baseline for the committed benchmark.
    pub fn best_match_reference(&self, series: &[f64]) -> Option<IndexMatch> {
        if self.templates.is_empty() {
            return None;
        }
        let canonical = self.canonicalize(series);
        let query_word = self.encoder.encode(&canonical);

        let mut candidates: Vec<(usize, f64)> = self
            .templates
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut best = f64::INFINITY;
                for shift in 0..t.word.len() {
                    let rotated = t.word.rotated_left(shift);
                    let d = mindist_with_table(&query_word, &rotated, self.series_len, &self.table);
                    if d < best {
                        best = d;
                    }
                }
                (i, best)
            })
            .collect();
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        let mut best: Option<IndexMatch> = None;
        for (i, lb) in candidates {
            if let Some(ref b) = best {
                if lb >= b.distance {
                    break;
                }
            }
            let t = &self.templates[i];
            let (d, shift) = min_rotated_euclidean_naive(&canonical, &t.series, 1)
                .expect("canonical series are equal-length and non-empty");
            if best.as_ref().is_none_or(|b| d < b.distance) {
                best = Some(IndexMatch {
                    label: t.label.clone(),
                    lower_bound: lb,
                    distance: d,
                    shift,
                });
            }
        }
        best
    }

    /// Reference implementation of [`SaxIndex::best_two`]: exact distance to
    /// every template, sorted. Kept as the test oracle and the honest
    /// "before" baseline for the committed benchmark.
    pub fn best_two_reference(&self, series: &[f64]) -> Option<(IndexMatch, Option<f64>)> {
        if self.templates.is_empty() {
            return None;
        }
        let canonical = self.canonicalize(series);
        let query_word = self.encoder.encode(&canonical);

        let mut exact: Vec<(usize, f64, f64, usize)> = self
            .templates
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut lb = f64::INFINITY;
                for shift in 0..t.word.len() {
                    let rotated = t.word.rotated_left(shift);
                    let d = mindist_with_table(&query_word, &rotated, self.series_len, &self.table);
                    if d < lb {
                        lb = d;
                    }
                }
                let (d, shift) = min_rotated_euclidean_naive(&canonical, &t.series, 1)
                    .expect("canonical series are equal-length and non-empty");
                (i, lb, d, shift)
            })
            .collect();
        exact.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());

        let (i, lb, d, shift) = exact[0];
        let best = IndexMatch {
            label: self.templates[i].label.clone(),
            lower_bound: lb,
            distance: d,
            shift,
        };
        let runner_up = exact
            .iter()
            .skip(1)
            .find(|(j, _, _, _)| self.templates[*j].label != best.label)
            .map(|(_, _, d, _)| *d);
        Some((best, runner_up))
    }

    /// Classifies a query: the best match's label if its exact distance is
    /// within `threshold`, otherwise `None` (unknown sign).
    pub fn classify(&self, series: &[f64], threshold: f64) -> Option<IndexMatch> {
        self.best_match(series).filter(|m| m.distance <= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_timeseries::rotate_left;

    fn square_wave(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if (i / period).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    fn sine(n: usize, cycles: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    fn index_with_shapes() -> SaxIndex {
        let mut idx = SaxIndex::new(SaxParams::default(), 128);
        idx.insert("square", &square_wave(128, 16));
        idx.insert("sine3", &sine(128, 3.0));
        idx.insert("sine7", &sine(128, 7.0));
        idx
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = SaxIndex::new(SaxParams::default(), 64);
        assert!(idx.best_match(&[1.0, 2.0]).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn exact_query_matches_itself() {
        let idx = index_with_shapes();
        let m = idx.best_match(&sine(128, 3.0)).unwrap();
        assert_eq!(m.label, "sine3");
        assert!(m.distance < 1e-9);
        assert!(m.lower_bound <= m.distance + 1e-9, "lower bound property");
    }

    #[test]
    fn rotated_query_still_matches() {
        let idx = index_with_shapes();
        let rotated = rotate_left(&sine(128, 7.0), 37);
        let m = idx.best_match(&rotated).unwrap();
        assert_eq!(m.label, "sine7");
        assert!(
            m.distance < 1e-6,
            "rotation-invariant match, got {}",
            m.distance
        );
    }

    #[test]
    fn different_length_query_is_resampled() {
        let idx = index_with_shapes();
        let m = idx.best_match(&sine(300, 3.0)).unwrap();
        assert_eq!(m.label, "sine3");
        assert!(m.distance < 1.5, "resampled query distance {}", m.distance);
    }

    #[test]
    fn classify_thresholds() {
        let idx = index_with_shapes();
        let q = sine(128, 3.0);
        assert!(idx.classify(&q, 0.5).is_some());
        // white-ish junk: far from every template
        let junk: Vec<f64> = (0..128u64)
            .map(|i| ((i * 2654435761) % 97) as f64)
            .collect();
        let m = idx.best_match(&junk).unwrap();
        assert!(idx.classify(&junk, m.distance / 2.0).is_none());
    }

    #[test]
    fn lower_bound_never_exceeds_distance() {
        let idx = index_with_shapes();
        for q in [sine(128, 3.0), sine(128, 5.0), square_wave(128, 8)] {
            let m = idx.best_match(&q).unwrap();
            assert!(m.lower_bound <= m.distance + 1e-9);
        }
    }

    #[test]
    fn pruned_search_matches_reference() {
        let idx = index_with_shapes();
        let queries = [
            sine(128, 3.0),
            sine(128, 7.0),
            sine(128, 5.0),
            square_wave(128, 16),
            square_wave(128, 8),
            rotate_left(&sine(128, 7.0), 37),
            rotate_left(&square_wave(128, 16), 5),
            sine(300, 3.0),
        ];
        let mut scratch = QueryScratch::new();
        for (qi, q) in queries.iter().enumerate() {
            let fast = idx
                .best_match_with(q, &mut scratch)
                .map(IndexMatchRef::into_owned);
            let reference = idx.best_match_reference(q);
            assert_eq!(fast, reference, "best_match query {qi}");
            let fast_two = idx
                .best_two_with(q, &mut scratch)
                .map(|(m, r)| (m.into_owned(), r));
            let reference_two = idx.best_two_reference(q);
            assert_eq!(fast_two, reference_two, "best_two query {qi}");
        }
    }

    #[test]
    fn best_two_single_label_has_no_runner_up() {
        let mut idx = SaxIndex::new(SaxParams::default(), 128);
        idx.insert("only", &sine(128, 3.0));
        idx.insert("only", &sine(128, 5.0));
        let (m, runner) = idx.best_two(&sine(128, 3.0)).unwrap();
        assert_eq!(m.label, "only");
        assert!(runner.is_none());
        assert_eq!(idx.best_two_reference(&sine(128, 3.0)).unwrap().1, None);
    }

    #[test]
    fn duplicate_templates_tie_break_like_reference() {
        // Identical series under different labels force exact-distance ties;
        // the pruned search must break them the same way the reference does.
        let mut idx = SaxIndex::new(SaxParams::default(), 128);
        idx.insert("first", &sine(128, 3.0));
        idx.insert("second", &sine(128, 3.0));
        idx.insert("third", &sine(128, 5.0));
        let q = rotate_left(&sine(128, 3.0), 9);
        assert_eq!(idx.best_two(&q), idx.best_two_reference(&q));
        assert_eq!(idx.best_match(&q), idx.best_match_reference(&q));
    }

    #[test]
    fn templates_accessible() {
        let idx = index_with_shapes();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.templates()[0].label, "square");
        assert_eq!(idx.series_len(), 128);
        assert_eq!(idx.params(), SaxParams::default());
    }
}
