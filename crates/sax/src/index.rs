//! A template database of SAX words with lower-bound pruned lookup.
//!
//! The paper: *"This last step facilitates a comparison of the string against
//! a database of strings and hence can be used quite effectively to identify
//! features in images."* The [`SaxIndex`] is that database: canonical sign
//! signatures inserted once, live frames matched with a rotation-invariant
//! MINDIST lower bound and an exact Euclidean refinement.

use crate::encoder::{SaxEncoder, SaxParams};
use crate::mindist::{mindist_with_table, symbol_distance_table};
use crate::word::SaxWord;
use hdc_timeseries::{min_rotated_euclidean, resample, TimeSeries};
use serde::{Deserialize, Serialize};

/// A stored canonical signature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Template {
    /// The class label (e.g. `"No"`).
    pub label: String,
    /// The template's SAX word.
    pub word: SaxWord,
    /// The z-normalised, uniformly resampled series.
    pub series: Vec<f64>,
}

/// Result of a database lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexMatch {
    /// Label of the best-matching template.
    pub label: String,
    /// Rotation-invariant MINDIST lower bound to that template.
    pub lower_bound: f64,
    /// Exact rotation-invariant Euclidean distance.
    pub distance: f64,
    /// Circular shift (in samples) that aligned the query with the template.
    pub shift: usize,
}

/// A database of SAX-encoded shape signatures.
///
/// # Example
/// ```
/// use hdc_sax::{SaxIndex, SaxParams};
/// let mut idx = SaxIndex::new(SaxParams::default(), 128);
/// let square: Vec<f64> = (0..128).map(|i| if (i / 16) % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let sine: Vec<f64> = (0..128).map(|i| (i as f64 * 0.3).sin()).collect();
/// idx.insert("square", &square);
/// idx.insert("sine", &sine);
/// let m = idx.best_match(&square).unwrap();
/// assert_eq!(m.label, "square");
/// ```
#[derive(Debug, Clone)]
pub struct SaxIndex {
    encoder: SaxEncoder,
    series_len: usize,
    templates: Vec<Template>,
    table: Vec<Vec<f64>>,
}

impl SaxIndex {
    /// Creates an empty index.
    ///
    /// `series_len` is the common length all signatures are resampled to
    /// before encoding and matching.
    ///
    /// # Panics
    /// Panics if `series_len` is zero.
    pub fn new(params: SaxParams, series_len: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        SaxIndex {
            encoder: SaxEncoder::new(params),
            series_len,
            templates: Vec::new(),
            table: symbol_distance_table(params.alphabet()),
        }
    }

    /// The encoder parameters.
    pub fn params(&self) -> SaxParams {
        self.encoder.params()
    }

    /// The common signature length.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Number of stored templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the index holds no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The stored templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Normalises a raw signature to the index's canonical form.
    fn canonicalize(&self, series: &[f64]) -> Vec<f64> {
        let resampled = resample(series, self.series_len);
        TimeSeries::new(resampled).znormalized().into_values()
    }

    /// Inserts a canonical signature under `label`.
    pub fn insert(&mut self, label: impl Into<String>, series: &[f64]) {
        let canonical = self.canonicalize(series);
        let word = self.encoder.encode(&canonical);
        self.templates.push(Template {
            label: label.into(),
            word,
            series: canonical,
        });
    }

    /// Encodes an arbitrary series with the index's encoder (exposed for
    /// diagnostics and the experiment harness).
    pub fn encode(&self, series: &[f64]) -> SaxWord {
        self.encoder.encode(&self.canonicalize(series))
    }

    /// Finds the best-matching template for a query signature.
    ///
    /// Strategy: compute the rotation-invariant MINDIST lower bound to every
    /// template (cheap, word-level), visit templates in ascending lower-bound
    /// order and compute the exact rotation-invariant Euclidean distance,
    /// skipping any template whose lower bound already exceeds the best exact
    /// distance found — the classic lower-bound pruning search.
    ///
    /// Returns `None` when the index is empty.
    pub fn best_match(&self, series: &[f64]) -> Option<IndexMatch> {
        if self.templates.is_empty() {
            return None;
        }
        let canonical = self.canonicalize(series);
        let query_word = self.encoder.encode(&canonical);

        // Lower bounds, word-level rotation search.
        let mut candidates: Vec<(usize, f64)> = self
            .templates
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut best = f64::INFINITY;
                for shift in 0..t.word.len() {
                    let rotated = t.word.rotated_left(shift);
                    let d = mindist_with_table(&query_word, &rotated, self.series_len, &self.table);
                    if d < best {
                        best = d;
                    }
                }
                (i, best)
            })
            .collect();
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        let mut best: Option<IndexMatch> = None;
        for (i, lb) in candidates {
            if let Some(ref b) = best {
                if lb >= b.distance {
                    break; // every remaining lower bound is worse
                }
            }
            let t = &self.templates[i];
            let (d, shift) = min_rotated_euclidean(&canonical, &t.series, 1)
                .expect("canonical series are equal-length and non-empty");
            if best.as_ref().is_none_or(|b| d < b.distance) {
                best = Some(IndexMatch {
                    label: t.label.clone(),
                    lower_bound: lb,
                    distance: d,
                    shift,
                });
            }
        }
        best
    }

    /// Like [`SaxIndex::best_match`] but also returns the exact distance to
    /// the best template of a *different* label, when one exists — the
    /// runner-up used by ambiguity (ratio) tests.
    ///
    /// Note that the runner-up distance is exact (not pruned): ratio tests
    /// need the true second-best value.
    pub fn best_two(&self, series: &[f64]) -> Option<(IndexMatch, Option<f64>)> {
        if self.templates.is_empty() {
            return None;
        }
        let canonical = self.canonicalize(series);
        let query_word = self.encoder.encode(&canonical);

        // Lower bounds, word-level rotation search (kept for the IndexMatch
        // diagnostics even though the ratio test forces exact distances).
        let mut exact: Vec<(usize, f64, f64, usize)> = self
            .templates
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut lb = f64::INFINITY;
                for shift in 0..t.word.len() {
                    let rotated = t.word.rotated_left(shift);
                    let d = mindist_with_table(&query_word, &rotated, self.series_len, &self.table);
                    if d < lb {
                        lb = d;
                    }
                }
                let (d, shift) = min_rotated_euclidean(&canonical, &t.series, 1)
                    .expect("canonical series are equal-length and non-empty");
                (i, lb, d, shift)
            })
            .collect();
        exact.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());

        let (i, lb, d, shift) = exact[0];
        let best = IndexMatch {
            label: self.templates[i].label.clone(),
            lower_bound: lb,
            distance: d,
            shift,
        };
        let runner_up = exact
            .iter()
            .skip(1)
            .find(|(j, _, _, _)| self.templates[*j].label != best.label)
            .map(|(_, _, d, _)| *d);
        Some((best, runner_up))
    }

    /// Classifies a query: the best match's label if its exact distance is
    /// within `threshold`, otherwise `None` (unknown sign).
    pub fn classify(&self, series: &[f64], threshold: f64) -> Option<IndexMatch> {
        self.best_match(series).filter(|m| m.distance <= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_timeseries::rotate_left;

    fn square_wave(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i / period).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect()
    }

    fn sine(n: usize, cycles: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    fn index_with_shapes() -> SaxIndex {
        let mut idx = SaxIndex::new(SaxParams::default(), 128);
        idx.insert("square", &square_wave(128, 16));
        idx.insert("sine3", &sine(128, 3.0));
        idx.insert("sine7", &sine(128, 7.0));
        idx
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = SaxIndex::new(SaxParams::default(), 64);
        assert!(idx.best_match(&[1.0, 2.0]).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn exact_query_matches_itself() {
        let idx = index_with_shapes();
        let m = idx.best_match(&sine(128, 3.0)).unwrap();
        assert_eq!(m.label, "sine3");
        assert!(m.distance < 1e-9);
        assert!(m.lower_bound <= m.distance + 1e-9, "lower bound property");
    }

    #[test]
    fn rotated_query_still_matches() {
        let idx = index_with_shapes();
        let rotated = rotate_left(&sine(128, 7.0), 37);
        let m = idx.best_match(&rotated).unwrap();
        assert_eq!(m.label, "sine7");
        assert!(m.distance < 1e-6, "rotation-invariant match, got {}", m.distance);
    }

    #[test]
    fn different_length_query_is_resampled() {
        let idx = index_with_shapes();
        let m = idx.best_match(&sine(300, 3.0)).unwrap();
        assert_eq!(m.label, "sine3");
        assert!(m.distance < 1.5, "resampled query distance {}", m.distance);
    }

    #[test]
    fn classify_thresholds() {
        let idx = index_with_shapes();
        let q = sine(128, 3.0);
        assert!(idx.classify(&q, 0.5).is_some());
        // white-ish junk: far from every template
        let junk: Vec<f64> = (0..128u64).map(|i| ((i * 2654435761) % 97) as f64).collect();
        let m = idx.best_match(&junk).unwrap();
        assert!(idx.classify(&junk, m.distance / 2.0).is_none());
    }

    #[test]
    fn lower_bound_never_exceeds_distance() {
        let idx = index_with_shapes();
        for q in [sine(128, 3.0), sine(128, 5.0), square_wave(128, 8)] {
            let m = idx.best_match(&q).unwrap();
            assert!(m.lower_bound <= m.distance + 1e-9);
        }
    }

    #[test]
    fn templates_accessible() {
        let idx = index_with_shapes();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.templates()[0].label, "square");
        assert_eq!(idx.series_len(), 128);
        assert_eq!(idx.params(), SaxParams::default());
    }
}
