//! Gaussian breakpoints for SAX symbolisation.
//!
//! SAX assumes z-normalised series are approximately standard normal and
//! chooses breakpoints that make each symbol equiprobable: the `a-1` interior
//! quantiles of N(0, 1).

/// Smallest supported alphabet size.
pub const MIN_ALPHABET: u8 = 2;
/// Largest supported alphabet size (one Latin letter per symbol).
pub const MAX_ALPHABET: u8 = 26;

/// Inverse CDF (quantile function) of the standard normal distribution,
/// computed with Acklam's rational approximation (relative error < 1.15e-9).
///
/// # Panics
/// Panics if `p` is outside the open interval `(0, 1)`.
///
/// # Example
/// ```
/// use hdc_sax::normal_quantile;
/// assert!(normal_quantile(0.5).abs() < 1e-12);
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile probability must be in (0,1), got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The `alphabet - 1` interior breakpoints dividing N(0,1) into `alphabet`
/// equiprobable intervals, in ascending order.
///
/// # Panics
/// Panics if `alphabet` is outside `[MIN_ALPHABET, MAX_ALPHABET]`.
///
/// # Example
/// ```
/// use hdc_sax::breakpoints;
/// let b = breakpoints(4);
/// assert_eq!(b.len(), 3);
/// assert!(b[1].abs() < 1e-12); // median
/// assert!((b[0] + 0.6744897).abs() < 1e-5);
/// ```
pub fn breakpoints(alphabet: u8) -> Vec<f64> {
    assert!(
        (MIN_ALPHABET..=MAX_ALPHABET).contains(&alphabet),
        "alphabet size {alphabet} outside [{MIN_ALPHABET}, {MAX_ALPHABET}]"
    );
    (1..alphabet)
        .map(|i| normal_quantile(i as f64 / alphabet as f64))
        .collect()
}

/// Maps a z-normalised value to its symbol index under `alphabet` breakpoints.
///
/// Symbol `k` means the value lies in the `k`-th equiprobable interval
/// (0 = lowest).
pub fn symbol_for(value: f64, bps: &[f64]) -> u8 {
    // binary search: number of breakpoints <= value
    let mut lo = 0usize;
    let mut hi = bps.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if bps[mid] <= value {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.8413447460685429) - 1.0).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.959963985).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959963985).abs() < 1e-6);
        // extreme tails still finite and monotone
        assert!(normal_quantile(1e-10) < -6.0);
        assert!(normal_quantile(1.0 - 1e-10) > 6.0);
    }

    #[test]
    fn quantile_is_antisymmetric() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            let lo = normal_quantile(p);
            let hi = normal_quantile(1.0 - p);
            assert!(
                (lo + hi).abs() < 1e-8,
                "Φ⁻¹({p}) = {lo}, Φ⁻¹({}) = {hi}",
                1.0 - p
            );
        }
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn classic_sax_tables() {
        // canonical values from the SAX literature
        let b3 = breakpoints(3);
        assert!((b3[0] + 0.43).abs() < 0.01);
        assert!((b3[1] - 0.43).abs() < 0.01);
        let b4 = breakpoints(4);
        assert!((b4[0] + 0.67).abs() < 0.01);
        assert!(b4[1].abs() < 1e-9);
        assert!((b4[2] - 0.67).abs() < 0.01);
        let b5 = breakpoints(5);
        assert!((b5[0] + 0.84).abs() < 0.01);
        assert!((b5[1] + 0.25).abs() < 0.01);
    }

    #[test]
    fn breakpoints_ascending() {
        for a in MIN_ALPHABET..=MAX_ALPHABET {
            let b = breakpoints(a);
            assert_eq!(b.len(), (a - 1) as usize);
            for w in b.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "alphabet size")]
    fn breakpoints_reject_unit_alphabet() {
        breakpoints(1);
    }

    #[test]
    fn symbol_assignment() {
        let bps = breakpoints(4); // [-0.674, 0, 0.674]
        assert_eq!(symbol_for(-1.0, &bps), 0);
        assert_eq!(symbol_for(-0.3, &bps), 1);
        assert_eq!(symbol_for(0.3, &bps), 2);
        assert_eq!(symbol_for(1.0, &bps), 3);
        // boundary: breakpoint itself belongs to the upper interval
        assert_eq!(symbol_for(0.0, &bps), 2);
    }

    #[test]
    fn symbols_roughly_equiprobable() {
        // uniform z-scores over a wide range should hit all 5 symbols
        let bps = breakpoints(5);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for i in 0..n {
            // map uniform(0,1) through the quantile function → standard normal samples
            let p = (i as f64 + 0.5) / n as f64;
            let z = normal_quantile(p);
            counts[symbol_for(z, &bps) as usize] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "symbol frequency {frac}");
        }
    }
}
