//! SAX words: strings over a small alphabet.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A SAX word: a sequence of symbol indices under a fixed alphabet size.
///
/// Displayed using Latin letters (`0 → 'a'`). The paper stores each sign's
/// canonical view as such a string and matches live frames against the
/// database of strings.
///
/// # Example
/// ```
/// use hdc_sax::SaxWord;
/// let w: SaxWord = "abca".parse().unwrap();
/// assert_eq!(w.len(), 4);
/// assert_eq!(w.alphabet(), 3); // highest symbol seen is 'c'
/// assert_eq!(w.to_string(), "abca");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaxWord {
    symbols: Vec<u8>,
    alphabet: u8,
}

/// Error constructing a [`SaxWord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxWordError {
    /// A symbol index was not below the alphabet size.
    SymbolOutOfRange {
        /// The offending symbol index.
        symbol: u8,
        /// The alphabet size.
        alphabet: u8,
    },
    /// Parsed character was not a lowercase Latin letter.
    InvalidCharacter(char),
    /// The word had no symbols.
    Empty,
}

impl fmt::Display for SaxWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxWordError::SymbolOutOfRange { symbol, alphabet } => {
                write!(f, "symbol {symbol} out of range for alphabet {alphabet}")
            }
            SaxWordError::InvalidCharacter(c) => write!(f, "invalid SAX character {c:?}"),
            SaxWordError::Empty => write!(f, "empty SAX word"),
        }
    }
}

impl std::error::Error for SaxWordError {}

impl SaxWord {
    /// Creates a word from raw symbol indices and an alphabet size.
    ///
    /// # Errors
    /// [`SaxWordError::SymbolOutOfRange`] when any symbol ≥ `alphabet`;
    /// [`SaxWordError::Empty`] for an empty symbol list.
    pub fn new(symbols: Vec<u8>, alphabet: u8) -> Result<Self, SaxWordError> {
        if symbols.is_empty() {
            return Err(SaxWordError::Empty);
        }
        if let Some(&bad) = symbols.iter().find(|s| **s >= alphabet) {
            return Err(SaxWordError::SymbolOutOfRange {
                symbol: bad,
                alphabet,
            });
        }
        Ok(SaxWord { symbols, alphabet })
    }

    /// The symbol indices.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// The alphabet size the word was encoded with.
    pub fn alphabet(&self) -> u8 {
        self.alphabet
    }

    /// Word length (number of PAA segments).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word is empty (never true for constructed words).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Hamming distance to another word (number of differing positions).
    ///
    /// Returns `None` when lengths differ.
    pub fn hamming(&self, other: &SaxWord) -> Option<usize> {
        if self.len() != other.len() {
            return None;
        }
        Some(
            self.symbols
                .iter()
                .zip(&other.symbols)
                .filter(|(a, b)| a != b)
                .count(),
        )
    }

    /// The word circularly rotated left by `shift` symbols.
    pub fn rotated_left(&self, shift: usize) -> SaxWord {
        let n = self.symbols.len();
        let s = shift % n;
        let mut symbols = Vec::with_capacity(n);
        symbols.extend_from_slice(&self.symbols[s..]);
        symbols.extend_from_slice(&self.symbols[..s]);
        SaxWord {
            symbols,
            alphabet: self.alphabet,
        }
    }
}

impl fmt::Display for SaxWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.symbols {
            write!(f, "{}", (b'a' + s) as char)?;
        }
        Ok(())
    }
}

impl FromStr for SaxWord {
    type Err = SaxWordError;

    /// Parses letters `a…z`; the alphabet size is the highest letter + 1
    /// (at least 2).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(SaxWordError::Empty);
        }
        let mut symbols = Vec::with_capacity(s.len());
        let mut max = 0u8;
        for c in s.chars() {
            if !c.is_ascii_lowercase() {
                return Err(SaxWordError::InvalidCharacter(c));
            }
            let idx = c as u8 - b'a';
            max = max.max(idx);
            symbols.push(idx);
        }
        SaxWord::new(symbols, (max + 1).max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SaxWord::new(vec![0, 1, 2], 3).is_ok());
        assert_eq!(
            SaxWord::new(vec![0, 3], 3),
            Err(SaxWordError::SymbolOutOfRange {
                symbol: 3,
                alphabet: 3
            })
        );
        assert_eq!(SaxWord::new(vec![], 3), Err(SaxWordError::Empty));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let w = SaxWord::new(vec![0, 2, 1, 2], 3).unwrap();
        assert_eq!(w.to_string(), "acbc");
        let parsed: SaxWord = "acbc".parse().unwrap();
        assert_eq!(parsed.symbols(), w.symbols());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            "aBc".parse::<SaxWord>(),
            Err(SaxWordError::InvalidCharacter('B'))
        );
        assert_eq!("".parse::<SaxWord>(), Err(SaxWordError::Empty));
    }

    #[test]
    fn parse_single_letter_gets_min_alphabet() {
        let w: SaxWord = "aaaa".parse().unwrap();
        assert_eq!(w.alphabet(), 2);
    }

    #[test]
    fn hamming_distance() {
        let a: SaxWord = "abcd".parse().unwrap();
        let b: SaxWord = "abdd".parse().unwrap();
        assert_eq!(a.hamming(&b), Some(1));
        assert_eq!(a.hamming(&a), Some(0));
        let short: SaxWord = "ab".parse().unwrap();
        assert_eq!(a.hamming(&short), None);
    }

    #[test]
    fn rotation() {
        let w: SaxWord = "abcd".parse().unwrap();
        assert_eq!(w.rotated_left(1).to_string(), "bcda");
        assert_eq!(w.rotated_left(4).to_string(), "abcd");
        assert_eq!(w.rotated_left(6).to_string(), "cdab");
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            SaxWordError::SymbolOutOfRange {
                symbol: 9,
                alphabet: 4
            }
            .to_string(),
            "symbol 9 out of range for alphabet 4"
        );
        assert_eq!(SaxWordError::Empty.to_string(), "empty SAX word");
    }
}
