//! Symbolic Aggregate approXimation (SAX) for the `hdc` workspace.
//!
//! The paper identifies marshalling signs by converting silhouette contours
//! to time series and comparing their SAX strings — citing Keogh et al.,
//! *Finding Motifs in a Database of Shapes* — and claims this is the first
//! use of the technique in real-time vision recognition. This crate is that
//! algorithmic core, built from scratch:
//!
//! * Gaussian [`breakpoints`] for any alphabet size 2–26,
//! * [`SaxWord`] symbol strings with letter display (`abca…`),
//! * the [`SaxEncoder`] (z-normalise → PAA → symbolise),
//! * the [`mindist`] lower-bounding distance with its lookup table,
//! * rotation-invariant matching ([`min_rotated_mindist`]),
//! * a [`SaxIndex`] template database with lower-bound pruning,
//! * parameter [`tuning`] sweeps over word length and alphabet size
//!   (the paper's ref \[22\] tunes exactly these two knobs).
//!
//! # Example
//! ```
//! use hdc_sax::{SaxEncoder, SaxParams};
//! let enc = SaxEncoder::new(SaxParams::new(8, 4).unwrap());
//! let word = enc.encode(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
//! assert_eq!(word.len(), 8);
//! assert!(word.to_string().starts_with('a')); // rising ramp starts low
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakpoints;
mod encoder;
mod index;
mod mindist;
pub mod tuning;
mod word;

pub use breakpoints::{breakpoints, normal_quantile, MAX_ALPHABET, MIN_ALPHABET};
pub use encoder::{SaxEncoder, SaxParams, SaxParamsError};
pub use index::{IndexMatch, IndexMatchRef, QueryScratch, SaxIndex, Template};
pub use mindist::{min_rotated_mindist, mindist, symbol_distance_table};
pub use word::{SaxWord, SaxWordError};
