//! The MINDIST lower-bounding distance between SAX words.

use crate::breakpoints::breakpoints;
use crate::word::SaxWord;

/// Builds the symbol-pair distance table for an alphabet.
///
/// `table[i][j]` is zero when `|i - j| <= 1` and otherwise the gap between
/// the breakpoints separating the two symbols — the classic SAX `dist()`
/// lookup table that makes MINDIST a lower bound of the true Euclidean
/// distance.
pub fn symbol_distance_table(alphabet: u8) -> Vec<Vec<f64>> {
    let bps = breakpoints(alphabet);
    let a = alphabet as usize;
    let mut table = vec![vec![0.0; a]; a];
    for (i, row) in table.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if i.abs_diff(j) > 1 {
                let hi = i.max(j);
                let lo = i.min(j);
                *cell = bps[hi - 1] - bps[lo];
            }
        }
    }
    table
}

/// MINDIST between two SAX words of the same length and alphabet.
///
/// `original_len` is the length `n` of the series the words were encoded
/// from; the `sqrt(n/w)` compensation restores the scale of the original
/// space so MINDIST lower-bounds the true Euclidean distance between the
/// z-normalised series.
///
/// # Panics
/// Panics if the words differ in length or alphabet, or if `original_len`
/// is zero.
///
/// # Example
/// ```
/// use hdc_sax::{mindist, SaxWord};
/// let a: SaxWord = "aabb".parse().unwrap();
/// let same = mindist(&a, &a, 64);
/// assert_eq!(same, 0.0);
/// ```
pub fn mindist(a: &SaxWord, b: &SaxWord, original_len: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "MINDIST needs equal word lengths");
    assert_eq!(
        a.alphabet(),
        b.alphabet(),
        "MINDIST needs matching alphabets"
    );
    assert!(original_len > 0, "original series length must be positive");
    let table = symbol_distance_table(a.alphabet());
    mindist_with_table(a, b, original_len, &table)
}

/// MINDIST with a caller-provided symbol table (avoids rebuilding the table
/// in hot loops — see [`symbol_distance_table`]).
///
/// # Panics
/// Same contracts as [`mindist`]; additionally the table must match the
/// words' alphabet.
pub fn mindist_with_table(
    a: &SaxWord,
    b: &SaxWord,
    original_len: usize,
    table: &[Vec<f64>],
) -> f64 {
    let w = a.len();
    let sum: f64 = a
        .symbols()
        .iter()
        .zip(b.symbols())
        .map(|(x, y)| {
            let d = table[*x as usize][*y as usize];
            d * d
        })
        .sum();
    ((original_len as f64 / w as f64) * sum).sqrt()
}

/// Rotation-invariant MINDIST: the minimum over all circular rotations of
/// `b`, returning `(distance, best_shift)`.
///
/// Rotating the underlying shape circularly shifts its contour signature, so
/// shifting at the (short) word level is a cheap rotation-invariant lower
/// bound — the trick from *Finding Motifs in a Database of Shapes*.
///
/// # Panics
/// Same contracts as [`mindist`].
pub fn min_rotated_mindist(a: &SaxWord, b: &SaxWord, original_len: usize) -> (f64, usize) {
    assert_eq!(a.len(), b.len(), "MINDIST needs equal word lengths");
    assert_eq!(
        a.alphabet(),
        b.alphabet(),
        "MINDIST needs matching alphabets"
    );
    let table = symbol_distance_table(a.alphabet());
    let mut best = (f64::INFINITY, 0usize);
    for shift in 0..b.len() {
        let rotated = b.rotated_left(shift);
        let d = mindist_with_table(a, &rotated, original_len, &table);
        if d < best.0 {
            best = (d, shift);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{SaxEncoder, SaxParams};
    use hdc_timeseries::TimeSeries;

    #[test]
    fn table_structure() {
        let t = symbol_distance_table(4);
        // adjacent symbols are free
        for (i, row) in t.iter().enumerate() {
            assert_eq!(row[i], 0.0);
        }
        assert_eq!(t[0][1], 0.0);
        assert_eq!(t[1][2], 0.0);
        // distant symbols cost breakpoint gaps; table is symmetric
        assert!(t[0][2] > 0.0);
        assert_eq!(t[0][3], t[3][0]);
        assert!((t[0][3] - (0.6744897 + 0.6744897)).abs() < 1e-4);
    }

    #[test]
    fn identical_words_zero() {
        let w: SaxWord = "abcabc".parse().unwrap();
        assert_eq!(mindist(&w, &w, 128), 0.0);
    }

    #[test]
    fn adjacent_symbols_zero() {
        let a: SaxWord = SaxWord::new(vec![0, 1, 2], 4).unwrap();
        let b: SaxWord = SaxWord::new(vec![1, 2, 3], 4).unwrap();
        assert_eq!(mindist(&a, &b, 30), 0.0, "adjacent symbols carry no cost");
    }

    #[test]
    fn scale_compensation() {
        let a = SaxWord::new(vec![0, 0], 4).unwrap();
        let b = SaxWord::new(vec![3, 3], 4).unwrap();
        let d64 = mindist(&a, &b, 64);
        let d16 = mindist(&a, &b, 16);
        assert!((d64 / d16 - 2.0).abs() < 1e-9, "sqrt(n) scaling");
    }

    #[test]
    #[should_panic(expected = "equal word lengths")]
    fn mismatched_lengths_panic() {
        let a: SaxWord = "ab".parse().unwrap();
        let b: SaxWord = "abc".parse().unwrap();
        mindist(&a, &b, 8);
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        // the defining property of MINDIST
        let n = 128usize;
        let s1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let s2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() * 1.5).collect();
        let z1 = TimeSeries::new(s1).znormalized().into_values();
        let z2 = TimeSeries::new(s2).znormalized().into_values();
        let true_d = hdc_timeseries::euclidean(&z1, &z2).unwrap();
        for (w, a) in [(8, 3u8), (16, 4), (32, 6), (16, 10)] {
            let enc = SaxEncoder::new(SaxParams::new(w, a).unwrap());
            let w1 = enc.encode(&z1);
            let w2 = enc.encode(&z2);
            let lb = mindist(&w1, &w2, n);
            assert!(
                lb <= true_d + 1e-9,
                "MINDIST {lb} must lower-bound Euclidean {true_d} for (w={w}, a={a})"
            );
        }
    }

    #[test]
    fn rotation_invariant_recovers_rotation() {
        let enc = SaxEncoder::new(SaxParams::new(16, 5).unwrap());
        let n = 160usize;
        let base: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 3.0 * i as f64 / n as f64).sin())
            .collect();
        let rotated = hdc_timeseries::rotate_left(&base, 40); // quarter turn
        let wa = enc.encode(&base);
        let wb = enc.encode(&rotated);
        let (d, _shift) = min_rotated_mindist(&wa, &wb, n);
        assert!(d < 1e-9, "rotated copy should match at distance 0, got {d}");
        // 40 samples = 4 word positions; rotating wb by 16-4=12 recovers wa
        // exactly (other shifts may tie at 0 because adjacent symbols are
        // free under MINDIST — it is a lower bound, not a metric)
        let table = symbol_distance_table(5);
        let exact = mindist_with_table(&wa, &wb.rotated_left(12), n, &table);
        assert!(
            exact < 1e-9,
            "true rotation must be among the zero-cost shifts"
        );
    }

    #[test]
    fn rotation_invariant_bounded_by_plain() {
        let a: SaxWord = "aabbccdd".parse().unwrap();
        let b: SaxWord = "ddaabbcc".parse().unwrap();
        let plain = mindist(&a, &b, 80);
        let (rot, _) = min_rotated_mindist(&a, &b, 80);
        assert!(rot <= plain);
        assert_eq!(rot, 0.0);
    }
}
