//! Parameter tuning for SAX word length and alphabet size.
//!
//! The paper (ref \[22\]) notes that recognition beyond 65° stayed erratic
//! *"even with tuning of the piecewise aggregation and alphabet size"*. This
//! module provides the sweep machinery used by experiment E10 to reproduce
//! that observation: a full grid evaluation of `(w, a)` pairs under an
//! arbitrary scoring function.

use crate::encoder::{SaxParams, SaxParamsError};
use serde::{Deserialize, Serialize};

/// A scored parameter combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// Word length (PAA segments).
    pub segments: usize,
    /// Alphabet size.
    pub alphabet: u8,
    /// Score assigned by the evaluation function (higher is better).
    pub score: f64,
}

/// Evaluates every `(segments, alphabet)` combination with `eval` and returns
/// results sorted by descending score (ties broken toward smaller words, then
/// smaller alphabets — prefer the cheaper configuration).
///
/// Invalid combinations (zero segments, out-of-range alphabets) are skipped
/// rather than failing the whole sweep.
///
/// # Example
/// ```
/// use hdc_sax::tuning::grid_search;
/// // favour medium-sized words
/// let results = grid_search(&[4, 8, 16], &[3, 4], |p| -((p.segments() as f64) - 8.0).abs());
/// assert_eq!(results[0].segments, 8);
/// ```
pub fn grid_search<F>(segments: &[usize], alphabets: &[u8], mut eval: F) -> Vec<TuningResult>
where
    F: FnMut(SaxParams) -> f64,
{
    let mut out = Vec::with_capacity(segments.len() * alphabets.len());
    for &w in segments {
        for &a in alphabets {
            let params = match SaxParams::new(w, a) {
                Ok(p) => p,
                Err(SaxParamsError::ZeroSegments) | Err(SaxParamsError::AlphabetOutOfRange(_)) => {
                    continue
                }
            };
            let score = eval(params);
            out.push(TuningResult {
                segments: w,
                alphabet: a,
                score,
            });
        }
    }
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.segments.cmp(&y.segments))
            .then(x.alphabet.cmp(&y.alphabet))
    });
    out
}

/// Convenience: the single best configuration from a [`grid_search`], or
/// `None` when every combination was invalid.
pub fn best_params<F>(segments: &[usize], alphabets: &[u8], eval: F) -> Option<SaxParams>
where
    F: FnMut(SaxParams) -> f64,
{
    grid_search(segments, alphabets, eval)
        .first()
        .and_then(|r| SaxParams::new(r.segments, r.alphabet).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_valid_combinations() {
        let res = grid_search(&[4, 8], &[3, 5], |_| 1.0);
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn invalid_combinations_skipped() {
        let res = grid_search(&[0, 4], &[1, 3, 40], |_| 1.0);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].segments, 4);
        assert_eq!(res[0].alphabet, 3);
    }

    #[test]
    fn sorted_by_score_then_cost() {
        let res = grid_search(
            &[16, 4],
            &[4, 3],
            |p| {
                if p.segments() == 4 {
                    2.0
                } else {
                    1.0
                }
            },
        );
        assert_eq!(res[0].segments, 4);
        // ties at segments=4 broken toward the smaller alphabet
        assert_eq!(res[0].alphabet, 3);
        assert_eq!(res[1].alphabet, 4);
    }

    #[test]
    fn best_params_returns_winner() {
        let p = best_params(&[4, 8, 16], &[3, 4, 6], |p| p.segments() as f64).unwrap();
        assert_eq!(p.segments(), 16);
    }

    #[test]
    fn empty_grid_yields_none() {
        assert!(best_params(&[], &[3], |_| 1.0).is_none());
        assert!(best_params(&[0], &[1], |_| 1.0).is_none());
    }
}
