//! The SAX encoder: z-normalise → PAA → symbolise.

use crate::breakpoints::{breakpoints, symbol_for, MAX_ALPHABET, MIN_ALPHABET};
use crate::word::SaxWord;
use hdc_timeseries::{paa, TimeSeries};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validated SAX parameters: word length (PAA segments) and alphabet size.
///
/// These are exactly the two knobs the paper's ref \[22\] tunes ("tuning of the
/// piecewise aggregation and alphabet size").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaxParams {
    segments: usize,
    alphabet: u8,
}

/// Error building [`SaxParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxParamsError {
    /// Word length must be at least 1.
    ZeroSegments,
    /// Alphabet size outside the supported range.
    AlphabetOutOfRange(u8),
}

impl fmt::Display for SaxParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxParamsError::ZeroSegments => write!(f, "SAX word length must be at least 1"),
            SaxParamsError::AlphabetOutOfRange(a) => write!(
                f,
                "alphabet size {a} outside [{MIN_ALPHABET}, {MAX_ALPHABET}]"
            ),
        }
    }
}

impl std::error::Error for SaxParamsError {}

impl SaxParams {
    /// Validates and creates parameters.
    ///
    /// # Errors
    /// See [`SaxParamsError`].
    pub fn new(segments: usize, alphabet: u8) -> Result<Self, SaxParamsError> {
        if segments == 0 {
            return Err(SaxParamsError::ZeroSegments);
        }
        if !(MIN_ALPHABET..=MAX_ALPHABET).contains(&alphabet) {
            return Err(SaxParamsError::AlphabetOutOfRange(alphabet));
        }
        Ok(SaxParams { segments, alphabet })
    }

    /// Word length (number of PAA segments).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> u8 {
        self.alphabet
    }
}

impl Default for SaxParams {
    /// The defaults used throughout the reproduction: 16 segments over a
    /// 4-letter alphabet — small enough for string matching to be cheap, big
    /// enough to keep the three marshalling signs well separated (see the
    /// tuning experiment E10).
    fn default() -> Self {
        SaxParams {
            segments: 16,
            alphabet: 4,
        }
    }
}

impl fmt::Display for SaxParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SAX(w={}, a={})", self.segments, self.alphabet)
    }
}

/// Encodes numeric series into [`SaxWord`]s under fixed parameters.
///
/// # Example
/// ```
/// use hdc_sax::{SaxEncoder, SaxParams};
/// let enc = SaxEncoder::new(SaxParams::new(4, 3).unwrap());
/// let w = enc.encode(&[0.0, 0.0, 10.0, 10.0]);
/// assert_eq!(w.to_string(), "aacc");
/// ```
#[derive(Debug, Clone)]
pub struct SaxEncoder {
    params: SaxParams,
    bps: Vec<f64>,
}

impl SaxEncoder {
    /// Creates an encoder, precomputing the Gaussian breakpoints.
    pub fn new(params: SaxParams) -> Self {
        SaxEncoder {
            params,
            bps: breakpoints(params.alphabet),
        }
    }

    /// The encoder's parameters.
    pub fn params(&self) -> SaxParams {
        self.params
    }

    /// Encodes a raw series: z-normalise, PAA to the word length, symbolise.
    ///
    /// An empty input produces the all-`a` word of the configured length
    /// (matching the z-normalisation convention that flat/absent data maps to
    /// zeros — which symbolise to the interval containing 0).
    pub fn encode(&self, series: &[f64]) -> SaxWord {
        let z = TimeSeries::new(series.to_vec()).znormalized();
        let reduced = if z.is_empty() {
            vec![0.0; self.params.segments]
        } else {
            let mut r = paa(z.values(), self.params.segments);
            // When the series is shorter than the word, stretch by resampling.
            if r.len() < self.params.segments {
                r = hdc_timeseries::resample(&r, self.params.segments);
            }
            r
        };
        let symbols = reduced.iter().map(|v| symbol_for(*v, &self.bps)).collect();
        SaxWord::new(symbols, self.params.alphabet).expect("encoder produces valid symbols")
    }

    /// Encodes an already z-normalised and PAA-reduced frame vector.
    ///
    /// Useful when the caller needs the intermediate PAA values too
    /// (C-INTERMEDIATE): run [`hdc_timeseries::paa`] yourself and symbolise
    /// here.
    pub fn symbolize_frames(&self, frames: &[f64]) -> SaxWord {
        let symbols = frames.iter().map(|v| symbol_for(*v, &self.bps)).collect();
        SaxWord::new(symbols, self.params.alphabet).expect("encoder produces valid symbols")
    }

    /// Symbolises PAA frames into a caller-provided buffer; the
    /// allocation-free form of [`SaxEncoder::symbolize_frames`] used by the
    /// steady-state matching loop.
    pub fn symbolize_into(&self, frames: &[f64], out: &mut Vec<u8>) {
        out.clear();
        out.extend(frames.iter().map(|v| symbol_for(*v, &self.bps)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validate() {
        assert!(SaxParams::new(8, 4).is_ok());
        assert_eq!(SaxParams::new(0, 4), Err(SaxParamsError::ZeroSegments));
        assert_eq!(
            SaxParams::new(8, 1),
            Err(SaxParamsError::AlphabetOutOfRange(1))
        );
        assert_eq!(
            SaxParams::new(8, 27),
            Err(SaxParamsError::AlphabetOutOfRange(27))
        );
        assert_eq!(SaxParams::default().segments(), 16);
    }

    #[test]
    fn ramp_encodes_monotonically() {
        let enc = SaxEncoder::new(SaxParams::new(8, 4).unwrap());
        let series: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let w = enc.encode(&series);
        let s = w.symbols();
        for win in s.windows(2) {
            assert!(win[0] <= win[1], "ramp must be non-decreasing: {w}");
        }
        assert_eq!(s[0], 0);
        assert_eq!(s[7], 3);
    }

    #[test]
    fn square_wave_uses_extremes() {
        let enc = SaxEncoder::new(SaxParams::new(4, 3).unwrap());
        let w = enc.encode(&[0.0, 0.0, 10.0, 10.0]);
        assert_eq!(w.to_string(), "aacc");
    }

    #[test]
    fn constant_series_is_mid_alphabet() {
        let enc = SaxEncoder::new(SaxParams::new(4, 4).unwrap());
        let w = enc.encode(&[5.0; 32]);
        // znorm(constant) = 0, symbol_for(0) with even alphabet = upper-middle
        assert_eq!(w.to_string(), "cccc");
    }

    #[test]
    fn short_series_stretches() {
        let enc = SaxEncoder::new(SaxParams::new(8, 3).unwrap());
        let w = enc.encode(&[0.0, 1.0]);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn empty_series_is_flat_word() {
        let enc = SaxEncoder::new(SaxParams::new(5, 4).unwrap());
        let w = enc.encode(&[]);
        assert_eq!(w.len(), 5);
        assert_eq!(w.to_string(), "ccccc");
    }

    #[test]
    fn scaling_invariance() {
        // z-normalisation makes encoding invariant to offset and scale
        let enc = SaxEncoder::new(SaxParams::new(8, 5).unwrap());
        let base: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.4).sin()).collect();
        let scaled: Vec<f64> = base.iter().map(|v| v * 37.0 + 120.0).collect();
        assert_eq!(enc.encode(&base), enc.encode(&scaled));
    }

    #[test]
    fn display() {
        assert_eq!(SaxParams::default().to_string(), "SAX(w=16, a=4)");
    }
}
