//! Conformance of the temporal-coherence gate (`hdc_vision::temporal`).
//!
//! * **Strict mode is exact**: on arbitrary streams with repeated frames,
//!   the gated engine output is byte-identical to the ungated path at 1, 2
//!   and 4 workers (property test).
//! * **Approximate mode is deterministic**: per-stream recognisers make the
//!   output worker-count independent even though decisions may diverge
//!   (boundedly) from the oracle.
//! * Gate counters add up and hit when they should.

use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::GrayImage;
use hdc_vision::temporal::{GateMode, TemporalConfig};
use hdc_vision::{PipelineConfig, RecognitionEngine, RecognitionPipeline};
use proptest::prelude::*;
use std::sync::OnceLock;

fn view_at(width: u32, azimuth_deg: f64) -> ViewSpec {
    let mut v = ViewSpec::paper_default(azimuth_deg, 5.0, 3.0);
    let scale = width as f64 / v.width as f64;
    v.width = width;
    v.height = (v.height as f64 * scale) as u32;
    v.focal_px *= scale;
    v
}

/// The shared frame pool: all three signs at three azimuths (accepts,
/// ambiguous obliques) plus an empty reject frame, at 320×240.
fn frame_pool() -> &'static Vec<GrayImage> {
    static POOL: OnceLock<Vec<GrayImage>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut frames = Vec::new();
        for az in [0.0, 20.0, 90.0] {
            for sign in MarshallingSign::ALL {
                frames.push(render_sign(sign, &view_at(320, az)));
            }
        }
        frames.push(GrayImage::new(320, 240));
        frames
    })
}

fn pipeline() -> &'static RecognitionPipeline {
    static PIPELINE: OnceLock<RecognitionPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        p
    })
}

fn engine(threads: usize) -> RecognitionEngine {
    RecognitionEngine::new(pipeline().clone(), Some(threads))
}

/// Streams built as `(pool index, repeat count)` runs — repeats are what
/// give the strict gate something to hit.
fn streams_strategy() -> impl Strategy<Value = Vec<Vec<GrayImage>>> {
    let run = (0usize..frame_pool().len(), 1usize..4);
    let stream = prop::collection::vec(run, 1..5);
    prop::collection::vec(stream, 1..4).prop_map(|streams| {
        streams
            .into_iter()
            .map(|runs| {
                runs.into_iter()
                    .flat_map(|(idx, reps)| {
                        std::iter::repeat_with(move || frame_pool()[idx].clone()).take(reps)
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn strict_gated_output_is_byte_identical_to_ungated_at_any_worker_count(
        streams in streams_strategy(),
        passes in 1usize..3,
    ) {
        let oracle = engine(1).process_streams(&streams, passes, TemporalConfig::off());
        for workers in [1, 2, 4] {
            let strict = engine(workers).process_streams(&streams, passes, TemporalConfig::strict());
            prop_assert_eq!(&strict, &oracle, "strict vs ungated at {} workers", workers);
        }
    }

    #[test]
    fn approximate_output_is_worker_count_independent(
        streams in streams_strategy(),
    ) {
        let one = engine(1).process_streams(&streams, 2, TemporalConfig::approximate());
        for workers in [2, 4] {
            let many = engine(workers).process_streams(&streams, 2, TemporalConfig::approximate());
            prop_assert_eq!(&many, &one, "approximate at {} workers", workers);
        }
    }
}

#[test]
fn strict_gate_hits_on_repeated_frames_and_counters_add_up() {
    let frame = frame_pool()[0].clone();
    let streams = vec![vec![frame.clone(), frame.clone(), frame]];
    let e = engine(2);
    let report = e.run_streams_gated(&streams, 9, 0.0, TemporalConfig::strict());
    let gate = report.gate_totals();
    assert_eq!(gate.frames(), report.total_frames());
    // first frame computes, every later repeat and cycle is byte-identical
    assert_eq!(gate.full_runs, 1);
    assert_eq!(gate.strict_hits, report.total_frames() - 1);
    assert_eq!(gate.approx_hits, 0);
}

#[test]
fn ungated_run_streams_reports_only_full_runs() {
    let streams = vec![vec![frame_pool()[0].clone()]; 2];
    let report = engine(2).run_streams(&streams, 3, 0.0);
    let gate = report.gate_totals();
    assert_eq!(gate.full_runs, report.total_frames());
    assert_eq!(gate.hits(), 0);
}

#[test]
fn gated_stream_decisions_match_ungated_counts_in_strict_mode() {
    // decided counts are decision-derived, so strict gating must reproduce
    // them exactly whatever the worker count
    let streams: Vec<Vec<GrayImage>> = (0..3)
        .map(|s| {
            let mut v = frame_pool().clone();
            v.rotate_left(s);
            v
        })
        .collect();
    let min_frames = streams[0].len() * 2;
    let ungated = engine(1).run_streams(&streams, min_frames, 0.0);
    for workers in [1, 2, 4] {
        let strict =
            engine(workers).run_streams_gated(&streams, min_frames, 0.0, TemporalConfig::strict());
        for (u, s) in ungated.per_stream.iter().zip(&strict.per_stream) {
            // frame counts differ by timing (floors), decision *rate* must not
            assert_eq!(
                u.decided * s.frames,
                s.decided * u.frames,
                "decision rate must match the ungated path"
            );
        }
    }
}

#[test]
fn approximate_counters_split_identity_from_tolerance_hits() {
    let mut config = TemporalConfig::approximate();
    config.mode = GateMode::Approximate;
    // consecutive distinct frames: the identity pre-check can never fire...
    let streams = vec![frame_pool().clone()];
    let report = engine(1).run_streams_gated(&streams, frame_pool().len() * 3, 0.0, config);
    let gate = report.gate_totals();
    assert_eq!(gate.frames(), report.total_frames());
    assert_eq!(
        gate.strict_hits, 0,
        "no consecutive duplicates in this workload"
    );
    // ...while a stream of oversampled duplicates resolves via identity
    let dup = frame_pool()[0].clone();
    let report = engine(1).run_streams_gated(
        &[vec![dup.clone(), dup.clone(), dup]],
        6,
        0.0,
        TemporalConfig::approximate(),
    );
    let gate = report.gate_totals();
    assert_eq!(gate.full_runs, 1);
    assert_eq!(gate.strict_hits, report.total_frames() - 1);
}
