//! Proves the dynamic (motion-pattern) recogniser is allocation-free in
//! steady state, mirroring the `zero_alloc` test for the static pipeline.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! pass has grown the sliding window, the labelling scratch and the aspect
//! buffer to their high-water marks, further `push` + `decision` rounds
//! must leave the allocation counter untouched — including no-blob frames
//! (which take the early-return path).

use hdc_figure::{render_pose, MarshallingSign, Pose, ViewSpec};
use hdc_raster::threshold::binarize;
use hdc_raster::Bitmap;
use hdc_vision::dynamic::{DynamicConfig, DynamicDecision, DynamicRecognizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn dynamic_recognizer_is_allocation_free_after_warmup() {
    let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
    // A steady-state wave-off stream (1 Hz sweep at 10 fps) with an empty
    // reject mask riding along, all masks precomputed so the measured loop
    // is exactly push + decision.
    let masks: Vec<Bitmap> = (0..40)
        .map(|i| {
            binarize(
                &render_pose(Pose::wave_off_phase(i as f64 * 0.1), &view),
                128,
            )
        })
        .collect();
    let empty = Bitmap::new(64, 64);
    let hold = binarize(
        &render_pose(Pose::for_sign(MarshallingSign::Yes), &view),
        128,
    );

    let mut rec = DynamicRecognizer::new(DynamicConfig::default());
    // Warm-up: slide the full window through waves, holds and rejects so
    // every internal buffer reaches its high-water mark.
    let mut t = 0.0;
    for mask in masks.iter().chain(std::iter::once(&hold)) {
        assert!(rec.push(t, mask));
        let _ = rec.decision();
        t += 0.1;
    }
    assert!(!rec.push(t, &empty), "empty mask must be rejected");
    assert_eq!(rec.decision(), DynamicDecision::WaveOff);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        for mask in &masks {
            assert!(rec.push(t, mask));
            std::hint::black_box(rec.decision());
            t += 0.1;
        }
        assert!(!rec.push(t, &empty));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state push + decision must not allocate"
    );
}
