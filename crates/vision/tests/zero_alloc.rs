//! Proves the steady-state frame loop is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after one warm-up
//! frame per resolution has grown every scratch buffer to capacity, running
//! further frames through `recognize_with` must leave the allocation counter
//! untouched — including reject frames (empty masks, sub-minimum blobs).

use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::GrayImage;
use hdc_vision::{FrameScratch, KernelPath, PipelineConfig, RecognitionPipeline};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn view_at(width: u32, azimuth_deg: f64) -> ViewSpec {
    let mut v = ViewSpec::paper_default(azimuth_deg, 5.0, 3.0);
    let scale = width as f64 / v.width as f64;
    v.width = width;
    v.height = (v.height as f64 * scale) as u32;
    v.focal_px *= scale;
    v
}

fn assert_allocation_free(kernels: KernelPath) {
    let config = PipelineConfig {
        kernels,
        ..PipelineConfig::default()
    };
    let mut pipeline = RecognitionPipeline::new(config);
    pipeline.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));

    // A mixed steady-state stream: several signs and azimuths, plus reject
    // frames (all-background and a single sub-minimum speck).
    let mut frames = Vec::new();
    for sign in MarshallingSign::ALL {
        for az in [0.0, 12.0] {
            frames.push(render_sign(sign, &view_at(320, az)));
        }
    }
    let empty = GrayImage::new(320, 240);
    let mut speck = GrayImage::new(320, 240);
    speck.set(10, 10, 255);
    frames.push(empty);
    frames.push(speck);

    let mut scratch = FrameScratch::new();
    // Warm-up: one full pass grows every scratch buffer to its high-water mark.
    let mut warm_decisions = Vec::new();
    for frame in &frames {
        let r = pipeline.recognize_with(&mut scratch, frame);
        warm_decisions.push(r.decision.map(str::to_owned));
    }
    assert!(
        warm_decisions.iter().any(Option::is_some),
        "warm-up stream must exercise the accept path"
    );
    assert!(
        warm_decisions.iter().any(Option::is_none),
        "warm-up stream must exercise the reject path"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        for (frame, expected) in frames.iter().zip(&warm_decisions) {
            let r = pipeline.recognize_with(&mut scratch, frame);
            assert_eq!(&r.decision.map(str::to_owned), expected);
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    // The decision comparison above allocates (map(str::to_owned)), so count
    // a pure recognition pass separately: zero tolerance there.
    let before_pure = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        for frame in &frames {
            let r = pipeline.recognize_with(&mut scratch, frame);
            std::hint::black_box(&r);
        }
    }
    let after_pure = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after_pure - before_pure,
        0,
        "steady-state recognize_with ({kernels:?}) must not allocate \
         (warm loop allocated {} times)",
        after - before
    );
}

#[test]
fn recognize_with_is_allocation_free_after_warmup() {
    assert_allocation_free(KernelPath::Byte);
}

#[test]
fn packed_recognize_with_is_allocation_free_after_warmup() {
    assert_allocation_free(KernelPath::Packed);
}

#[test]
fn hybrid_recognize_with_is_allocation_free_after_warmup() {
    assert_allocation_free(KernelPath::Hybrid);
}
