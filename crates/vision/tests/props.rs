//! Property-based tests for the vision pipeline's invariants.

use hdc_figure::{render_pose, MarshallingSign, Pose, ViewSpec};
use hdc_geometry::Vec2;
use hdc_raster::threshold::binarize;
use hdc_raster::{draw, Bitmap, GrayImage};
use hdc_vision::dynamic::frame_features;
use hdc_vision::{extract_signature, hu_moments};
use proptest::prelude::*;

fn blob_mask(cx: f64, cy: f64, r: f64, size: u32) -> Bitmap {
    let mut img = GrayImage::new(size, size);
    draw::fill_disk(&mut img, Vec2::new(cx, cy), r, 255);
    binarize(&img, 128)
}

proptest! {
    #[test]
    fn signature_has_requested_length(
        r in 6.0f64..20.0,
        len in 16usize..256,
    ) {
        let m = blob_mask(32.0, 32.0, r, 64);
        let sig = extract_signature(&m, len).unwrap();
        prop_assert_eq!(sig.series.len(), len);
        prop_assert!(sig.series.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn signature_translation_invariant(
        dx in -10.0f64..10.0,
        dy in -10.0f64..10.0,
    ) {
        // a structured shape (elongated capsule): a disk would be degenerate —
        // its constant radius series z-normalises to pure rasterisation noise
        let bar = |cx: f64, cy: f64| {
            let mut img = GrayImage::new(96, 96);
            draw::fill_tapered_capsule(
                &mut img,
                Vec2::new(cx - 18.0, cy),
                6.0,
                Vec2::new(cx + 18.0, cy),
                6.0,
                255,
            );
            binarize(&img, 128)
        };
        let a = extract_signature(&bar(48.0, 48.0), 64).unwrap();
        let b = extract_signature(&bar(48.0 + dx, 48.0 + dy), 64).unwrap();
        // same shape anywhere in frame ⇒ nearly identical signature (up to a
        // circular shift from the trace's start pixel; minimise over shifts)
        let (d, _) = hdc_timeseries::min_rotated_euclidean(&a.series, &b.series, 1).unwrap();
        prop_assert!(d < 2.0, "translation changed the signature by {}", d);
    }

    #[test]
    fn signature_mean_radius_scales(r in 8.0f64..25.0) {
        let sig = extract_signature(&blob_mask(40.0, 40.0, r, 96), 64).unwrap();
        prop_assert!((sig.mean_radius - r).abs() < 2.5, "mean radius {} vs r {}", sig.mean_radius, r);
    }

    #[test]
    fn hu_moments_translation_invariant(
        dx in -12.0f64..12.0,
        dy in -12.0f64..12.0,
    ) {
        let a = hu_moments(&blob_mask(40.0, 40.0, 10.0, 80)).unwrap();
        let b = hu_moments(&blob_mask(40.0 + dx, 40.0 + dy, 10.0, 80)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn rendered_poses_always_have_features(
        la in 0.0f64..2.8,
        lf in 0.0f64..2.0,
        ra in 0.0f64..2.8,
        rf in 0.0f64..2.0,
    ) {
        let pose = Pose {
            left_abduction: la,
            left_flexion: lf,
            right_abduction: ra,
            right_flexion: rf,
            stance_half_width: 0.12,
        };
        let frame = render_pose(pose, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let mask = binarize(&frame, 128);
        let f = frame_features(&mask).expect("figure visible");
        prop_assert!(f.aspect > 0.05 && f.aspect < 5.0);
        prop_assert!((0.0..=1.0).contains(&f.centroid_x));
        // the signature must be extractable from every plausible pose too
        let sig = extract_signature(&mask, 128);
        prop_assert!(sig.is_ok());
    }

    #[test]
    fn jittered_canonical_signs_stay_recognizable(seed in 0u64..40) {
        use rand::{rngs::SmallRng, SeedableRng};
        use hdc_vision::{PipelineConfig, RecognitionPipeline};
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        let mut rng = SmallRng::seed_from_u64(seed);
        let sign = MarshallingSign::ALL[(seed % 3) as usize];
        let pose = Pose::for_sign(sign).jittered(0.03, &mut rng);
        let frame = render_pose(pose, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let r = p.recognize(&frame);
        prop_assert_eq!(r.decision.as_deref(), Some(sign.label()));
    }
}
