//! Byte-vs-packed(-vs-hybrid) kernel equivalence at the pipeline level.
//!
//! The packed and hybrid kernels are only admissible if they change
//! *nothing* but speed: same decisions, same diagnostics, same signature
//! series, bit for bit, across accept frames, reject frames, noisy frames
//! and both segmentation modes. The byte path is the oracle.

use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::GrayImage;
use hdc_vision::{FrameScratch, KernelPath, PipelineConfig, RecognitionPipeline, SegmentationMode};

/// The kernel paths that must reproduce the byte oracle exactly.
const CANDIDATES: [KernelPath; 2] = [KernelPath::Packed, KernelPath::Hybrid];

fn pipelines(
    base: PipelineConfig,
    kernels: KernelPath,
) -> (RecognitionPipeline, RecognitionPipeline) {
    let byte_cfg = PipelineConfig {
        kernels: KernelPath::Byte,
        ..base
    };
    let candidate_cfg = PipelineConfig { kernels, ..base };
    let mut byte = RecognitionPipeline::new(byte_cfg);
    let mut candidate = RecognitionPipeline::new(candidate_cfg);
    let canonical = ViewSpec::paper_default(0.0, 5.0, 3.0);
    byte.calibrate_from_views(&canonical);
    candidate.calibrate_from_views(&canonical);
    (byte, candidate)
}

fn assert_streams_identical(
    byte: &RecognitionPipeline,
    packed: &RecognitionPipeline,
    frames: &[GrayImage],
    context: &str,
) {
    let mut sb = FrameScratch::new();
    let mut sp = FrameScratch::new();
    for (i, frame) in frames.iter().enumerate() {
        let rb = byte.recognize_with(&mut sb, frame);
        let rp = packed.recognize_with(&mut sp, frame);
        assert_eq!(rb.decision, rp.decision, "{context} frame {i}: decision");
        assert_eq!(
            rb.best.map(|m| (m.label.to_owned(), m.distance)),
            rp.best.map(|m| (m.label.to_owned(), m.distance)),
            "{context} frame {i}: best match"
        );
        assert_eq!(rb.runner_up, rp.runner_up, "{context} frame {i}: runner-up");
        assert_eq!(rb.failure, rp.failure, "{context} frame {i}: failure");
        match (rb.stats, rp.stats) {
            (Some(a), Some(b)) => {
                assert_eq!(a.contour_len, b.contour_len, "{context} frame {i}");
                assert_eq!(a.centroid, b.centroid, "{context} frame {i}");
                assert_eq!(a.mean_radius, b.mean_radius, "{context} frame {i}");
                assert_eq!(
                    sb.signature_series(),
                    sp.signature_series(),
                    "{context} frame {i}: signature series"
                );
            }
            (None, None) => {}
            other => panic!("{context} frame {i}: stats availability differs: {other:?}"),
        }
    }
}

fn view_sweep() -> Vec<GrayImage> {
    let mut frames = Vec::new();
    for sign in MarshallingSign::ALL {
        for az in [0.0, 12.0, 30.0, 45.0, 65.0, 90.0] {
            frames.push(render_sign(sign, &ViewSpec::paper_default(az, 5.0, 3.0)));
        }
        for alt in [2.5, 4.0, 8.0] {
            frames.push(render_sign(sign, &ViewSpec::paper_default(0.0, alt, 3.0)));
        }
    }
    // Reject frames: empty, sub-minimum speck, single column of pixels.
    frames.push(GrayImage::new(320, 240));
    let mut speck = GrayImage::new(320, 240);
    speck.set(10, 10, 255);
    frames.push(speck);
    let mut column = GrayImage::new(320, 240);
    for y in 40..200 {
        column.set(160, y, 255);
    }
    frames.push(column);
    frames
}

#[test]
fn packed_decisions_match_byte_decisions() {
    for kernels in CANDIDATES {
        let (byte, candidate) = pipelines(PipelineConfig::default(), kernels);
        let context = format!("default config, {kernels:?}");
        assert_streams_identical(&byte, &candidate, &view_sweep(), &context);
    }
}

#[test]
fn packed_matches_byte_with_denoise_and_noise() {
    use rand::{rngs::SmallRng, SeedableRng};
    let base = PipelineConfig {
        denoise: true,
        ..PipelineConfig::default()
    };
    for kernels in CANDIDATES {
        let (byte, candidate) = pipelines(base, kernels);
        let mut rng = SmallRng::seed_from_u64(4242);
        let frames: Vec<GrayImage> = view_sweep()
            .into_iter()
            .map(|mut f| {
                hdc_raster::noise::add_salt_pepper(&mut f, 0.02, &mut rng);
                f
            })
            .collect();
        let context = format!("denoise + salt-pepper, {kernels:?}");
        assert_streams_identical(&byte, &candidate, &frames, &context);
    }
}

#[test]
fn packed_matches_byte_under_otsu() {
    let base = PipelineConfig {
        segmentation: SegmentationMode::Otsu,
        ..PipelineConfig::default()
    };
    for kernels in CANDIDATES {
        let (byte, candidate) = pipelines(base, kernels);
        let context = format!("otsu, {kernels:?}");
        assert_streams_identical(&byte, &candidate, &view_sweep(), &context);
    }
}

#[test]
fn packed_matches_byte_at_odd_resolutions() {
    // Frame widths that are not multiples of 64 exercise the tail-word
    // handling of every packed kernel end to end.
    for kernels in CANDIDATES {
        let (byte, candidate) = pipelines(PipelineConfig::default(), kernels);
        let mut frames = Vec::new();
        for width in [130u32, 321, 333] {
            for sign in MarshallingSign::ALL {
                let mut v = ViewSpec::paper_default(10.0, 5.0, 3.0);
                let scale = width as f64 / v.width as f64;
                v.width = width;
                v.height = (v.height as f64 * scale) as u32;
                v.focal_px *= scale;
                frames.push(render_sign(sign, &v));
            }
        }
        let context = format!("odd widths, {kernels:?}");
        assert_streams_identical(&byte, &candidate, &frames, &context);
    }
}
