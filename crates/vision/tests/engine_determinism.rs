//! Determinism guard for the multi-core engine: `process_batch` must be
//! byte-identical at 1, 2 and 4 workers, and equal to the serial
//! single-scratch path. (`Recognition` is timing-free precisely so this
//! comparison is exact, `f64` bits included.)

use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::GrayImage;
use hdc_vision::{PipelineConfig, RecognitionEngine, RecognitionPipeline};

fn calibrated() -> RecognitionPipeline {
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    p
}

/// A batch mixing every sign, a sweep of azimuths (decides, ambiguous and
/// dead-angle rejects), two resolutions, and blob failures.
fn adversarial_batch() -> Vec<GrayImage> {
    let mut frames = Vec::new();
    for az in [0.0, 10.0, 25.0, 40.0, 65.0, 90.0, 105.0] {
        for sign in MarshallingSign::ALL {
            let mut v = ViewSpec::paper_default(az, 5.0, 3.0);
            frames.push(render_sign(sign, &v));
            v.width = 320;
            v.height = 240;
            v.focal_px = 320.0;
            frames.push(render_sign(sign, &v));
        }
    }
    frames.push(GrayImage::new(32, 32)); // no blob
    let mut tiny = GrayImage::new(64, 64); // blob below the area floor
    tiny.set(5, 5, 255);
    tiny.set(6, 5, 255);
    frames.push(tiny);
    frames
}

#[test]
fn process_batch_is_identical_across_worker_counts() {
    let frames = adversarial_batch();
    let serial = RecognitionEngine::new(calibrated(), Some(1)).process_serial(&frames);
    assert!(
        serial.iter().any(|r| r.decided()) && serial.iter().any(|r| !r.decided()),
        "batch must exercise both decided and rejected frames"
    );
    for workers in [1usize, 2, 4] {
        let engine = RecognitionEngine::new(calibrated(), Some(workers));
        let batch = engine.process_batch(&frames);
        assert_eq!(
            batch, serial,
            "{workers}-worker batch must be byte-identical to the serial path"
        );
    }
}

#[test]
fn repeated_batches_on_one_engine_are_stable() {
    // worker scratch reuse across batches must not bleed into results
    let engine = RecognitionEngine::new(calibrated(), Some(2));
    let frames = adversarial_batch();
    let first = engine.process_batch(&frames);
    let second = engine.process_batch(&frames);
    assert_eq!(first, second);
}
