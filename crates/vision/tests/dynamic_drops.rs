//! Temporal filtering under frame drops.
//!
//! The dynamic (wave-off) recogniser operates on a timestamped sliding
//! window, so lost camera frames shrink its evidence but must not corrupt
//! it: a real wave survives substantial loss, a held sign never turns into
//! a phantom wave, and starving the window degrades to *Inconclusive* —
//! never to a wrong decision.

use hdc_figure::{render_pose, MarshallingSign, Pose, ViewSpec};
use hdc_raster::threshold::binarize;
use hdc_raster::Bitmap;
use hdc_vision::dynamic::{DynamicConfig, DynamicDecision, DynamicRecognizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mask_of(pose: Pose) -> Bitmap {
    let frame = render_pose(pose, &ViewSpec::paper_default(0.0, 5.0, 3.0));
    binarize(&frame, 128)
}

/// The session's listening configuration (0.5 s cadence, 6 s window).
fn session_config() -> DynamicConfig {
    DynamicConfig {
        window_s: 6.0,
        min_cycles: 2,
        min_amplitude: 0.12,
        static_max_sd: 0.03,
        min_frames: 6,
    }
}

/// Feeds `seconds` of the given activity at `dt` cadence, dropping each
/// frame with probability `drop_p` (seeded, reproducible).
fn feed(
    rec: &mut DynamicRecognizer,
    seconds: f64,
    dt: f64,
    drop_p: f64,
    seed: u64,
    pose_at: impl Fn(f64) -> Pose,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let steps = (seconds / dt).round() as usize;
    for i in 0..steps {
        let t = i as f64 * dt;
        if rng.gen::<f64>() < drop_p {
            continue; // frame lost in transport
        }
        rec.push(t, &mask_of(pose_at(t)));
    }
}

#[test]
fn wave_off_survives_one_third_frame_loss() {
    for seed in 0..5 {
        let mut rec = DynamicRecognizer::new(DynamicConfig::default());
        feed(&mut rec, 3.0, 0.1, 0.33, seed, Pose::wave_off_phase);
        assert_eq!(
            rec.decision(),
            DynamicDecision::WaveOff,
            "1 Hz wave must survive 33% loss (seed {seed})"
        );
    }
}

#[test]
fn wave_off_survives_loss_at_session_cadence() {
    // the session samples at 0.5 s; a 0.5 Hz wave gives 4 samples/cycle, and
    // dropping a quarter of them must still leave ≥2 detectable cycles
    for seed in 0..5 {
        let mut rec = DynamicRecognizer::new(session_config());
        feed(&mut rec, 8.0, 0.5, 0.25, seed, |t| {
            Pose::wave_off_phase(t * 0.5)
        });
        assert_eq!(
            rec.decision(),
            DynamicDecision::WaveOff,
            "session-cadence wave must survive 25% loss (seed {seed})"
        );
    }
}

#[test]
fn lossy_wave_degrades_conservatively_never_to_static() {
    // when loss thins a slower wave below the cycle-evidence threshold the
    // recogniser may withhold judgement, but it must never misread the
    // motion as a held static sign
    for freq in [0.25, 0.4, 0.5] {
        for seed in 0..6 {
            let mut rec = DynamicRecognizer::new(session_config());
            feed(&mut rec, 8.0, 0.5, 0.25, seed, |t| {
                Pose::wave_off_phase(t * freq)
            });
            assert_ne!(
                rec.decision(),
                DynamicDecision::StaticHold,
                "a {freq} Hz wave under loss (seed {seed}) must not read as static"
            );
        }
    }
}

#[test]
fn held_signs_never_alias_to_a_wave_under_drops() {
    // frame loss changes *which* samples of a static pose are seen; since
    // they are all identical, no drop pattern can fabricate oscillation
    for sign in MarshallingSign::ALL {
        for seed in 0..4 {
            let mut rec = DynamicRecognizer::new(session_config());
            let pose = Pose::for_sign(sign);
            feed(&mut rec, 8.0, 0.5, 0.4, seed, |_| pose);
            assert_ne!(
                rec.decision(),
                DynamicDecision::WaveOff,
                "{sign} under 40% loss (seed {seed}) must not read as a wave"
            );
        }
    }
}

#[test]
fn starved_window_is_inconclusive_not_wrong() {
    // 90% loss leaves too few frames: the recogniser must withhold judgement
    let mut rec = DynamicRecognizer::new(session_config());
    feed(&mut rec, 4.0, 0.5, 0.9, 3, Pose::wave_off_phase);
    assert!(rec.len() < 6, "sanity: the window really is starved");
    assert_eq!(rec.decision(), DynamicDecision::Inconclusive);
}

#[test]
fn burst_loss_followed_by_clean_frames_recovers() {
    // a 2 s blackout mid-wave: once frames resume, the window refills and
    // the wave is detected again
    let mut rec = DynamicRecognizer::new(DynamicConfig::default());
    for i in 0..50 {
        let t = i as f64 * 0.1;
        if (1.0..3.0).contains(&t) {
            continue; // blackout
        }
        rec.push(t, &mask_of(Pose::wave_off_phase(t)));
    }
    assert_eq!(rec.decision(), DynamicDecision::WaveOff);
}
