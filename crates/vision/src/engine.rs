//! Multi-core recognition: batches and sustained multi-stream serving.
//!
//! [`RecognitionEngine`] owns one immutable [`RecognitionPipeline`] shared
//! across the workers of a [`WorkPool`], plus one [`FrameScratch`] per
//! worker, and serves two shapes of load:
//!
//! * [`RecognitionEngine::process_batch`] — N independent frames fanned out
//!   over the pool, results in input order. The determinism contract is
//!   inherited from the pool and from `recognize_with` (whose output does
//!   not depend on scratch history): the returned vector is **byte-identical
//!   at every worker count**, including the serial path.
//! * [`RecognitionEngine::run_streams`] — S simulated camera streams served
//!   concurrently for a wall-clock window, the shape of a drone fleet
//!   feeding one ground station. Each stream is an independent task cycling
//!   its own frame sequence; the report carries per-stream and aggregate
//!   throughput.
//!
//! Results are [`Recognition`] values: the owned, *timing-free* projection
//! of [`FrameResult`]. Dropping the wall-clock stage timings is what makes
//! batch output comparable across runs and worker counts.

use crate::pipeline::{FrameResult, FrameScratch, RecognitionPipeline};
use crate::temporal::{GateCounters, StreamRecognizer, TemporalConfig};
use hdc_raster::GrayImage;
use hdc_runtime::WorkPool;
use std::time::Instant;

/// The owned, deterministic outcome of recognising one frame in a batch:
/// everything in [`FrameResult`] except the wall-clock timings (which would
/// make byte-identity across worker counts meaningless) and the borrowed
/// lifetimes (which would pin the batch to the engine borrow).
#[derive(Debug, Clone, PartialEq)]
pub struct Recognition {
    /// The accepted sign label, or `None` when nothing matched.
    pub decision: Option<String>,
    /// Exact distance of the best database match regardless of threshold.
    pub best_distance: Option<f64>,
    /// Label of the best database match regardless of threshold.
    pub best_label: Option<String>,
    /// Exact distance to the best template of a different label.
    pub runner_up: Option<f64>,
    /// Failure reason when no signature could be extracted.
    pub failure: Option<crate::pipeline::FrameFailure>,
}

impl Recognition {
    /// Projects a borrowed per-frame result into its owned, timing-free
    /// batch form.
    pub fn from_frame_result(r: &FrameResult<'_>) -> Self {
        Recognition {
            decision: r.decision.map(str::to_owned),
            best_distance: r.best.as_ref().map(|b| b.distance),
            best_label: r.best.as_ref().map(|b| b.label.to_owned()),
            runner_up: r.runner_up,
            failure: r.failure,
        }
    }

    /// Whether the frame produced an accepted decision.
    pub fn decided(&self) -> bool {
        self.decision.is_some()
    }
}

/// Throughput of one simulated camera stream over the shared wall-clock
/// window of a [`RecognitionEngine::run_streams`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames this stream processed during the window.
    pub frames: usize,
    /// Frames that produced an accepted decision.
    pub decided: usize,
    /// How the temporal gate resolved this stream's frames (all
    /// `full_runs` when gating is off).
    pub gate: GateCounters,
}

impl StreamStats {
    /// Fraction of this stream's frames the gate resolved without a full
    /// pipeline run (0 for an empty stream) — the per-stream number a
    /// serving layer budgets against, as opposed to the fleet aggregate.
    pub fn hit_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.gate.hits() as f64 / self.frames as f64
        }
    }
}

/// The outcome of a sustained multi-stream run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStreamReport {
    /// Per-stream statistics, in stream order.
    pub per_stream: Vec<StreamStats>,
    /// Wall-clock seconds of the whole window.
    pub seconds: f64,
    /// Worker count that served the streams.
    pub workers: usize,
}

impl MultiStreamReport {
    /// Total frames across all streams.
    pub fn total_frames(&self) -> usize {
        self.per_stream.iter().map(|s| s.frames).sum()
    }

    /// Aggregate frames per second across all streams.
    pub fn aggregate_fps(&self) -> f64 {
        self.total_frames() as f64 / self.seconds
    }

    /// Sustained frames per second seen by one stream's consumer.
    pub fn stream_fps(&self, stream: usize) -> f64 {
        self.per_stream[stream].frames as f64 / self.seconds
    }

    /// Total frames that produced an accepted decision, across all streams.
    pub fn decided_total(&self) -> usize {
        self.per_stream.iter().map(|s| s.decided).sum()
    }

    /// Aggregate gate counters across all streams.
    pub fn gate_totals(&self) -> GateCounters {
        self.per_stream
            .iter()
            .fold(GateCounters::default(), |acc, s| acc.plus(&s.gate))
    }

    /// One stream's gate counters (the per-stream view `gate_totals`
    /// aggregates away).
    pub fn stream_gate(&self, stream: usize) -> GateCounters {
        self.per_stream[stream].gate
    }
}

/// A multi-core recognition engine: one shared immutable pipeline, one
/// scratch per worker. See the module docs.
#[derive(Debug, Clone)]
pub struct RecognitionEngine {
    pipeline: RecognitionPipeline,
    pool: WorkPool,
}

impl RecognitionEngine {
    /// An engine over `pipeline` with `threads` workers (`None` → one per
    /// available hardware thread).
    pub fn new(pipeline: RecognitionPipeline, threads: Option<usize>) -> Self {
        RecognitionEngine {
            pipeline,
            pool: WorkPool::with_threads(threads),
        }
    }

    /// The shared pipeline.
    pub fn pipeline(&self) -> &RecognitionPipeline {
        &self.pipeline
    }

    /// Worker count of the underlying pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Recognises one frame into the owned batch form (the serial building
    /// block both [`RecognitionEngine::process_batch`] and external
    /// baselines share, so equivalence tests compare like with like).
    pub fn recognize_one(
        pipeline: &RecognitionPipeline,
        scratch: &mut FrameScratch,
        frame: &GrayImage,
    ) -> Recognition {
        Recognition::from_frame_result(&pipeline.recognize_with(scratch, frame))
    }

    /// Recognises every frame of the batch across the pool, results in
    /// input order — byte-identical at every worker count.
    pub fn process_batch(&self, frames: &[GrayImage]) -> Vec<Recognition> {
        self.pool.map_indexed(
            frames,
            |_| FrameScratch::new(),
            |scratch, _, frame| Self::recognize_one(&self.pipeline, scratch, frame),
        )
    }

    /// The serial reference path: the same frames through one reused
    /// scratch on the calling thread (the baseline every scaling number in
    /// `BENCH_engine.json` is measured against).
    pub fn process_serial(&self, frames: &[GrayImage]) -> Vec<Recognition> {
        let mut scratch = FrameScratch::new();
        frames
            .iter()
            .map(|f| Self::recognize_one(&self.pipeline, &mut scratch, f))
            .collect()
    }

    /// Serves `streams` concurrently until every stream has processed at
    /// least `min_frames_per_stream` frames *and* `min_seconds` of wall
    /// clock have elapsed, cycling each stream's frames.
    ///
    /// Streams are independent tasks scheduled over the pool's workers; a
    /// stream that reaches both floors stops, so slower streams keep their
    /// workers. One untimed warm-up frame per stream lets scratch buffers
    /// reach steady state before the window opens.
    ///
    /// # Panics
    /// Panics if any stream is empty.
    pub fn run_streams(
        &self,
        streams: &[Vec<GrayImage>],
        min_frames_per_stream: usize,
        min_seconds: f64,
    ) -> MultiStreamReport {
        self.run_streams_gated(
            streams,
            min_frames_per_stream,
            min_seconds,
            TemporalConfig::off(),
        )
    }

    /// [`RecognitionEngine::run_streams`] with a temporal-coherence gate:
    /// each worker owns one [`StreamRecognizer`] (reset at every stream
    /// boundary, so cached decisions never leak between streams) next to
    /// its [`FrameScratch`], and the per-stream stats record how the gate
    /// resolved each frame.
    ///
    /// In [`crate::temporal::GateMode::Strict`] the gate only reuses
    /// byte-identical frames, so decisions — and therefore the
    /// `decided` counts — are exactly those of the ungated path at every
    /// worker count (the engine's determinism contract; pinned by the
    /// `temporal_gate` tests via [`RecognitionEngine::process_streams`]).
    ///
    /// # Panics
    /// Panics if any stream is empty.
    pub fn run_streams_gated(
        &self,
        streams: &[Vec<GrayImage>],
        min_frames_per_stream: usize,
        min_seconds: f64,
        gate: TemporalConfig,
    ) -> MultiStreamReport {
        assert!(
            streams.iter().all(|s| !s.is_empty()),
            "every stream needs at least one frame"
        );
        let stream_ids: Vec<usize> = (0..streams.len()).collect();
        // Warm-up outside the timed window (serial: touches each resolution
        // once so first-frame growth is not billed to any stream).
        let mut warm = FrameScratch::new();
        for s in streams {
            Self::recognize_one(&self.pipeline, &mut warm, &s[0]);
        }

        let start = Instant::now();
        let per_stream = self.pool.map_indexed(
            &stream_ids,
            |_| (FrameScratch::new(), StreamRecognizer::new(gate)),
            |(scratch, recognizer), _, &sid| {
                let frames = &streams[sid];
                recognizer.reset(); // per-stream cache isolation
                let counters_before = recognizer.counters();
                let mut stats = StreamStats {
                    frames: 0,
                    decided: 0,
                    gate: GateCounters::default(),
                };
                loop {
                    for frame in frames {
                        if recognizer
                            .recognize(&self.pipeline, scratch, frame)
                            .decided()
                        {
                            stats.decided += 1;
                        }
                        stats.frames += 1;
                    }
                    if stats.frames >= min_frames_per_stream
                        && start.elapsed().as_secs_f64() >= min_seconds
                    {
                        break;
                    }
                }
                stats.gate = recognizer.counters().since(&counters_before);
                stats
            },
        );
        MultiStreamReport {
            per_stream,
            seconds: start.elapsed().as_secs_f64(),
            workers: self.workers(),
        }
    }

    /// Deterministically processes every stream's frame sequence `passes`
    /// times through a fresh per-stream [`StreamRecognizer`], returning
    /// every frame's [`Recognition`] in order — the wall-clock-free
    /// counterpart of [`RecognitionEngine::run_streams_gated`] that
    /// equivalence and determinism tests compare across gate modes and
    /// worker counts. Because the recogniser (the only stateful part) is
    /// per-stream, the output is byte-identical at every worker count in
    /// *every* gate mode; in strict (and off) mode it is additionally
    /// byte-identical to the ungated serial path.
    ///
    /// # Panics
    /// Panics if any stream is empty.
    pub fn process_streams(
        &self,
        streams: &[Vec<GrayImage>],
        passes: usize,
        gate: TemporalConfig,
    ) -> Vec<Vec<Recognition>> {
        assert!(
            streams.iter().all(|s| !s.is_empty()),
            "every stream needs at least one frame"
        );
        self.pool.map_indexed(
            streams,
            |_| FrameScratch::new(),
            |scratch, _, frames| {
                let mut recognizer = StreamRecognizer::new(gate);
                let mut out = Vec::with_capacity(frames.len() * passes);
                for _ in 0..passes {
                    for frame in frames {
                        out.push(recognizer.recognize(&self.pipeline, scratch, frame).clone());
                    }
                }
                out
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use hdc_figure::{render_sign, MarshallingSign, ViewSpec};

    fn engine(threads: usize) -> RecognitionEngine {
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        RecognitionEngine::new(p, Some(threads))
    }

    fn mixed_frames() -> Vec<GrayImage> {
        let mut frames = Vec::new();
        for az in [0.0, 15.0, 40.0, 90.0] {
            for sign in MarshallingSign::ALL {
                frames.push(render_sign(sign, &ViewSpec::paper_default(az, 5.0, 3.0)));
            }
        }
        frames.push(GrayImage::new(64, 64)); // failure case rides along
        frames
    }

    #[test]
    fn batch_decisions_match_the_pipeline() {
        let e = engine(2);
        let frames = mixed_frames();
        let batch = e.process_batch(&frames);
        assert_eq!(batch.len(), frames.len());
        for (frame, got) in frames.iter().zip(&batch) {
            let want = e.pipeline().recognize(frame);
            assert_eq!(got.decision, want.decision);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(engine(4).process_batch(&[]).is_empty());
    }

    #[test]
    fn streams_report_all_streams() {
        let e = engine(2);
        let frame = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 5.0, 3.0),
        );
        let streams = vec![vec![frame.clone()], vec![frame]];
        let report = e.run_streams(&streams, 3, 0.0);
        assert_eq!(report.per_stream.len(), 2);
        assert_eq!(report.workers, 2);
        for s in 0..2 {
            assert!(report.per_stream[s].frames >= 3);
            assert_eq!(
                report.per_stream[s].decided, report.per_stream[s].frames,
                "frontal Yes frames must all decide"
            );
            assert!(report.stream_fps(s) > 0.0);
        }
        assert!(report.aggregate_fps() > 0.0);
        assert_eq!(
            report.total_frames(),
            report.per_stream.iter().map(|s| s.frames).sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_stream_rejected() {
        engine(1).run_streams(&[Vec::new()], 1, 0.0);
    }

    #[test]
    fn gated_run_attributes_counters_per_stream() {
        // The per-stream view the serving layer budgets against: each
        // stream's gate counters must cover exactly its own frames, and the
        // aggregate must be their sum — nothing double-counted, nothing
        // attributed to the wrong stream.
        let e = engine(2);
        let yes = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 5.0, 3.0),
        );
        let no = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        // stream 0: pure hold (one distinct frame) — near-100% hit rate;
        // stream 1: alternating signs — the gate can never hit
        let streams = vec![vec![yes.clone(), yes.clone()], vec![yes, no]];
        let report =
            e.run_streams_gated(&streams, 4, 0.0, crate::temporal::TemporalConfig::strict());

        let mut summed = GateCounters::default();
        for (i, s) in report.per_stream.iter().enumerate() {
            assert_eq!(
                s.gate.frames(),
                s.frames,
                "stream {i}: gate counters must cover exactly its frames"
            );
            assert_eq!(report.stream_gate(i), s.gate);
            summed = summed.plus(&s.gate);
        }
        assert_eq!(report.gate_totals(), summed);
        assert_eq!(
            report.decided_total(),
            report.per_stream.iter().map(|s| s.decided).sum::<usize>()
        );

        // the hold stream hits (only its first frame recomputes), the
        // alternating stream never does — visible only per-stream
        assert!(report.per_stream[0].hit_rate() > 0.5);
        assert_eq!(report.per_stream[1].gate.hits(), 0);
        assert_eq!(report.per_stream[1].hit_rate(), 0.0);
    }
}
