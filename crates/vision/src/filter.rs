//! Temporal decision filtering.
//!
//! A single frame can alias — a mid-gesture arm position may match a static
//! sign for one frame (see experiment E16's interaction with the wave-off).
//! Production recognisers therefore debounce: a label is *believed* only
//! after it has persisted. [`DecisionFilter`] is that debounce, shared by
//! the collaboration session and available to downstream users of the
//! pipeline.

use serde::{Deserialize, Serialize};

/// Majority-persistence filter over per-frame decisions.
///
/// A label is confirmed once it has been reported by `required` consecutive
/// frames. Any different observation (including "no decision") resets the
/// run.
///
/// # Example
/// ```
/// use hdc_vision::DecisionFilter;
/// let mut f = DecisionFilter::new(2);
/// assert_eq!(f.push(Some("Yes")), None);        // first sighting
/// assert_eq!(f.push(Some("Yes")), Some("Yes")); // confirmed
/// assert_eq!(f.push(Some("No")), None);         // run broken
/// assert_eq!(f.push(None), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionFilter {
    required: u32,
    current: Option<String>,
    run: u32,
}

impl DecisionFilter {
    /// Creates a filter requiring `required` consecutive agreeing frames.
    ///
    /// # Panics
    /// Panics if `required` is zero.
    pub fn new(required: u32) -> Self {
        assert!(required > 0, "at least one agreeing frame is required");
        DecisionFilter {
            required,
            current: None,
            run: 0,
        }
    }

    /// The number of agreeing frames required.
    pub fn required(&self) -> u32 {
        self.required
    }

    /// The length of the current agreeing run.
    pub fn run_length(&self) -> u32 {
        self.run
    }

    /// Feeds one frame's decision; returns the confirmed label once the
    /// persistence requirement is met (and on every further agreeing frame).
    pub fn push(&mut self, decision: Option<&str>) -> Option<&str> {
        match decision {
            Some(label) => {
                if self.current.as_deref() == Some(label) {
                    self.run += 1;
                } else {
                    self.current = Some(label.to_string());
                    self.run = 1;
                }
            }
            None => {
                self.current = None;
                self.run = 0;
            }
        }
        if self.run >= self.required {
            self.current.as_deref()
        } else {
            None
        }
    }

    /// Clears any in-progress run (e.g. when the scene changes).
    pub fn reset(&mut self) {
        self.current = None;
        self.run = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_after_n_frames() {
        let mut f = DecisionFilter::new(3);
        assert_eq!(f.push(Some("No")), None);
        assert_eq!(f.push(Some("No")), None);
        assert_eq!(f.push(Some("No")), Some("No"));
        // stays confirmed while the run continues
        assert_eq!(f.push(Some("No")), Some("No"));
        assert_eq!(f.run_length(), 4);
    }

    #[test]
    fn different_label_resets() {
        let mut f = DecisionFilter::new(2);
        f.push(Some("Yes"));
        assert_eq!(f.push(Some("No")), None, "run broken by different label");
        assert_eq!(f.push(Some("No")), Some("No"));
    }

    #[test]
    fn none_resets() {
        let mut f = DecisionFilter::new(2);
        f.push(Some("Yes"));
        assert_eq!(f.push(None), None);
        assert_eq!(f.push(Some("Yes")), None, "run restarted");
        assert_eq!(f.push(Some("Yes")), Some("Yes"));
    }

    #[test]
    fn single_frame_mode() {
        let mut f = DecisionFilter::new(1);
        assert_eq!(f.push(Some("Yes")), Some("Yes"));
    }

    #[test]
    fn reset_clears_state() {
        let mut f = DecisionFilter::new(2);
        f.push(Some("Yes"));
        f.reset();
        assert_eq!(f.run_length(), 0);
        assert_eq!(f.push(Some("Yes")), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_required_rejected() {
        DecisionFilter::new(0);
    }
}
