//! The marshalling-sign recognition pipeline (the paper's Section IV).
//!
//! Stages, mirroring the paper's description:
//!
//! 1. **Segment** the frame (fixed or Otsu threshold), optionally denoise
//!    with a morphological opening.
//! 2. **Isolate** the signaller: largest connected component.
//! 3. **Trace** the silhouette's outer contour (Moore neighbourhood).
//! 4. **Convert shape → time series**: centroid-distance signature,
//!    uniformly resampled, z-normalised.
//! 5. **Classify**: SAX word lookup against the sign database with a
//!    rotation-invariant MINDIST lower bound and exact refinement
//!    (`hdc-sax`), accepting only matches within a calibrated threshold.
//!
//! Per-stage wall-clock timings are recorded ([`StageTimings`]) because the
//! paper's headline numbers are recognition latencies (38 ms / 27 ms) and
//! frame-rate projections (30/60 fps).
//!
//! Classical baselines (1-NN DTW, Hu moments, zoning grids) live in
//! [`classifiers`] for experiment E11's cost/accuracy comparison.
//!
//! # Example
//! ```
//! use hdc_figure::{MarshallingSign, ViewSpec, render_sign};
//! use hdc_vision::{PipelineConfig, RecognitionPipeline};
//!
//! let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
//! pipeline.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
//! let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
//! let result = pipeline.recognize(&frame);
//! assert_eq!(result.decision.as_deref(), Some("No"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifiers;
pub mod dynamic;
mod engine;
mod filter;
mod moments;
mod pipeline;
mod signature;
pub mod temporal;
mod timing;

pub use engine::{MultiStreamReport, Recognition, RecognitionEngine, StreamStats};
pub use filter::DecisionFilter;

pub use moments::{central_moments, hu_moments, RawMoments};
pub use pipeline::{
    FrameFailure, FrameResult, FrameScratch, KernelPath, PipelineConfig, RecognitionPipeline,
    RecognitionResult, SegmentationMode,
};
pub use signature::{
    extract_signature, signature_from_contour, trace_contour_packed_with, trace_contour_with,
    ShapeSignature, SignatureError, SignatureScratch, SignatureStats, MIN_CONTOUR_POINTS,
};
pub use timing::{FrameBudget, StageTimings};
