//! Dynamic marshalling signals (the paper's future work, Section V).
//!
//! *"The flexibility of the system with respect to other static and,
//! possibly later, dynamic marshalling signals should also be examined."*
//!
//! This module adds the first dynamic signal: the aviation **wave-off**
//! (one arm sweeping repeatedly — *abort, go away*). The approach stays in
//! the paper's computational budget: per frame only two scalars are
//! extracted from the silhouette (bounding-box aspect ratio and the lateral
//! offset of the mass centroid within the box); the *temporal* series of
//! those scalars is what gets analysed — oscillation means waving, a flat
//! series means a held static sign.

use hdc_raster::{largest_component, largest_component_with, Bitmap, Connectivity, LabelScratch};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-frame scalar features of the silhouette.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameFeatures {
    /// Bounding-box width / height.
    pub aspect: f64,
    /// Centroid x within the bounding box, normalised to `[0, 1]`.
    pub centroid_x: f64,
}

/// Extracts the dynamic-gesture features from a frame's mask.
///
/// Returns `None` when no usable blob exists.
///
/// Allocates labelling buffers per call; the steady-state loop inside
/// [`DynamicRecognizer::push`] uses the scratch-reusing equivalent instead.
pub fn frame_features(mask: &Bitmap) -> Option<FrameFeatures> {
    let (_, comp) = largest_component(mask, Connectivity::Eight)?;
    features_of(&comp)
}

fn features_of(comp: &hdc_raster::Component) -> Option<FrameFeatures> {
    let w = comp.width() as f64;
    let h = comp.height() as f64;
    if h <= 0.0 || w <= 0.0 {
        return None;
    }
    Some(FrameFeatures {
        aspect: w / h,
        centroid_x: ((comp.centroid.x - comp.bbox.0 as f64) / w).clamp(0.0, 1.0),
    })
}

/// Decision over a temporal window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DynamicDecision {
    /// The wave-off gesture: repeated arm sweeps.
    WaveOff,
    /// A stable posture (hand off to the static-sign pipeline).
    StaticHold,
    /// Not enough evidence either way.
    Inconclusive,
}

/// Configuration of the dynamic recogniser.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Analysis window length, seconds.
    pub window_s: f64,
    /// Minimum oscillation cycles within the window to call a wave.
    pub min_cycles: usize,
    /// Minimum peak-to-peak aspect amplitude for a cycle to count.
    pub min_amplitude: f64,
    /// Maximum aspect standard deviation for a *static* hold.
    pub static_max_sd: f64,
    /// Minimum frames in the window before deciding anything.
    pub min_frames: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            window_s: 3.0,
            min_cycles: 2,
            min_amplitude: 0.12,
            static_max_sd: 0.03,
            min_frames: 8,
        }
    }
}

/// Sliding-window recogniser for dynamic gestures.
///
/// Feed timestamped masks with [`DynamicRecognizer::push`]; query with
/// [`DynamicRecognizer::decision`].
///
/// # Example
/// ```
/// use hdc_vision::dynamic::{DynamicConfig, DynamicDecision, DynamicRecognizer};
/// use hdc_figure::{render_pose, Pose, ViewSpec};
/// use hdc_raster::threshold::binarize;
///
/// let mut rec = DynamicRecognizer::new(DynamicConfig::default());
/// let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
/// for i in 0..30 {
///     let t = i as f64 * 0.1;
///     let frame = render_pose(Pose::wave_off_phase(t), &view); // 1 Hz wave
///     rec.push(t, &binarize(&frame, 128));
/// }
/// assert_eq!(rec.decision(), DynamicDecision::WaveOff);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicRecognizer {
    config: DynamicConfig,
    window: VecDeque<(f64, FrameFeatures)>,
    /// Largest-component output mask, reused across frames.
    blob: Bitmap,
    /// Component-labelling buffers, reused across frames.
    label: LabelScratch,
    /// Aspect series of the window, rebuilt (without reallocating) per
    /// decision.
    aspects: Vec<f64>,
}

impl DynamicRecognizer {
    /// Creates an empty recogniser.
    pub fn new(config: DynamicConfig) -> Self {
        DynamicRecognizer {
            config,
            window: VecDeque::new(),
            blob: Bitmap::new(1, 1),
            label: LabelScratch::new(),
            aspects: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// Number of frames currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Clears the window (e.g. when the negotiation partner changes).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Pushes a timestamped frame; frames older than the window fall out.
    ///
    /// Returns whether usable features were extracted.
    ///
    /// Labelling runs through the recogniser's reused scratch buffers, so
    /// once the window and buffers have reached their high-water marks the
    /// per-frame loop performs no heap allocation (pinned by the
    /// `zero_alloc_dynamic` test).
    pub fn push(&mut self, t: f64, mask: &Bitmap) -> bool {
        let comp =
            largest_component_with(mask, Connectivity::Eight, &mut self.blob, &mut self.label);
        let Some(f) = comp.as_ref().and_then(features_of) else {
            return false;
        };
        self.window.push_back((t, f));
        while let Some((t0, _)) = self.window.front() {
            if t - t0 > self.config.window_s {
                self.window.pop_front();
            } else {
                break;
            }
        }
        true
    }

    /// Counts alternating excursions beyond ±`half_amp` around the mean.
    fn cycles(values: &[f64], half_amp: f64) -> usize {
        if values.is_empty() {
            return 0;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let mut crossings = 0usize;
        let mut state = 0i8;
        for v in values {
            let s = if v - mean > half_amp {
                1
            } else if v - mean < -half_amp {
                -1
            } else {
                0
            };
            if s != 0 && s != state {
                if state != 0 {
                    crossings += 1;
                }
                state = s;
            }
        }
        crossings
    }

    /// The decision over the current window.
    ///
    /// Takes `&mut self` only to reuse the internal aspect buffer (the
    /// window itself is not modified), keeping repeated decisions
    /// allocation-free in steady state.
    pub fn decision(&mut self) -> DynamicDecision {
        if self.window.len() < self.config.min_frames {
            return DynamicDecision::Inconclusive;
        }
        self.aspects.clear();
        self.aspects
            .extend(self.window.iter().map(|(_, f)| f.aspect));
        let aspects = &self.aspects;
        let mean = aspects.iter().sum::<f64>() / aspects.len() as f64;
        let sd = (aspects.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>()
            / aspects.len() as f64)
            .sqrt();
        let cycles = Self::cycles(aspects, self.config.min_amplitude / 2.0);
        if cycles >= self.config.min_cycles {
            return DynamicDecision::WaveOff;
        }
        if sd <= self.config.static_max_sd {
            return DynamicDecision::StaticHold;
        }
        DynamicDecision::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_figure::{render_pose, MarshallingSign, Pose, ViewSpec};
    use hdc_raster::threshold::binarize;

    fn mask_of(pose: Pose) -> Bitmap {
        let frame = render_pose(pose, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        binarize(&frame, 128)
    }

    #[test]
    fn features_extracted_from_figure() {
        let f = frame_features(&mask_of(Pose::neutral())).unwrap();
        assert!(f.aspect > 0.1 && f.aspect < 2.0, "aspect {}", f.aspect);
        assert!((0.2..=0.8).contains(&f.centroid_x));
        assert!(frame_features(&Bitmap::new(8, 8)).is_none());
    }

    #[test]
    fn wave_widens_and_narrows_the_box() {
        let wide = frame_features(&mask_of(Pose::wave_off_phase(0.0))).unwrap(); // arm horizontal-ish
        let tall = frame_features(&mask_of(Pose::wave_off_phase(0.25))).unwrap(); // arm overhead
        assert!(
            (wide.aspect - tall.aspect).abs() > 0.1,
            "sweep must modulate the aspect: {} vs {}",
            wide.aspect,
            tall.aspect
        );
    }

    #[test]
    fn wave_off_detected_at_one_hertz() {
        let mut rec = DynamicRecognizer::new(DynamicConfig::default());
        for i in 0..30 {
            let t = i as f64 * 0.1;
            assert!(rec.push(t, &mask_of(Pose::wave_off_phase(t))));
        }
        assert_eq!(rec.decision(), DynamicDecision::WaveOff);
    }

    #[test]
    fn held_static_signs_read_as_static() {
        for sign in MarshallingSign::ALL {
            let mut rec = DynamicRecognizer::new(DynamicConfig::default());
            let pose = Pose::for_sign(sign);
            for i in 0..20 {
                rec.push(i as f64 * 0.1, &mask_of(pose));
            }
            assert_eq!(rec.decision(), DynamicDecision::StaticHold, "{sign}");
        }
    }

    #[test]
    fn too_few_frames_is_inconclusive() {
        let mut rec = DynamicRecognizer::new(DynamicConfig::default());
        for i in 0..4 {
            rec.push(i as f64 * 0.1, &mask_of(Pose::neutral()));
        }
        assert_eq!(rec.decision(), DynamicDecision::Inconclusive);
        assert_eq!(rec.len(), 4);
        rec.reset();
        assert!(rec.is_empty());
    }

    #[test]
    fn slow_posture_change_is_not_a_wave() {
        // transitioning from neutral to Yes once is not an oscillation
        let mut rec = DynamicRecognizer::new(DynamicConfig::default());
        let from = Pose::neutral();
        let to = Pose::for_sign(MarshallingSign::Yes);
        for i in 0..20 {
            let t = i as f64 * 0.1;
            rec.push(t, &mask_of(from.lerp(&to, (t / 2.0).min(1.0))));
        }
        assert_ne!(rec.decision(), DynamicDecision::WaveOff);
    }

    #[test]
    fn window_slides() {
        let mut rec = DynamicRecognizer::new(DynamicConfig::default());
        // wave for 3 s, then hold still for 4 s: the wave must age out
        for i in 0..30 {
            let t = i as f64 * 0.1;
            rec.push(t, &mask_of(Pose::wave_off_phase(t)));
        }
        assert_eq!(rec.decision(), DynamicDecision::WaveOff);
        for i in 30..75 {
            let t = i as f64 * 0.1;
            rec.push(t, &mask_of(Pose::for_sign(MarshallingSign::No)));
        }
        assert_eq!(rec.decision(), DynamicDecision::StaticHold);
    }
}
