//! Per-stage timing instrumentation and real-time budget checks.
//!
//! The paper reports end-to-end recognition times (38 ms at 0°, 27 ms at 65°)
//! and argues optimised native code will clear 30 fps, 60 fps with hardware
//! offload. [`StageTimings`] records where the time goes; [`FrameBudget`]
//! expresses the fps bars.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Wall-clock time spent in each pipeline stage, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Thresholding / segmentation.
    pub segment_us: u64,
    /// Connected components + largest-blob isolation.
    pub component_us: u64,
    /// Contour tracing.
    pub contour_us: u64,
    /// Signature extraction (centroid distances, resample, z-norm).
    pub signature_us: u64,
    /// SAX encode + database match.
    pub classify_us: u64,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total_us(&self) -> u64 {
        self.segment_us + self.component_us + self.contour_us + self.signature_us + self.classify_us
    }

    /// Total as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_us())
    }

    /// Equivalent sustained frame rate (frames per second) if every frame
    /// took this long. Returns `f64::INFINITY` for a zero total.
    pub fn fps_equivalent(&self) -> f64 {
        let t = self.total_us();
        if t == 0 {
            f64::INFINITY
        } else {
            1_000_000.0 / t as f64
        }
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segment {}µs | blob {}µs | contour {}µs | signature {}µs | classify {}µs | total {}µs ({:.1} fps)",
            self.segment_us,
            self.component_us,
            self.contour_us,
            self.signature_us,
            self.classify_us,
            self.total_us(),
            self.fps_equivalent()
        )
    }
}

/// A per-frame processing budget (e.g. 33.3 ms for 30 fps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameBudget {
    budget_us: u64,
}

impl FrameBudget {
    /// Budget for a target frame rate.
    ///
    /// # Panics
    /// Panics if `fps` is not positive.
    pub fn from_fps(fps: f64) -> Self {
        assert!(fps > 0.0, "frame rate must be positive");
        FrameBudget {
            budget_us: (1_000_000.0 / fps) as u64,
        }
    }

    /// The paper's soft real-time bar: 30 fps.
    pub fn thirty_fps() -> Self {
        FrameBudget::from_fps(30.0)
    }

    /// The paper's hardware-offload bar: 60 fps.
    pub fn sixty_fps() -> Self {
        FrameBudget::from_fps(60.0)
    }

    /// The budget in microseconds.
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// Whether a frame's timings fit the budget.
    pub fn fits(&self, t: &StageTimings) -> bool {
        t.total_us() <= self.budget_us
    }

    /// Fraction of the budget consumed (1.0 = exactly on budget).
    pub fn utilisation(&self, t: &StageTimings) -> f64 {
        t.total_us() as f64 / self.budget_us as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StageTimings {
        StageTimings {
            segment_us: 100,
            component_us: 200,
            contour_us: 300,
            signature_us: 150,
            classify_us: 250,
        }
    }

    #[test]
    fn totals() {
        let t = sample();
        assert_eq!(t.total_us(), 1000);
        assert_eq!(t.total(), Duration::from_millis(1));
        assert!((t.fps_equivalent() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_total_is_infinite_fps() {
        assert_eq!(StageTimings::default().fps_equivalent(), f64::INFINITY);
    }

    #[test]
    fn budgets() {
        let b30 = FrameBudget::thirty_fps();
        assert_eq!(b30.budget_us(), 33_333);
        let b60 = FrameBudget::sixty_fps();
        assert!(b60.budget_us() < b30.budget_us());
        let t = sample(); // 1 ms
        assert!(b30.fits(&t));
        assert!(b60.fits(&t));
        assert!((b30.utilisation(&t) - 0.03).abs() < 0.01);
    }

    #[test]
    fn over_budget_detected() {
        let slow = StageTimings {
            segment_us: 40_000,
            ..Default::default()
        };
        assert!(!FrameBudget::thirty_fps().fits(&slow));
        assert!(FrameBudget::from_fps(10.0).fits(&slow));
    }

    #[test]
    #[should_panic(expected = "frame rate")]
    fn bad_fps_panics() {
        FrameBudget::from_fps(0.0);
    }

    #[test]
    fn display_mentions_fps() {
        let s = sample().to_string();
        assert!(s.contains("total 1000µs"));
        assert!(s.contains("fps"));
    }
}
