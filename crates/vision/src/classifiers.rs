//! Baseline classifiers for the cost/accuracy comparison (experiment E11).
//!
//! The paper motivates SAX by contrasting it with heavier techniques (neural
//! networks, Kinect pipelines) that "do not appear to promise rapid passage
//! through relevant safety certification". We cannot compare against a
//! closed-source Kinect stack, so the comparison set is the classic trio of
//! certifiable-complexity shape classifiers:
//!
//! * [`DtwClassifier`] — 1-NN with banded dynamic time warping on the same
//!   contour signature (accuracy ceiling, highest cost),
//! * [`HuClassifier`] — nearest neighbour on Hu moment invariants (cheapest,
//!   weakest separation),
//! * [`ZoningClassifier`] — occupancy grid over the normalised bounding box
//!   (cheap, *not* rotation invariant).
//!
//! All implement [`SignClassifier`] over binary masks so the harness can
//! swap them freely; the SAX pipeline itself is exposed through the same
//! trait by [`SaxClassifier`].

use crate::moments::{hu_log, hu_moments};
use crate::signature::extract_signature;
use hdc_raster::Bitmap;
use hdc_sax::{SaxIndex, SaxParams};
use hdc_timeseries::{dtw_banded, rotate_left};
use serde::{Deserialize, Serialize};

/// A label with a match score (smaller = closer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// The nearest template's label.
    pub label: String,
    /// The classifier-specific distance to that template.
    pub score: f64,
}

/// Common interface over sign classifiers operating on silhouette masks.
pub trait SignClassifier {
    /// Human-readable classifier name for experiment tables.
    fn name(&self) -> &'static str;

    /// Adds a labelled training silhouette.
    ///
    /// Returns `false` when the mask yielded no usable features (the sample
    /// is skipped).
    fn train(&mut self, label: &str, mask: &Bitmap) -> bool;

    /// Classifies a silhouette, or `None` when no features could be
    /// extracted or no templates are enrolled.
    fn classify(&self, mask: &Bitmap) -> Option<Classification>;
}

// ---------------------------------------------------------------------------

/// SAX classifier: the paper's approach behind the common trait.
#[derive(Debug, Clone)]
pub struct SaxClassifier {
    index: SaxIndex,
    signature_len: usize,
}

impl SaxClassifier {
    /// Creates the classifier with the given SAX parameters and signature
    /// length.
    pub fn new(params: SaxParams, signature_len: usize) -> Self {
        SaxClassifier {
            index: SaxIndex::new(params, signature_len),
            signature_len,
        }
    }
}

impl SignClassifier for SaxClassifier {
    fn name(&self) -> &'static str {
        "sax"
    }

    fn train(&mut self, label: &str, mask: &Bitmap) -> bool {
        match extract_signature(mask, self.signature_len) {
            Ok(sig) => {
                self.index.insert(label, &sig.series);
                true
            }
            Err(_) => false,
        }
    }

    fn classify(&self, mask: &Bitmap) -> Option<Classification> {
        let sig = extract_signature(mask, self.signature_len).ok()?;
        let m = self.index.best_match(&sig.series)?;
        Some(Classification {
            label: m.label,
            score: m.distance,
        })
    }
}

// ---------------------------------------------------------------------------

/// 1-nearest-neighbour DTW on contour signatures, rotation handled by
/// sub-sampled circular shifts.
#[derive(Debug, Clone)]
pub struct DtwClassifier {
    templates: Vec<(String, Vec<f64>)>,
    signature_len: usize,
    band: usize,
    rotation_stride: usize,
}

impl DtwClassifier {
    /// Creates the classifier.
    ///
    /// `band` is the Sakoe–Chiba half-width; `rotation_stride` sub-samples
    /// the circular-shift search (1 = exhaustive, slower).
    pub fn new(signature_len: usize, band: usize, rotation_stride: usize) -> Self {
        DtwClassifier {
            templates: Vec::new(),
            signature_len,
            band,
            rotation_stride: rotation_stride.max(1),
        }
    }
}

impl SignClassifier for DtwClassifier {
    fn name(&self) -> &'static str {
        "dtw-1nn"
    }

    fn train(&mut self, label: &str, mask: &Bitmap) -> bool {
        match extract_signature(mask, self.signature_len) {
            Ok(sig) => {
                self.templates.push((label.to_string(), sig.series));
                true
            }
            Err(_) => false,
        }
    }

    fn classify(&self, mask: &Bitmap) -> Option<Classification> {
        let sig = extract_signature(mask, self.signature_len).ok()?;
        let mut best: Option<Classification> = None;
        for (label, tpl) in &self.templates {
            let mut shift = 0usize;
            while shift < sig.series.len() {
                let rotated = rotate_left(&sig.series, shift);
                let d = dtw_banded(&rotated, tpl, self.band).expect("non-empty signatures");
                if best.as_ref().is_none_or(|b| d < b.score) {
                    best = Some(Classification {
                        label: label.clone(),
                        score: d,
                    });
                }
                shift += self.rotation_stride;
            }
        }
        best
    }
}

// ---------------------------------------------------------------------------

/// Nearest neighbour on log-scaled Hu moment invariants.
#[derive(Debug, Clone, Default)]
pub struct HuClassifier {
    templates: Vec<(String, [f64; 7])>,
}

impl HuClassifier {
    /// Creates an empty classifier.
    pub fn new() -> Self {
        HuClassifier::default()
    }
}

impl SignClassifier for HuClassifier {
    fn name(&self) -> &'static str {
        "hu-moments"
    }

    fn train(&mut self, label: &str, mask: &Bitmap) -> bool {
        match hu_moments(mask) {
            Some(h) => {
                self.templates.push((label.to_string(), hu_log(&h)));
                true
            }
            None => false,
        }
    }

    fn classify(&self, mask: &Bitmap) -> Option<Classification> {
        let h = hu_log(&hu_moments(mask)?);
        self.templates
            .iter()
            .map(|(label, tpl)| {
                let d: f64 = h
                    .iter()
                    .zip(tpl)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                Classification {
                    label: label.clone(),
                    score: d,
                }
            })
            .min_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
    }
}

// ---------------------------------------------------------------------------

/// Occupancy-grid ("zoning") classifier: the blob's bounding box is divided
/// into `grid × grid` cells and the per-cell fill fractions compared by
/// Euclidean distance. Cheap, but **not** rotation invariant — included to
/// show why the paper needs the contour signature.
#[derive(Debug, Clone)]
pub struct ZoningClassifier {
    grid: u32,
    templates: Vec<(String, Vec<f64>)>,
}

impl ZoningClassifier {
    /// Creates the classifier with a `grid × grid` zoning.
    ///
    /// # Panics
    /// Panics if `grid` is zero.
    pub fn new(grid: u32) -> Self {
        assert!(grid > 0, "grid must be positive");
        ZoningClassifier {
            grid,
            templates: Vec::new(),
        }
    }

    fn features(&self, mask: &Bitmap) -> Option<Vec<f64>> {
        // bounding box of the foreground
        let mut min_x = u32::MAX;
        let mut min_y = u32::MAX;
        let mut max_x = 0u32;
        let mut max_y = 0u32;
        let mut any = false;
        for (x, y, v) in mask.iter() {
            if v {
                any = true;
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
            }
        }
        if !any {
            return None;
        }
        let g = self.grid;
        let w = (max_x - min_x + 1) as f64;
        let h = (max_y - min_y + 1) as f64;
        let mut counts = vec![0.0f64; (g * g) as usize];
        let mut total = 0.0;
        for (x, y, v) in mask.iter() {
            if v {
                let gx = (((x - min_x) as f64 / w) * g as f64).min(g as f64 - 1.0) as u32;
                let gy = (((y - min_y) as f64 / h) * g as f64).min(g as f64 - 1.0) as u32;
                counts[(gy * g + gx) as usize] += 1.0;
                total += 1.0;
            }
        }
        for c in &mut counts {
            *c /= total;
        }
        Some(counts)
    }
}

impl SignClassifier for ZoningClassifier {
    fn name(&self) -> &'static str {
        "zoning"
    }

    fn train(&mut self, label: &str, mask: &Bitmap) -> bool {
        match self.features(mask) {
            Some(f) => {
                self.templates.push((label.to_string(), f));
                true
            }
            None => false,
        }
    }

    fn classify(&self, mask: &Bitmap) -> Option<Classification> {
        let f = self.features(mask)?;
        self.templates
            .iter()
            .map(|(label, tpl)| {
                let d: f64 = f
                    .iter()
                    .zip(tpl)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                Classification {
                    label: label.clone(),
                    score: d,
                }
            })
            .min_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
    use hdc_raster::threshold::binarize;

    fn sign_mask(sign: MarshallingSign, azimuth: f64) -> Bitmap {
        let frame = render_sign(sign, &ViewSpec::paper_default(azimuth, 5.0, 3.0));
        binarize(&frame, 128)
    }

    fn train_all(c: &mut dyn SignClassifier) {
        for sign in MarshallingSign::ALL {
            assert!(c.train(sign.label(), &sign_mask(sign, 0.0)), "{}", sign);
        }
    }

    fn accuracy_frontal(c: &dyn SignClassifier) -> usize {
        MarshallingSign::ALL
            .iter()
            .filter(|s| {
                c.classify(&sign_mask(**s, 0.0))
                    .map(|r| r.label == s.label())
                    .unwrap_or(false)
            })
            .count()
    }

    #[test]
    fn sax_classifier_frontal_perfect() {
        let mut c = SaxClassifier::new(SaxParams::default(), 128);
        train_all(&mut c);
        assert_eq!(accuracy_frontal(&c), 3);
        assert_eq!(c.name(), "sax");
    }

    #[test]
    fn dtw_classifier_frontal_perfect() {
        let mut c = DtwClassifier::new(128, 8, 8);
        train_all(&mut c);
        assert_eq!(accuracy_frontal(&c), 3);
        assert_eq!(c.name(), "dtw-1nn");
    }

    #[test]
    fn hu_classifier_frontal_perfect() {
        let mut c = HuClassifier::new();
        train_all(&mut c);
        assert_eq!(accuracy_frontal(&c), 3);
    }

    #[test]
    fn zoning_classifier_frontal_perfect() {
        let mut c = ZoningClassifier::new(4);
        train_all(&mut c);
        assert_eq!(accuracy_frontal(&c), 3);
    }

    #[test]
    fn empty_mask_not_trainable() {
        let empty = Bitmap::new(16, 16);
        let mut sax = SaxClassifier::new(SaxParams::default(), 64);
        let mut dtw = DtwClassifier::new(64, 4, 8);
        let mut hu = HuClassifier::new();
        let mut zone = ZoningClassifier::new(4);
        assert!(!sax.train("x", &empty));
        assert!(!dtw.train("x", &empty));
        assert!(!hu.train("x", &empty));
        assert!(!zone.train("x", &empty));
        assert!(sax.classify(&empty).is_none());
        assert!(dtw.classify(&empty).is_none());
        assert!(hu.classify(&empty).is_none());
        assert!(zone.classify(&empty).is_none());
    }

    #[test]
    fn untrained_classifier_returns_none() {
        let c = SaxClassifier::new(SaxParams::default(), 64);
        assert!(c.classify(&sign_mask(MarshallingSign::Yes, 0.0)).is_none());
    }

    #[test]
    fn moderate_azimuth_still_classified_by_sax() {
        let mut c = SaxClassifier::new(SaxParams::default(), 128);
        train_all(&mut c);
        for az in [10.0, 25.0, 40.0] {
            let r = c.classify(&sign_mask(MarshallingSign::No, az)).unwrap();
            assert_eq!(r.label, "No", "azimuth {az}");
        }
    }

    #[test]
    fn trait_objects_compose() {
        let mut classifiers: Vec<Box<dyn SignClassifier>> = vec![
            Box::new(SaxClassifier::new(SaxParams::default(), 128)),
            Box::new(DtwClassifier::new(128, 8, 16)),
            Box::new(HuClassifier::new()),
            Box::new(ZoningClassifier::new(4)),
        ];
        for c in classifiers.iter_mut() {
            train_all(c.as_mut());
        }
        for c in &classifiers {
            assert!(accuracy_frontal(c.as_ref()) >= 2, "{} too weak", c.name());
        }
    }
}
