//! Image moments and Hu invariants (baseline classifier features).

use hdc_raster::Bitmap;
use serde::{Deserialize, Serialize};

/// Raw, central and normalised moments of a binary mask.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawMoments {
    /// Zeroth moment (area).
    pub m00: f64,
    /// Centroid x.
    pub cx: f64,
    /// Centroid y.
    pub cy: f64,
}

/// Computes area and centroid of a mask, or `None` when empty.
pub fn raw_moments(mask: &Bitmap) -> Option<RawMoments> {
    let mut m00 = 0.0;
    let mut m10 = 0.0;
    let mut m01 = 0.0;
    for (x, y, v) in mask.iter() {
        if v {
            m00 += 1.0;
            m10 += x as f64;
            m01 += y as f64;
        }
    }
    if m00 == 0.0 {
        return None;
    }
    Some(RawMoments {
        m00,
        cx: m10 / m00,
        cy: m01 / m00,
    })
}

/// Central moments `mu_pq` up to order 3, indexed `[p][q]`.
///
/// Returns `None` for an empty mask.
pub fn central_moments(mask: &Bitmap) -> Option<[[f64; 4]; 4]> {
    let rm = raw_moments(mask)?;
    let mut mu = [[0.0; 4]; 4];
    for (x, y, v) in mask.iter() {
        if v {
            let dx = x as f64 - rm.cx;
            let dy = y as f64 - rm.cy;
            let mut xp = 1.0;
            for row in mu.iter_mut() {
                let mut yq = 1.0;
                for cell in row.iter_mut() {
                    *cell += xp * yq;
                    yq *= dy;
                }
                xp *= dx;
            }
        }
    }
    Some(mu)
}

/// Hu's seven rotation/scale/translation-invariant moments.
///
/// Returns `None` for an empty mask. These are the classic cheap shape
/// descriptors the baseline classifier uses — invariant like the paper's SAX
/// signature, but global rather than boundary-ordered (so they separate less
/// articulated shapes less well; experiment E11 quantifies that).
pub fn hu_moments(mask: &Bitmap) -> Option<[f64; 7]> {
    let mu = central_moments(mask)?;
    let mu00 = mu[0][0];
    if mu00 <= 0.0 {
        return None;
    }
    // normalised central moments
    let eta = |p: usize, q: usize| mu[p][q] / mu00.powf(1.0 + (p + q) as f64 / 2.0);
    let (n20, n02, n11) = (eta(2, 0), eta(0, 2), eta(1, 1));
    let (n30, n03, n21, n12) = (eta(3, 0), eta(0, 3), eta(2, 1), eta(1, 2));

    let h1 = n20 + n02;
    let h2 = (n20 - n02).powi(2) + 4.0 * n11 * n11;
    let h3 = (n30 - 3.0 * n12).powi(2) + (3.0 * n21 - n03).powi(2);
    let h4 = (n30 + n12).powi(2) + (n21 + n03).powi(2);
    let h5 = (n30 - 3.0 * n12) * (n30 + n12) * ((n30 + n12).powi(2) - 3.0 * (n21 + n03).powi(2))
        + (3.0 * n21 - n03) * (n21 + n03) * (3.0 * (n30 + n12).powi(2) - (n21 + n03).powi(2));
    let h6 = (n20 - n02) * ((n30 + n12).powi(2) - (n21 + n03).powi(2))
        + 4.0 * n11 * (n30 + n12) * (n21 + n03);
    let h7 = (3.0 * n21 - n03) * (n30 + n12) * ((n30 + n12).powi(2) - 3.0 * (n21 + n03).powi(2))
        - (n30 - 3.0 * n12) * (n21 + n03) * (3.0 * (n30 + n12).powi(2) - (n21 + n03).powi(2));

    Some([h1, h2, h3, h4, h5, h6, h7])
}

/// Signed-log transform used to compare Hu vectors across magnitudes:
/// `sgn(h) * log10(|h|)`, with a floor for zeros.
pub fn hu_log(hu: &[f64; 7]) -> [f64; 7] {
    let mut out = [0.0; 7];
    for (o, h) in out.iter_mut().zip(hu) {
        let a = h.abs().max(1e-30);
        *o = h.signum() * a.log10();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_geometry::Vec2;
    use hdc_raster::threshold::binarize;
    use hdc_raster::{draw, GrayImage};

    fn disk_at(cx: f64, cy: f64, r: f64, size: u32) -> Bitmap {
        let mut img = GrayImage::new(size, size);
        draw::fill_disk(&mut img, Vec2::new(cx, cy), r, 255);
        binarize(&img, 128)
    }

    fn bar(size: u32, horizontal: bool) -> Bitmap {
        let mut img = GrayImage::new(size, size);
        let c = size as f64 / 2.0;
        let (a, b) = if horizontal {
            (Vec2::new(c - 20.0, c), Vec2::new(c + 20.0, c))
        } else {
            (Vec2::new(c, c - 20.0), Vec2::new(c, c + 20.0))
        };
        draw::fill_tapered_capsule(&mut img, a, 5.0, b, 5.0, 255);
        binarize(&img, 128)
    }

    #[test]
    fn raw_moments_centroid() {
        let m = disk_at(30.0, 40.0, 10.0, 80);
        let rm = raw_moments(&m).unwrap();
        assert!((rm.cx - 29.5).abs() < 1.0);
        assert!((rm.cy - 39.5).abs() < 1.0);
        assert!(rm.m00 > 250.0);
        assert!(raw_moments(&Bitmap::new(4, 4)).is_none());
    }

    #[test]
    fn central_moments_first_order_vanish() {
        let m = disk_at(25.0, 25.0, 12.0, 50);
        let mu = central_moments(&m).unwrap();
        assert!(mu[1][0].abs() < 1e-6);
        assert!(mu[0][1].abs() < 1e-6);
        assert!(mu[0][0] > 0.0);
    }

    #[test]
    fn hu_translation_invariant() {
        let a = hu_moments(&disk_at(20.0, 20.0, 10.0, 64)).unwrap();
        let b = hu_moments(&disk_at(40.0, 40.0, 10.0, 64)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn hu_scale_invariant() {
        let a = hu_moments(&disk_at(32.0, 32.0, 8.0, 64)).unwrap();
        let b = hu_moments(&disk_at(32.0, 32.0, 20.0, 64)).unwrap();
        assert!((a[0] - b[0]).abs() < 0.01, "h1: {} vs {}", a[0], b[0]);
    }

    #[test]
    fn hu_rotation_invariant() {
        let h = hu_moments(&bar(64, true)).unwrap();
        let v = hu_moments(&bar(64, false)).unwrap();
        for (a, b) in h.iter().zip(&v) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn hu_distinguishes_disk_from_bar() {
        let d = hu_moments(&disk_at(32.0, 32.0, 12.0, 64)).unwrap();
        let b = hu_moments(&bar(64, true)).unwrap();
        assert!((d[0] - b[0]).abs() > 0.05, "h1 separates elongation");
    }

    #[test]
    fn hu_log_handles_zero() {
        let l = hu_log(&[0.0; 7]);
        assert!(l.iter().all(|v| v.is_finite()));
        let l2 = hu_log(&[1e-3, -1e-3, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((l2[0] + 3.0).abs() < 1e-9);
        assert!((l2[1] - 3.0).abs() < 1e-9);
    }
}
