//! Shape → time-series conversion (the paper's step 1).
//!
//! A silhouette's outer contour is unrolled into the distance-to-centroid
//! series, resampled to a fixed length and z-normalised — the exact
//! conversion of Keogh's shape-SAX that the paper adopts. Rotating the shape
//! circularly shifts this series, which is why rotation-invariant matching
//! reduces to circular-shift minimisation downstream.

use hdc_geometry::Vec2;
use hdc_raster::contour::{
    contour_centroid, trace_outer_contour_into, trace_outer_contour_packed_into,
};
use hdc_raster::{BitMask, Bitmap, ContourPoint};
use hdc_timeseries::{resample_into, znormalize_in_place};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from signature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The mask had no foreground pixels.
    EmptyMask,
    /// The blob was too small to produce a usable contour.
    BlobTooSmall {
        /// Number of contour points found.
        contour_points: usize,
        /// Minimum required.
        required: usize,
    },
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::EmptyMask => write!(f, "mask has no foreground"),
            SignatureError::BlobTooSmall {
                contour_points,
                required,
            } => write!(
                f,
                "contour has {contour_points} points, need at least {required}"
            ),
        }
    }
}

impl std::error::Error for SignatureError {}

/// The centroid-distance signature of a silhouette.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeSignature {
    /// Z-normalised, fixed-length centroid-distance series.
    pub series: Vec<f64>,
    /// Number of raw contour pixels before resampling (drives stage cost).
    pub contour_len: usize,
    /// Contour centroid in pixel coordinates.
    pub centroid: Vec2,
    /// Mean raw centroid distance in pixels (apparent size proxy).
    pub mean_radius: f64,
}

/// Minimum contour points for a meaningful signature (re-exported via the
/// crate root so the docs can link it).
pub const MIN_CONTOUR_POINTS: usize = 8;

/// Extracts the centroid-distance signature from a binary mask.
///
/// The mask should contain a single blob (run
/// [`hdc_raster::largest_component`] first); if several blobs exist the
/// row-major-first one is used.
///
/// # Errors
/// [`SignatureError::EmptyMask`] for an all-background mask;
/// [`SignatureError::BlobTooSmall`] when the contour has fewer than
/// [`MIN_CONTOUR_POINTS`] points.
///
/// # Panics
/// Panics if `sample_count` is zero.
///
/// # Example
/// ```
/// use hdc_raster::{Bitmap, draw, threshold};
/// use hdc_geometry::Vec2;
/// use hdc_vision::extract_signature;
/// let mut img = hdc_raster::GrayImage::new(64, 64);
/// draw::fill_disk(&mut img, Vec2::new(32.0, 32.0), 14.0, 255);
/// let sig = extract_signature(&threshold::binarize(&img, 128), 128).unwrap();
/// assert_eq!(sig.series.len(), 128);
/// ```
pub fn extract_signature(
    mask: &Bitmap,
    sample_count: usize,
) -> Result<ShapeSignature, SignatureError> {
    assert!(sample_count > 0, "sample count must be positive");
    let mut scratch = SignatureScratch::new();
    trace_contour_with(mask, &mut scratch)?;
    let stats = signature_from_contour(&mut scratch, sample_count);
    Ok(ShapeSignature {
        series: scratch.series,
        contour_len: stats.contour_len,
        centroid: stats.centroid,
        mean_radius: stats.mean_radius,
    })
}

/// Reusable buffers for signature extraction: the traced contour, the raw
/// centroid-distance series and the resampled + z-normalised signature.
#[derive(Debug, Clone, Default)]
pub struct SignatureScratch {
    contour: Vec<ContourPoint>,
    raw: Vec<f64>,
    series: Vec<f64>,
}

impl SignatureScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The signature series produced by the most recent
    /// [`signature_from_contour`] call.
    pub fn series(&self) -> &[f64] {
        &self.series
    }
}

/// The scalar metadata of a signature — everything in [`ShapeSignature`]
/// except the series itself (which lives in the [`SignatureScratch`] on the
/// allocation-free path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignatureStats {
    /// Number of raw contour pixels before resampling.
    pub contour_len: usize,
    /// Contour centroid in pixel coordinates.
    pub centroid: Vec2,
    /// Mean raw centroid distance in pixels.
    pub mean_radius: f64,
}

/// Stage 1 of [`extract_signature`]: traces the blob's outer contour into the
/// scratch buffer and validates it is large enough to carry a signature.
///
/// Split from [`signature_from_contour`] so the pipeline can time contour
/// tracing and signature computation separately.
///
/// # Errors
/// Same conditions as [`extract_signature`].
pub fn trace_contour_with(
    mask: &Bitmap,
    scratch: &mut SignatureScratch,
) -> Result<(), SignatureError> {
    if !trace_outer_contour_into(mask, &mut scratch.contour) {
        return Err(SignatureError::EmptyMask);
    }
    if scratch.contour.len() < MIN_CONTOUR_POINTS {
        return Err(SignatureError::BlobTooSmall {
            contour_points: scratch.contour.len(),
            required: MIN_CONTOUR_POINTS,
        });
    }
    Ok(())
}

/// [`trace_contour_with`] on a bit-packed mask — the word-parallel kernel
/// path. The traced contour (and therefore every downstream signature and
/// decision) is bit-identical to the byte form's.
///
/// # Errors
/// Same conditions as [`extract_signature`].
pub fn trace_contour_packed_with(
    mask: &BitMask,
    scratch: &mut SignatureScratch,
) -> Result<(), SignatureError> {
    if !trace_outer_contour_packed_into(mask, &mut scratch.contour) {
        return Err(SignatureError::EmptyMask);
    }
    if scratch.contour.len() < MIN_CONTOUR_POINTS {
        return Err(SignatureError::BlobTooSmall {
            contour_points: scratch.contour.len(),
            required: MIN_CONTOUR_POINTS,
        });
    }
    Ok(())
}

/// Stage 2 of [`extract_signature`]: unrolls the contour traced by
/// [`trace_contour_with`] into the z-normalised centroid-distance series
/// (left in [`SignatureScratch::series`]) and returns its metadata.
///
/// # Panics
/// Panics if `sample_count` is zero or no contour has been traced.
pub fn signature_from_contour(
    scratch: &mut SignatureScratch,
    sample_count: usize,
) -> SignatureStats {
    assert!(sample_count > 0, "sample count must be positive");
    let centroid = contour_centroid(&scratch.contour).expect("non-empty contour");
    scratch.raw.clear();
    scratch.raw.extend(
        scratch
            .contour
            .iter()
            .map(|p| p.to_vec2().distance(centroid)),
    );
    let mean_radius = scratch.raw.iter().sum::<f64>() / scratch.raw.len() as f64;
    scratch.series.resize(sample_count, 0.0);
    resample_into(&scratch.raw, &mut scratch.series);
    znormalize_in_place(&mut scratch.series);
    SignatureStats {
        contour_len: scratch.contour.len(),
        centroid,
        mean_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_raster::threshold::binarize;
    use hdc_raster::{draw, GrayImage};
    use hdc_timeseries::TimeSeries;

    fn disk_mask(r: f64) -> Bitmap {
        let size = (2.0 * r + 10.0) as u32;
        let mut img = GrayImage::new(size, size);
        draw::fill_disk(
            &mut img,
            Vec2::new(size as f64 / 2.0, size as f64 / 2.0),
            r,
            255,
        );
        binarize(&img, 128)
    }

    fn bar_mask(w: f64, h: f64) -> Bitmap {
        let size = (w.max(h) + 10.0) as u32;
        let mut img = GrayImage::new(size, size);
        let c = size as f64 / 2.0;
        draw::fill_tapered_capsule(
            &mut img,
            Vec2::new(c - w / 2.0, c),
            h / 2.0,
            Vec2::new(c + w / 2.0, c),
            h / 2.0,
            255,
        );
        binarize(&img, 128)
    }

    #[test]
    fn empty_mask_errors() {
        let m = Bitmap::new(8, 8);
        assert_eq!(extract_signature(&m, 32), Err(SignatureError::EmptyMask));
    }

    #[test]
    fn tiny_blob_errors() {
        let mut m = Bitmap::new(8, 8);
        m.set(3, 3, true);
        m.set(4, 3, true);
        let e = extract_signature(&m, 32).unwrap_err();
        assert!(matches!(e, SignatureError::BlobTooSmall { .. }));
        assert!(e.to_string().contains("contour has"));
    }

    #[test]
    fn disk_signature_is_flat() {
        let sig = extract_signature(&disk_mask(20.0), 64).unwrap();
        // a circle's centroid distance is constant ⇒ z-normalised ≈ 0 noise
        let ts = TimeSeries::new(sig.series.clone());
        // after z-normalisation sd is 1 by construction (unless degenerate),
        // but the *raw* variation is tiny: mean radius >> sd of raw distances
        assert!(sig.mean_radius > 18.0 && sig.mean_radius < 22.0);
        assert_eq!(ts.len(), 64);
    }

    #[test]
    fn elongated_shape_has_two_lobes() {
        let sig = extract_signature(&bar_mask(60.0, 10.0), 128).unwrap();
        // a bar's centroid-distance series has two maxima (the two ends):
        // count sign changes of the derivative of the smoothed series
        let s = hdc_timeseries::smooth_moving_average(&sig.series, 3);
        let mut maxima = 0;
        let n = s.len();
        for i in 0..n {
            let prev = s[(i + n - 1) % n];
            let next = s[(i + 1) % n];
            if s[i] > prev && s[i] >= next && s[i] > 0.5 {
                maxima += 1;
            }
        }
        assert_eq!(maxima, 2, "bar has exactly two far ends");
    }

    #[test]
    fn signature_scale_invariant() {
        let small = extract_signature(&disk_mask(12.0), 64).unwrap();
        let large = extract_signature(&disk_mask(24.0), 64).unwrap();
        // both are (near-)flat circles; z-normalised series differ only by
        // quantisation noise
        let d = hdc_timeseries::euclidean(&small.series, &large.series).unwrap();
        // flat series z-normalise to noise; just check same length and finite
        assert!(d.is_finite());
        assert_eq!(small.series.len(), large.series.len());
        // the *size* information lives in mean_radius, not the signature
        assert!(large.mean_radius > 1.8 * small.mean_radius);
    }

    #[test]
    fn contour_len_grows_with_size() {
        let small = extract_signature(&disk_mask(10.0), 64).unwrap();
        let large = extract_signature(&disk_mask(30.0), 64).unwrap();
        assert!(large.contour_len > 2 * small.contour_len);
    }

    #[test]
    fn staged_extraction_matches_reference_formula() {
        // The scratch path must reproduce the original allocating formula
        // (resample → TimeSeries::znormalized) bit for bit, across reuses.
        let mut scratch = SignatureScratch::new();
        for mask in [disk_mask(15.0), bar_mask(60.0, 10.0), disk_mask(8.0)] {
            trace_contour_with(&mask, &mut scratch).unwrap();
            let stats = signature_from_contour(&mut scratch, 64);
            let contour = hdc_raster::trace_outer_contour(&mask).unwrap();
            let centroid = contour_centroid(&contour).unwrap();
            let raw: Vec<f64> = contour
                .iter()
                .map(|p| p.to_vec2().distance(centroid))
                .collect();
            let reference = TimeSeries::new(hdc_timeseries::resample(&raw, 64))
                .znormalized()
                .into_values();
            assert_eq!(scratch.series(), &reference[..]);
            assert_eq!(stats.contour_len, contour.len());
            assert_eq!(stats.centroid, centroid);
        }
    }

    #[test]
    fn centroid_recovered() {
        let sig = extract_signature(&disk_mask(15.0), 64).unwrap();
        let c = 20.0; // size = 40, centre 20
        assert!(sig.centroid.distance(Vec2::new(c, c)) < 2.0);
    }
}
