//! Temporal-coherence gating for stream recognition.
//!
//! The paper's viability argument (Section IV) needs sustained ≥30 fps
//! recognition of a *mostly static* marshaller: a held sign produces long
//! runs of nearly identical frames, yet the ungated stream path pays the
//! full silhouette→signature→SAX pipeline on every one of them. This module
//! skips that recompute when the input provably (or tolerably) hasn't
//! changed, via a per-stream [`StreamRecognizer`] that caches the
//! **reference frame** of its last fully computed [`Recognition`] and
//! answers each new frame through a ladder of increasingly expensive
//! checks:
//!
//! 1. **Strict gate** ([`GateMode::Strict`]): reuse the cached decision only
//!    when the frame is *byte-identical* to the reference — identity is
//!    hash-then-verify: a sparse fingerprint (the shared FNV-1a/64 digest of
//!    `hdc_raster::digest` streamed over every 16th pixel row) is compared
//!    first, and the full `memcmp` runs only on a digest match. Identical
//!    frames always produce identical fingerprints, so the gate never
//!    misses a true repeat; a colliding fingerprint merely costs the
//!    (SIMD-fast) compare. Sampling matters: FNV's byte-serial multiply
//!    chain runs at ~1 GB/s, so hashing the *whole* VGA frame would cost
//!    more than recognising it. The output is provably unchanged, so strict
//!    gating preserves the engine's byte-identical-at-any-worker-count
//!    determinism contract.
//! 2. **Tile gate** ([`GateMode::Approximate`]): reuse the cached decision
//!    when every tile's sum-of-absolute-differences against the reference
//!    frame is within [`TemporalConfig::max_tile_sad`]. A coarse
//!    box-downsample pre-pass supplies a lower bound on the total SAD that
//!    rejects clearly changed frames (sign transitions) before the fine
//!    tile pass runs. The pre-pass arms only while the gate is missing:
//!    during a held sign (hit after hit) it would be pure overhead on top
//!    of the tile pass that runs anyway, while during a transition (miss
//!    after miss) it rejects each frame at half the tile pass's cost.
//!    Before any differencing, approximate mode runs the same
//!    hash-then-verify identity check as the strict gate, against the
//!    *previous* frame: camera oversampling makes byte-identical repeats
//!    the most common frame of all, identity implies every tolerance holds,
//!    and the check costs a third of the tile pass.
//! 3. **Signature short-circuit** (approximate mode only): when the tile
//!    gate misses, recompute the signature but skip the SAX search if the
//!    new signature is within [`TemporalConfig::signature_epsilon`]
//!    (Euclidean) of the signature that produced the cached decision.
//!
//! **Boundedness of approximate mode.** The reference *signature* is only
//! replaced by a full SAX run, never chained through short-circuits, so the
//! signature presented to the classifier is always within ε of the one the
//! cached decision was computed from — tolerances bound the staleness
//! absolutely instead of accumulating drift. The measured decision
//! divergence against the ungated oracle on the benchmark workload is
//! recorded in `BENCH_stream.json` and bounded by test.

use crate::engine::Recognition;
use crate::pipeline::{FrameResult, FrameScratch, RecognitionPipeline};
use crate::timing::StageTimings;
use hdc_raster::diff::{box_downsample_into, coarse_sad, tile_sad_into};
use hdc_raster::digest::Fnv1a64;
use hdc_raster::GrayImage;

/// Every `FINGERPRINT_ROW_STRIDE`-th pixel row feeds the strict gate's
/// frame fingerprint (~3% of a frame; see the module docs for why sampling
/// beats whole-frame hashing).
const FINGERPRINT_ROW_STRIDE: usize = 32;

/// The strict gate's frame fingerprint: the shared FNV-1a/64 digest
/// streamed over the dimensions and every [`FINGERPRINT_ROW_STRIDE`]-th
/// row. Deterministic in the pixels, so byte-identical frames always
/// collide (the gate then verifies with `memcmp`).
fn frame_fingerprint(frame: &GrayImage) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(&frame.width().to_le_bytes());
    h.write(&frame.height().to_le_bytes());
    let w = frame.width() as usize;
    let pixels = frame.pixels();
    for y in (0..frame.height() as usize).step_by(FINGERPRINT_ROW_STRIDE) {
        h.write(&pixels[y * w..(y + 1) * w]);
    }
    h.finish()
}

/// Which reuse checks the gate runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// No gating: every frame pays the full pipeline (the ungated baseline).
    Off,
    /// Reuse only on byte-identical frames — output provably unchanged.
    Strict,
    /// Reuse within the tile-SAD tolerance, plus the signature
    /// short-circuit. Output may diverge from the ungated oracle, bounded
    /// by the configured tolerances.
    Approximate,
}

/// Gate configuration. The defaults are tuned for 640×480 frames with
/// sparse salt-and-pepper sensor jitter (the `bench_stream` workload); see
/// the field docs for how to retune.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalConfig {
    /// Which reuse checks run.
    pub mode: GateMode,
    /// Tile edge length in pixels for the fine differencing pass.
    pub tile: u32,
    /// Box-downsample factor of the coarse lower-bound pre-pass.
    pub coarse_factor: u32,
    /// Maximum per-tile SAD for a frame to count as unchanged. A flipped
    /// sensor pixel contributes up to 255, so this is roughly "tolerated
    /// flipped pixels per tile × 255".
    pub max_tile_sad: u64,
    /// Maximum Euclidean distance between a freshly computed signature and
    /// the cached decision's signature for the SAX search to be skipped.
    /// Signatures are z-normalised 128-sample series; compare against the
    /// calibrated acceptance threshold (≈6) to pick a safe fraction.
    pub signature_epsilon: f64,
}

impl TemporalConfig {
    /// The ungated baseline (every frame recomputed).
    pub fn off() -> Self {
        TemporalConfig {
            mode: GateMode::Off,
            ..Self::approximate()
        }
    }

    /// Strict gating: reuse on byte-identical frames only.
    pub fn strict() -> Self {
        TemporalConfig {
            mode: GateMode::Strict,
            ..Self::approximate()
        }
    }

    /// Approximate gating with the default tolerances.
    pub fn approximate() -> Self {
        TemporalConfig {
            mode: GateMode::Approximate,
            tile: 32,
            coarse_factor: 8,
            max_tile_sad: 3_000,
            signature_epsilon: 0.5,
        }
    }
}

/// How the gate resolved the frames it saw: every frame lands in exactly
/// one counter, so the four always sum to the frame count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounters {
    /// Byte-identical reuse: the strict gate, or approximate mode's
    /// identity pre-check against the previous frame.
    pub strict_hits: usize,
    /// Tile-tolerance reuse (approximate mode).
    pub approx_hits: usize,
    /// Signature recomputed, SAX search skipped (approximate mode).
    pub signature_short_circuits: usize,
    /// Full pipeline runs (every gate missed, or gating was off).
    pub full_runs: usize,
}

impl GateCounters {
    /// Total frames resolved.
    pub fn frames(&self) -> usize {
        self.strict_hits + self.approx_hits + self.signature_short_circuits + self.full_runs
    }

    /// Frames that skipped at least the SAX search.
    pub fn hits(&self) -> usize {
        self.strict_hits + self.approx_hits + self.signature_short_circuits
    }

    /// Counter deltas accumulated since an earlier snapshot (per-stream
    /// attribution when one recogniser serves several streams in turn).
    pub fn since(&self, earlier: &GateCounters) -> GateCounters {
        GateCounters {
            strict_hits: self.strict_hits - earlier.strict_hits,
            approx_hits: self.approx_hits - earlier.approx_hits,
            signature_short_circuits: self.signature_short_circuits
                - earlier.signature_short_circuits,
            full_runs: self.full_runs - earlier.full_runs,
        }
    }

    /// Element-wise sum (aggregation across streams).
    pub fn plus(&self, other: &GateCounters) -> GateCounters {
        GateCounters {
            strict_hits: self.strict_hits + other.strict_hits,
            approx_hits: self.approx_hits + other.approx_hits,
            signature_short_circuits: self.signature_short_circuits
                + other.signature_short_circuits,
            full_runs: self.full_runs + other.full_runs,
        }
    }
}

/// Incremental recogniser for one frame stream: wraps a shared
/// [`RecognitionPipeline`] + caller-owned [`FrameScratch`] with per-stream
/// cached state (reference frame, its digest, coarse grid, signature, and
/// the cached [`Recognition`]). See the module docs for the reuse ladder.
///
/// All internal buffers are allocated once and reused, so gate checks are
/// allocation-free in steady state; only a *full run* allocates (the owned
/// `Recognition` strings, exactly as the ungated path always has).
///
/// # Example
/// ```
/// use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
/// use hdc_vision::temporal::{StreamRecognizer, TemporalConfig};
/// use hdc_vision::{FrameScratch, PipelineConfig, RecognitionPipeline};
///
/// let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
/// pipeline.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
/// let frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(0.0, 5.0, 3.0));
///
/// let mut scratch = FrameScratch::new();
/// let mut rec = StreamRecognizer::new(TemporalConfig::strict());
/// for _ in 0..3 {
///     let r = rec.recognize(&pipeline, &mut scratch, &frame);
///     assert_eq!(r.decision.as_deref(), Some("Yes"));
/// }
/// assert_eq!(rec.counters().full_runs, 1); // frames 2 and 3 reused frame 1
/// assert_eq!(rec.counters().strict_hits, 2);
/// ```
#[derive(Debug, Clone)]
pub struct StreamRecognizer {
    config: TemporalConfig,
    counters: GateCounters,
    /// The decision currently being reused, if any.
    cached: Option<Recognition>,
    /// The frame the cached decision (or the last short-circuit) was
    /// computed against.
    reference: GrayImage,
    has_reference: bool,
    /// Sampled-row FNV-1a/64 fingerprint of `reference` (strict identity
    /// pre-check).
    reference_hash: u64,
    /// Coarse cell sums of `reference` (approximate lower-bound pre-pass).
    reference_coarse: Vec<u32>,
    /// Signature of the last *full SAX run* — short-circuits compare
    /// against this, never against each other (boundedness).
    reference_sig: Vec<f64>,
    has_reference_sig: bool,
    /// Per-tile SAD output buffer.
    tiles: Vec<u64>,
    /// Coarse cell sums of the current frame.
    coarse_cur: Vec<u32>,
    /// Whether the previous frame missed the gate — arms the coarse
    /// pre-pass (worth its cost only while frames keep changing).
    last_missed: bool,
    /// The previous frame (approximate mode only): target of the identity
    /// pre-check, which must compare against the *last* frame — the pinned
    /// tolerance reference goes stale the moment jitter lands, while
    /// oversampled duplicates repeat whatever came last.
    prev: GrayImage,
    prev_fingerprint: u64,
    has_prev: bool,
}

impl StreamRecognizer {
    /// A recogniser with empty caches.
    pub fn new(config: TemporalConfig) -> Self {
        StreamRecognizer {
            config,
            counters: GateCounters::default(),
            cached: None,
            reference: GrayImage::new(1, 1),
            has_reference: false,
            reference_hash: 0,
            reference_coarse: Vec::new(),
            reference_sig: Vec::new(),
            has_reference_sig: false,
            tiles: Vec::new(),
            coarse_cur: Vec::new(),
            last_missed: true,
            prev: GrayImage::new(1, 1),
            prev_fingerprint: 0,
            has_prev: false,
        }
    }

    /// The gate configuration.
    pub fn config(&self) -> &TemporalConfig {
        &self.config
    }

    /// Cumulative gate counters (never reset; snapshot and
    /// [`GateCounters::since`] for windows).
    pub fn counters(&self) -> GateCounters {
        self.counters
    }

    /// Forgets all cached state (switching the recogniser to a different
    /// stream) while keeping the grown buffers and the counters.
    pub fn reset(&mut self) {
        self.cached = None;
        self.has_reference = false;
        self.has_reference_sig = false;
        self.last_missed = true;
        self.has_prev = false;
    }

    /// Recognises one frame, reusing the cached decision when the active
    /// gate allows it. The returned reference borrows the cache, so hit
    /// frames allocate nothing; clone it if an owned value is needed.
    pub fn recognize(
        &mut self,
        pipeline: &RecognitionPipeline,
        scratch: &mut FrameScratch,
        frame: &GrayImage,
    ) -> &Recognition {
        match self.config.mode {
            GateMode::Off => {
                self.full_run(pipeline, scratch, frame, None);
            }
            GateMode::Strict => {
                // one fingerprint per frame: the identity pre-check on the
                // hit path doubles as the stored reference hash on a miss
                let fingerprint = frame_fingerprint(frame);
                if self.strict_hit(frame, fingerprint) {
                    self.counters.strict_hits += 1;
                } else {
                    self.full_run(pipeline, scratch, frame, Some(fingerprint));
                }
            }
            GateMode::Approximate => {
                let fingerprint = frame_fingerprint(frame);
                if self.identity_hit(frame, fingerprint) {
                    // byte-identical to the previous frame, whose outcome is
                    // the cached decision whatever path produced it — and
                    // `prev` already equals this frame, so nothing to store
                    self.counters.strict_hits += 1;
                    self.last_missed = false;
                } else if self.tile_hit(frame) {
                    self.counters.approx_hits += 1;
                    self.last_missed = false;
                    self.remember_prev(frame, fingerprint);
                } else {
                    self.last_missed = true;
                    self.recompute_with_short_circuit(pipeline, scratch, frame);
                    self.remember_prev(frame, fingerprint);
                }
            }
        }
        self.cached.as_ref().expect("every path caches a decision")
    }

    /// Byte-identity against the reference frame: fingerprint first,
    /// `memcmp` only when the fingerprints agree.
    fn strict_hit(&self, frame: &GrayImage, fingerprint: u64) -> bool {
        self.reusable(frame)
            && fingerprint == self.reference_hash
            && frame.pixels() == self.reference.pixels()
    }

    /// Byte-identity against the *previous* frame (approximate mode's
    /// pre-check): same hash-then-verify as [`StreamRecognizer::strict_hit`],
    /// different target.
    fn identity_hit(&self, frame: &GrayImage, fingerprint: u64) -> bool {
        self.cached.is_some()
            && self.has_prev
            && frame.width() == self.prev.width()
            && frame.height() == self.prev.height()
            && fingerprint == self.prev_fingerprint
            && frame.pixels() == self.prev.pixels()
    }

    /// Records the frame as the identity pre-check's target for the next
    /// frame (no heap allocation in steady state).
    fn remember_prev(&mut self, frame: &GrayImage, fingerprint: u64) {
        self.prev.reset_dimensions(frame.width(), frame.height());
        self.prev.pixels_mut().copy_from_slice(frame.pixels());
        self.prev_fingerprint = fingerprint;
        self.has_prev = true;
    }

    /// Coarse lower-bound pre-pass (armed while missing), then the per-tile
    /// SAD tolerance check.
    fn tile_hit(&mut self, frame: &GrayImage) -> bool {
        if !self.reusable(frame) {
            return false;
        }
        if self.last_missed {
            let tiles_x = frame.width().div_ceil(self.config.tile) as u64;
            let tiles_y = frame.height().div_ceil(self.config.tile) as u64;
            let budget = self.config.max_tile_sad.saturating_mul(tiles_x * tiles_y);
            box_downsample_into(frame, self.config.coarse_factor, &mut self.coarse_cur);
            if coarse_sad(&self.coarse_cur, &self.reference_coarse) > budget {
                // The coarse bound alone proves some tile must exceed the
                // tolerance — skip the fine pass.
                return false;
            }
        }
        let summary = tile_sad_into(frame, &self.reference, self.config.tile, &mut self.tiles);
        summary.max <= self.config.max_tile_sad
    }

    fn reusable(&self, frame: &GrayImage) -> bool {
        self.cached.is_some()
            && self.has_reference
            && frame.width() == self.reference.width()
            && frame.height() == self.reference.height()
    }

    /// The approximate-mode miss path: recompute the signature; skip the
    /// SAX search when it stayed within ε of the cached decision's
    /// signature, otherwise classify in full.
    fn recompute_with_short_circuit(
        &mut self,
        pipeline: &RecognitionPipeline,
        scratch: &mut FrameScratch,
        frame: &GrayImage,
    ) {
        let mut timings = StageTimings::default();
        match pipeline.signature_stages(frame, scratch, &mut timings) {
            Err(failure) => {
                let r = FrameResult::failed(timings, failure);
                let rec = Recognition::from_frame_result(&r);
                self.store_full(frame, rec, None, None);
                self.counters.full_runs += 1;
            }
            Ok(stats) => {
                let close_enough = self.has_reference_sig
                    && euclidean_within(
                        scratch.signature_series(),
                        &self.reference_sig,
                        self.config.signature_epsilon,
                    );
                if close_enough {
                    // Decision reused; re-arm the pixel gates around the
                    // current appearance but keep the reference signature
                    // from the last full SAX run (bounded staleness).
                    self.store_reference_pixels(frame, None);
                    self.counters.signature_short_circuits += 1;
                } else {
                    let r = pipeline.classify_pass(scratch, stats, timings);
                    let rec = Recognition::from_frame_result(&r);
                    self.cached = Some(rec);
                    self.store_reference_sig_from(scratch);
                    self.store_reference_pixels(frame, None);
                    self.counters.full_runs += 1;
                }
            }
        }
    }

    /// Runs the full pipeline and caches everything. `fingerprint` carries
    /// the frame digest when the caller already computed it for the gate
    /// check (so the store never re-hashes).
    fn full_run(
        &mut self,
        pipeline: &RecognitionPipeline,
        scratch: &mut FrameScratch,
        frame: &GrayImage,
        fingerprint: Option<u64>,
    ) {
        let r = pipeline.recognize_with(scratch, frame);
        let had_signature = r.stats.is_some();
        let rec = Recognition::from_frame_result(&r);
        self.store_full(frame, rec, had_signature.then_some(&*scratch), fingerprint);
        self.counters.full_runs += 1;
    }

    /// Caches a freshly computed decision; `signature_scratch` is `Some`
    /// when the scratch holds a valid signature series for the frame.
    /// `GateMode::Off` skips the reference copies entirely.
    fn store_full(
        &mut self,
        frame: &GrayImage,
        rec: Recognition,
        signature_scratch: Option<&FrameScratch>,
        fingerprint: Option<u64>,
    ) {
        self.cached = Some(rec);
        match signature_scratch {
            Some(scratch) => self.store_reference_sig_from(scratch),
            None => self.has_reference_sig = false,
        }
        if self.config.mode == GateMode::Off {
            return;
        }
        self.store_reference_pixels(frame, fingerprint);
    }

    /// Copies the frame into the reference buffers (pixels, fingerprint,
    /// coarse grid) without heap allocation in steady state.
    fn store_reference_pixels(&mut self, frame: &GrayImage, fingerprint: Option<u64>) {
        self.reference
            .reset_dimensions(frame.width(), frame.height());
        self.reference.pixels_mut().copy_from_slice(frame.pixels());
        self.has_reference = true;
        match self.config.mode {
            GateMode::Strict => {
                self.reference_hash = fingerprint.unwrap_or_else(|| frame_fingerprint(frame));
            }
            GateMode::Approximate => {
                box_downsample_into(frame, self.config.coarse_factor, &mut self.reference_coarse);
            }
            GateMode::Off => {}
        }
    }

    /// Records the scratch's current signature series as the reference
    /// signature (called by the full-run paths after a successful
    /// signature pass).
    fn store_reference_sig_from(&mut self, scratch: &FrameScratch) {
        self.reference_sig.clear();
        self.reference_sig
            .extend_from_slice(scratch.signature_series());
        self.has_reference_sig = true;
    }
}

/// A portable snapshot of a [`StreamRecognizer`]'s semantic gate state: the
/// cached decision, the reference/previous frames with their digests, the
/// coarse grid and the reference signature — everything the reuse ladder
/// consults, and nothing it doesn't (scratch buffers like the per-tile SAD
/// output stay with the recogniser).
///
/// This is what a serving layer spills when it evicts an idle stream's gate
/// state under a residency bound: [`StreamRecognizer::checkpoint`] captures
/// the state, [`StreamRecognizer::restore`] later rehydrates *any*
/// recogniser with the same [`TemporalConfig`], and the restored stream
/// behaves byte-for-byte as if it had never been evicted (pinned by test).
#[derive(Debug, Clone)]
pub struct GateCheckpoint {
    config: TemporalConfig,
    cached: Option<Recognition>,
    reference: GrayImage,
    has_reference: bool,
    reference_hash: u64,
    reference_coarse: Vec<u32>,
    reference_sig: Vec<f64>,
    has_reference_sig: bool,
    last_missed: bool,
    prev: GrayImage,
    prev_fingerprint: u64,
    has_prev: bool,
}

impl GateCheckpoint {
    /// The gate configuration the checkpoint was taken under (restore
    /// targets must match it exactly).
    pub fn config(&self) -> &TemporalConfig {
        &self.config
    }

    /// Approximate heap footprint in bytes — lets an eviction spill store
    /// budget itself instead of guessing.
    pub fn approx_bytes(&self) -> usize {
        self.reference.pixel_count()
            + self.prev.pixel_count()
            + self.reference_coarse.len() * std::mem::size_of::<u32>()
            + self.reference_sig.len() * std::mem::size_of::<f64>()
    }
}

/// An absent frame snapshot costs one pixel, not a whole frame.
fn snap_frame(frame: &GrayImage, present: bool) -> GrayImage {
    if present {
        frame.clone()
    } else {
        GrayImage::new(1, 1)
    }
}

/// Copies `src` into the reusable buffer `dst` without reallocating when
/// the dimensions already match.
fn copy_frame_into(dst: &mut GrayImage, src: &GrayImage) {
    dst.reset_dimensions(src.width(), src.height());
    dst.pixels_mut().copy_from_slice(src.pixels());
}

impl StreamRecognizer {
    /// Captures the semantic gate state for later [`StreamRecognizer::restore`].
    /// Counters are *not* part of the snapshot: they are cumulative
    /// per-recogniser bookkeeping, and serving layers attribute them
    /// per-stream via [`GateCounters::since`] snapshots instead.
    pub fn checkpoint(&self) -> GateCheckpoint {
        GateCheckpoint {
            config: self.config,
            cached: self.cached.clone(),
            reference: snap_frame(&self.reference, self.has_reference),
            has_reference: self.has_reference,
            reference_hash: self.reference_hash,
            reference_coarse: if self.has_reference {
                self.reference_coarse.clone()
            } else {
                Vec::new()
            },
            reference_sig: if self.has_reference_sig {
                self.reference_sig.clone()
            } else {
                Vec::new()
            },
            has_reference_sig: self.has_reference_sig,
            last_missed: self.last_missed,
            prev: snap_frame(&self.prev, self.has_prev),
            prev_fingerprint: self.prev_fingerprint,
            has_prev: self.has_prev,
        }
    }

    /// Rehydrates this recogniser from a checkpoint, reusing its grown
    /// buffers (no reallocation when frame dimensions match). Counters keep
    /// counting across the restore, exactly as they do across
    /// [`StreamRecognizer::reset`].
    ///
    /// # Panics
    /// Panics if the checkpoint was taken under a different
    /// [`TemporalConfig`] — restoring strict-gate state into an approximate
    /// gate (or with different tolerances) would silently change semantics.
    pub fn restore(&mut self, ck: &GateCheckpoint) {
        assert!(
            self.config == ck.config,
            "gate-state checkpoint config mismatch: recogniser {:?} vs checkpoint {:?}",
            self.config,
            ck.config
        );
        self.cached = ck.cached.clone();
        self.has_reference = ck.has_reference;
        if ck.has_reference {
            copy_frame_into(&mut self.reference, &ck.reference);
        }
        self.reference_hash = ck.reference_hash;
        self.reference_coarse.clear();
        self.reference_coarse
            .extend_from_slice(&ck.reference_coarse);
        self.reference_sig.clear();
        self.reference_sig.extend_from_slice(&ck.reference_sig);
        self.has_reference_sig = ck.has_reference_sig;
        self.last_missed = ck.last_missed;
        self.has_prev = ck.has_prev;
        if ck.has_prev {
            copy_frame_into(&mut self.prev, &ck.prev);
        }
        self.prev_fingerprint = ck.prev_fingerprint;
    }
}

/// `‖a − b‖ ≤ eps`, with an early exit once the running sum exceeds `eps²`
/// (misses bail out after a few samples instead of walking all 128).
fn euclidean_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let limit = eps * eps;
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        sum += d * d;
        if sum > limit {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
    use rand::{rngs::SmallRng, SeedableRng};

    fn calibrated() -> RecognitionPipeline {
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        p
    }

    fn yes_frame() -> GrayImage {
        render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 5.0, 3.0),
        )
    }

    fn jittered(base: &GrayImage, seed: u64) -> GrayImage {
        let mut f = base.clone();
        let mut rng = SmallRng::seed_from_u64(seed);
        hdc_raster::noise::add_salt_pepper(&mut f, 0.001, &mut rng);
        f
    }

    #[test]
    fn off_mode_never_reuses() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let mut rec = StreamRecognizer::new(TemporalConfig::off());
        let frame = yes_frame();
        for _ in 0..4 {
            rec.recognize(&p, &mut scratch, &frame);
        }
        assert_eq!(rec.counters().full_runs, 4);
        assert_eq!(rec.counters().hits(), 0);
    }

    #[test]
    fn strict_reuses_identical_frames_only() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let mut rec = StreamRecognizer::new(TemporalConfig::strict());
        let frame = yes_frame();
        let touched = jittered(&frame, 7);

        let first = rec.recognize(&p, &mut scratch, &frame).clone();
        let hit = rec.recognize(&p, &mut scratch, &frame).clone();
        assert_eq!(first, hit);
        assert_eq!(rec.counters().strict_hits, 1);

        rec.recognize(&p, &mut scratch, &touched);
        assert_eq!(
            rec.counters().full_runs,
            2,
            "jitter must miss the strict gate"
        );
        // back to the original frame: it is no longer the reference
        rec.recognize(&p, &mut scratch, &frame);
        assert_eq!(rec.counters().full_runs, 3);
        assert_eq!(rec.counters().frames(), 4);
    }

    #[test]
    fn strict_output_matches_ungated_on_a_mixed_stream() {
        let p = calibrated();
        let mut frames = Vec::new();
        for sign in MarshallingSign::ALL {
            let f = render_sign(sign, &ViewSpec::paper_default(0.0, 5.0, 3.0));
            frames.push(f.clone());
            frames.push(f.clone()); // duplicate → strict hit
            frames.push(f);
        }
        frames.push(GrayImage::new(64, 64)); // failure frame
        frames.push(GrayImage::new(64, 64)); // duplicated failure

        let mut s1 = FrameScratch::new();
        let mut s2 = FrameScratch::new();
        let mut gated = StreamRecognizer::new(TemporalConfig::strict());
        for frame in &frames {
            let want = crate::engine::RecognitionEngine::recognize_one(&p, &mut s1, frame);
            let got = gated.recognize(&p, &mut s2, frame).clone();
            assert_eq!(got, want);
        }
        assert!(
            gated.counters().strict_hits >= frames.len() / 2,
            "duplicates must hit"
        );
    }

    #[test]
    fn approximate_absorbs_sensor_jitter() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let mut rec = StreamRecognizer::new(TemporalConfig::approximate());
        let base = yes_frame();
        let first = rec.recognize(&p, &mut scratch, &base).clone();
        for seed in 0..5 {
            let got = rec
                .recognize(&p, &mut scratch, &jittered(&base, seed))
                .clone();
            assert_eq!(got, first, "jittered hold frames reuse the decision");
        }
        assert_eq!(rec.counters().approx_hits, 5);
        assert_eq!(rec.counters().full_runs, 1);
    }

    #[test]
    fn approximate_recomputes_on_a_sign_change() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let mut rec = StreamRecognizer::new(TemporalConfig::approximate());
        let yes = yes_frame();
        let no = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));

        assert_eq!(
            rec.recognize(&p, &mut scratch, &yes).decision.as_deref(),
            Some("Yes")
        );
        assert_eq!(
            rec.recognize(&p, &mut scratch, &no).decision.as_deref(),
            Some("No"),
            "a real sign change must not be gated away"
        );
        assert_eq!(rec.counters().full_runs, 2);
        assert_eq!(rec.counters().approx_hits, 0);
    }

    #[test]
    fn resolution_change_misses_every_gate() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        for config in [TemporalConfig::strict(), TemporalConfig::approximate()] {
            let mut rec = StreamRecognizer::new(config);
            rec.recognize(&p, &mut scratch, &GrayImage::new(64, 64));
            rec.recognize(&p, &mut scratch, &GrayImage::new(32, 32));
            assert_eq!(rec.counters().full_runs, 2);
            assert_eq!(rec.counters().hits(), 0);
        }
    }

    #[test]
    fn reset_forgets_the_cache_but_keeps_counting() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let mut rec = StreamRecognizer::new(TemporalConfig::strict());
        let frame = yes_frame();
        rec.recognize(&p, &mut scratch, &frame);
        rec.recognize(&p, &mut scratch, &frame);
        assert_eq!(rec.counters().strict_hits, 1);
        rec.reset();
        rec.recognize(&p, &mut scratch, &frame);
        assert_eq!(rec.counters().full_runs, 2, "reset must force a recompute");
        assert_eq!(rec.counters().strict_hits, 1);
    }

    #[test]
    fn counter_arithmetic() {
        let a = GateCounters {
            strict_hits: 5,
            approx_hits: 2,
            signature_short_circuits: 1,
            full_runs: 3,
        };
        assert_eq!(a.frames(), 11);
        assert_eq!(a.hits(), 8);
        let b = a.plus(&a);
        assert_eq!(b.frames(), 22);
        assert_eq!(b.since(&a), a);
    }

    #[test]
    fn checkpoint_restore_is_transparent_mid_stream() {
        // Run a mixed stream; at the midpoint, checkpoint, restore into a
        // FRESH recogniser, and continue both. The restored recogniser must
        // match the uninterrupted one decision-for-decision and gate-path-
        // for-gate-path (counter deltas equal) in every mode.
        let p = calibrated();
        let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
        let mut frames = Vec::new();
        for sign in MarshallingSign::ALL {
            let f = render_sign(sign, &view);
            frames.push(jittered(&f, 3));
            frames.push(f.clone());
            frames.push(f);
        }
        for config in [
            TemporalConfig::off(),
            TemporalConfig::strict(),
            TemporalConfig::approximate(),
        ] {
            let mut s1 = FrameScratch::new();
            let mut s2 = FrameScratch::new();
            let mut uninterrupted = StreamRecognizer::new(config);
            let mut first_half = StreamRecognizer::new(config);
            let mid = frames.len() / 2;
            for f in &frames[..mid] {
                let a = uninterrupted.recognize(&p, &mut s1, f).clone();
                let b = first_half.recognize(&p, &mut s2, f).clone();
                assert_eq!(a, b);
            }
            let ck = first_half.checkpoint();
            let mut resumed = StreamRecognizer::new(config);
            resumed.restore(&ck);
            let before_a = uninterrupted.counters();
            let before_b = resumed.counters();
            for f in &frames[mid..] {
                let a = uninterrupted.recognize(&p, &mut s1, f).clone();
                let b = resumed.recognize(&p, &mut s2, f).clone();
                assert_eq!(a, b, "restored stream diverged ({config:?})");
            }
            assert_eq!(
                uninterrupted.counters().since(&before_a),
                resumed.counters().since(&before_b),
                "restored stream took a different gate path ({config:?})"
            );
        }
    }

    #[test]
    fn checkpoint_of_a_fresh_recognizer_is_tiny_and_restores_to_cold() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let cold = StreamRecognizer::new(TemporalConfig::strict());
        let ck = cold.checkpoint();
        assert!(
            ck.approx_bytes() <= 2,
            "empty checkpoint must not carry frame buffers ({} bytes)",
            ck.approx_bytes()
        );
        // a warmed recogniser restored from the cold checkpoint recomputes
        let mut rec = StreamRecognizer::new(TemporalConfig::strict());
        let frame = yes_frame();
        rec.recognize(&p, &mut scratch, &frame);
        rec.restore(&ck);
        rec.recognize(&p, &mut scratch, &frame);
        assert_eq!(rec.counters().full_runs, 2);
        assert_eq!(rec.counters().strict_hits, 0);
    }

    #[test]
    #[should_panic(expected = "config mismatch")]
    fn restore_rejects_a_mismatched_config() {
        let ck = StreamRecognizer::new(TemporalConfig::strict()).checkpoint();
        StreamRecognizer::new(TemporalConfig::approximate()).restore(&ck);
    }

    #[test]
    fn euclidean_within_agrees_with_the_direct_formula() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.0, 2.5];
        let d = ((0.5f64).powi(2) * 2.0).sqrt();
        assert!(euclidean_within(&a, &b, d + 1e-9));
        assert!(!euclidean_within(&a, &b, d - 1e-9));
        assert!(
            !euclidean_within(&a, &b[..2], 10.0),
            "length mismatch is a miss"
        );
    }
}
