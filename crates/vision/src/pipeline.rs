//! The end-to-end recognition pipeline.

use crate::signature::{extract_signature, ShapeSignature, SignatureError};
use crate::timing::StageTimings;
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::threshold::{binarize, binarize_otsu};
use hdc_raster::{largest_component, morphology, Connectivity, GrayImage};
use hdc_sax::{IndexMatch, SaxIndex, SaxParams, SaxWord};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How frames are binarised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentationMode {
    /// Fixed threshold: pixels strictly above the value are foreground.
    Fixed(u8),
    /// Otsu's adaptive threshold per frame.
    Otsu,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Segmentation mode.
    pub segmentation: SegmentationMode,
    /// Whether to apply a morphological opening after segmentation
    /// (removes sensor speckle at the cost of one pass over the frame).
    pub denoise: bool,
    /// Signature length (samples after resampling).
    pub signature_len: usize,
    /// SAX parameters for the sign database.
    pub sax: SaxParams,
    /// Acceptance threshold on the exact rotation-invariant distance.
    /// Calibration replaces this with a margin-derived value.
    pub accept_threshold: f64,
    /// Ambiguity (ratio) test: the best match is accepted only when its
    /// distance is at most this fraction of the runner-up's (a different
    /// label). Near the dead angle every sign collapses to the same
    /// silhouette — the ratio test is what turns that collapse into a
    /// rejection instead of an arbitrary pick.
    pub ambiguity_ratio: f64,
    /// Minimum blob area in pixels for the signaller to count as present.
    pub min_blob_area: usize,
}

impl Default for PipelineConfig {
    /// Defaults used across the reproduction: fixed threshold at 128 (the
    /// synthetic frames are high-contrast, as are the paper's daylight
    /// frames), 128-sample signatures, SAX(16, 4), opening disabled.
    fn default() -> Self {
        PipelineConfig {
            segmentation: SegmentationMode::Fixed(128),
            denoise: false,
            signature_len: 128,
            sax: SaxParams::default(),
            accept_threshold: 6.0,
            ambiguity_ratio: 0.8,
            min_blob_area: 64,
        }
    }
}

/// The outcome of recognising one frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecognitionResult {
    /// The accepted sign label, or `None` when nothing matched within the
    /// threshold (unknown pose, dead angle, no signaller, …).
    pub decision: Option<String>,
    /// The best database match regardless of threshold (diagnostics).
    pub best: Option<IndexMatch>,
    /// The extracted signature, when one could be computed.
    pub signature: Option<ShapeSignature>,
    /// The SAX word of the query frame, when a signature existed.
    pub word: Option<SaxWord>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Why no signature was available (when `signature` is `None`).
    pub failure: Option<String>,
}

impl RecognitionResult {
    fn empty(timings: StageTimings, failure: String) -> Self {
        RecognitionResult {
            decision: None,
            best: None,
            signature: None,
            word: None,
            timings,
            failure: Some(failure),
        }
    }
}

/// The full recognition pipeline: segmentation → blob isolation → contour →
/// signature → SAX database match.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct RecognitionPipeline {
    config: PipelineConfig,
    index: SaxIndex,
}

impl RecognitionPipeline {
    /// Creates a pipeline with an empty sign database.
    pub fn new(config: PipelineConfig) -> Self {
        RecognitionPipeline {
            index: SaxIndex::new(config.sax, config.signature_len),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The underlying sign database.
    pub fn index(&self) -> &SaxIndex {
        &self.index
    }

    /// Number of enrolled sign templates.
    pub fn template_count(&self) -> usize {
        self.index.len()
    }

    /// Segments a frame into the signaller mask (shared by enroll/recognise).
    fn segment(&self, frame: &GrayImage) -> hdc_raster::Bitmap {
        let mask = match self.config.segmentation {
            SegmentationMode::Fixed(t) => binarize(frame, t),
            SegmentationMode::Otsu => binarize_otsu(frame),
        };
        if self.config.denoise {
            morphology::open(&mask)
        } else {
            mask
        }
    }

    /// Extracts a signature from a raw frame (enrollment path, untimed).
    ///
    /// # Errors
    /// [`SignatureError`] when no usable blob exists in the frame.
    pub fn signature_of(&self, frame: &GrayImage) -> Result<ShapeSignature, SignatureError> {
        let mask = self.segment(frame);
        let (blob, comp) = largest_component(&mask, Connectivity::Eight)
            .ok_or(SignatureError::EmptyMask)?;
        if comp.area < self.config.min_blob_area {
            return Err(SignatureError::BlobTooSmall {
                contour_points: comp.area,
                required: self.config.min_blob_area,
            });
        }
        extract_signature(&blob, self.config.signature_len)
    }

    /// Enrolls a canonical template frame under a label.
    ///
    /// # Errors
    /// [`SignatureError`] when the frame contains no usable signaller blob.
    pub fn enroll(&mut self, label: impl Into<String>, frame: &GrayImage) -> Result<(), SignatureError> {
        let sig = self.signature_of(frame)?;
        self.index.insert(label, &sig.series);
        Ok(())
    }

    /// Calibrates the acceptance threshold from the enrolled templates: a
    /// fraction of the smallest inter-template rotation-invariant distance,
    /// so that templates never collide and queries must be closer to a
    /// template than templates are to each other.
    ///
    /// Returns the new threshold. No-op (returns the current threshold) with
    /// fewer than two templates.
    pub fn calibrate_threshold(&mut self, margin_fraction: f64) -> f64 {
        let templates = self.index.templates();
        let mut min_pair = f64::INFINITY;
        for i in 0..templates.len() {
            for j in (i + 1)..templates.len() {
                let (d, _) = hdc_timeseries::min_rotated_euclidean(
                    &templates[i].series,
                    &templates[j].series,
                    1,
                )
                .expect("templates are canonical equal-length series");
                min_pair = min_pair.min(d);
            }
        }
        if min_pair.is_finite() {
            self.config.accept_threshold = min_pair * margin_fraction;
        }
        self.config.accept_threshold
    }

    /// Default margin fraction used by [`RecognitionPipeline::calibrate_from_views`].
    pub const DEFAULT_MARGIN_FRACTION: f64 = 0.95;

    /// One-call setup matching the paper's protocol: enroll the three
    /// marshalling signs from their canonical full-on (0° azimuth) views and
    /// calibrate the acceptance threshold.
    ///
    /// The paper: *"Using the 0° relative azimuth image as the canonical
    /// reference…"*.
    ///
    /// # Panics
    /// Panics if the canonical views produce no usable silhouettes (the
    /// caller supplied a degenerate view specification).
    pub fn calibrate_from_views(&mut self, canonical: &ViewSpec) {
        for sign in MarshallingSign::ALL {
            let frame = render_sign(sign, canonical);
            self.enroll(sign.label(), &frame)
                .expect("canonical view must show the signaller");
        }
        self.calibrate_threshold(Self::DEFAULT_MARGIN_FRACTION);
    }

    /// Recognises one frame, timing every stage.
    pub fn recognize(&self, frame: &GrayImage) -> RecognitionResult {
        let mut timings = StageTimings::default();

        let t0 = Instant::now();
        let mask = self.segment(frame);
        timings.segment_us = t0.elapsed().as_micros() as u64;

        let t1 = Instant::now();
        let blob = largest_component(&mask, Connectivity::Eight);
        timings.component_us = t1.elapsed().as_micros() as u64;
        let Some((blob, comp)) = blob else {
            return RecognitionResult::empty(timings, "no foreground blob".into());
        };
        if comp.area < self.config.min_blob_area {
            return RecognitionResult::empty(
                timings,
                format!("blob area {} below minimum {}", comp.area, self.config.min_blob_area),
            );
        }

        let t2 = Instant::now();
        let sig = extract_signature(&blob, self.config.signature_len);
        let sig_elapsed = t2.elapsed().as_micros() as u64;
        // contour tracing happens inside extract_signature; attribute the
        // whole step there and split evenly for reporting
        timings.contour_us = sig_elapsed / 2;
        timings.signature_us = sig_elapsed - timings.contour_us;
        let sig = match sig {
            Ok(s) => s,
            Err(e) => return RecognitionResult::empty(timings, e.to_string()),
        };

        let t3 = Instant::now();
        let word = self.index.encode(&sig.series);
        let matched = self.index.best_two(&sig.series);
        timings.classify_us = t3.elapsed().as_micros() as u64;

        let (best, runner_up) = match matched {
            Some((b, r)) => (Some(b), r),
            None => (None, None),
        };
        let decision = best
            .as_ref()
            .filter(|m| {
                let within = m.distance <= self.config.accept_threshold;
                let unambiguous = runner_up
                    .map(|r| m.distance <= self.config.ambiguity_ratio * r)
                    .unwrap_or(true);
                within && unambiguous
            })
            .map(|m| m.label.clone());

        RecognitionResult {
            decision,
            best,
            signature: Some(sig),
            word: Some(word),
            timings,
            failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrated() -> RecognitionPipeline {
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        p
    }

    #[test]
    fn recognises_all_three_signs_frontal() {
        let p = calibrated();
        for sign in MarshallingSign::ALL {
            let frame = render_sign(sign, &ViewSpec::paper_default(0.0, 5.0, 3.0));
            let r = p.recognize(&frame);
            assert_eq!(r.decision.as_deref(), Some(sign.label()), "{sign}");
            assert!(r.best.unwrap().distance < 1e-6, "self-match is exact");
        }
    }

    #[test]
    fn recognises_within_altitude_window() {
        // the paper's E2 claim: an altitude window around the canonical view
        // (theirs 2–5 m; our capsule figure gives 2.5–6 m — same shape,
        // shifted by the synthetic body geometry, see EXPERIMENTS.md E2)
        let p = calibrated();
        for alt in [2.5, 3.0, 4.0, 5.0, 6.0] {
            let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, alt, 3.0));
            let r = p.recognize(&frame);
            assert_eq!(r.decision.as_deref(), Some("No"), "altitude {alt}");
        }
    }

    #[test]
    fn rejects_outside_altitude_window() {
        let p = calibrated();
        for alt in [1.0, 1.5, 10.0] {
            let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, alt, 3.0));
            let r = p.recognize(&frame);
            assert_ne!(r.decision.as_deref(), Some("No"), "altitude {alt} is outside the window");
        }
    }

    #[test]
    fn azimuth_window_boundaries() {
        // recognisable in the frontal cone, rejected beyond the critical
        // azimuth (paper: erratic > 65°; our figure: > ~32°)
        let p = calibrated();
        for az in [0.0, 15.0, 30.0] {
            let frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(az, 5.0, 3.0));
            assert_eq!(
                p.recognize(&frame).decision.as_deref(),
                Some("Yes"),
                "azimuth {az} inside the cone"
            );
        }
        for az in [40.0, 50.0, 65.0, 90.0] {
            let frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(az, 5.0, 3.0));
            assert_eq!(p.recognize(&frame).decision, None, "azimuth {az} beyond the cone");
        }
    }

    #[test]
    fn rejects_empty_frame() {
        let p = calibrated();
        let r = p.recognize(&GrayImage::new(640, 480));
        assert!(r.decision.is_none());
        assert!(r.failure.as_deref() == Some("no foreground blob"));
    }

    #[test]
    fn rejects_tiny_blob() {
        let p = calibrated();
        let mut frame = GrayImage::new(640, 480);
        frame.set(10, 10, 255);
        frame.set(11, 10, 255);
        let r = p.recognize(&frame);
        assert!(r.decision.is_none());
        assert!(r.failure.unwrap().contains("below minimum"));
    }

    #[test]
    fn side_view_is_rejected() {
        // 90° azimuth: the sign collapses into the torso — the dead angle
        let p = calibrated();
        let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(90.0, 5.0, 3.0));
        let r = p.recognize(&frame);
        assert_ne!(r.decision.as_deref(), Some("No"), "side view must not read as No");
    }

    #[test]
    fn timings_are_recorded() {
        let p = calibrated();
        let frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let r = p.recognize(&frame);
        assert!(r.timings.total_us() > 0);
        assert!(r.timings.segment_us > 0);
        assert!(r.timings.classify_us > 0);
    }

    #[test]
    fn calibration_sets_threshold_from_margin() {
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        let before = p.config().accept_threshold;
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        let after = p.config().accept_threshold;
        assert_ne!(before, after);
        assert_eq!(p.template_count(), 3);
        assert!(after > 0.0);
    }

    #[test]
    fn otsu_mode_works_too() {
        let mut cfg = PipelineConfig::default();
        cfg.segmentation = SegmentationMode::Otsu;
        let mut p = RecognitionPipeline::new(cfg);
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        let frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(0.0, 4.0, 3.0));
        let r = p.recognize(&frame);
        assert_eq!(r.decision.as_deref(), Some("Yes"));
    }

    #[test]
    fn denoise_survives_speckle() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut cfg = PipelineConfig::default();
        cfg.denoise = true;
        let mut p = RecognitionPipeline::new(cfg);
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        let mut frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(0.0, 4.0, 3.0));
        let mut rng = SmallRng::seed_from_u64(99);
        hdc_raster::noise::add_salt_pepper(&mut frame, 0.02, &mut rng);
        let r = p.recognize(&frame);
        assert_eq!(r.decision.as_deref(), Some("Yes"), "opening removes speckle");
    }

    #[test]
    fn oblique_frame_processes_faster_than_frontal() {
        // the paper's 27 ms (65°) < 38 ms (0°) ordering comes from the
        // smaller silhouette: check the contour is shorter at 65°
        let p = calibrated();
        let f0 = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let f65 = render_sign(MarshallingSign::No, &ViewSpec::paper_default(65.0, 5.0, 3.0));
        let r0 = p.recognize(&f0);
        let r65 = p.recognize(&f65);
        let c0 = r0.signature.unwrap().contour_len;
        let c65 = r65.signature.unwrap().contour_len;
        assert!(c65 < c0, "oblique contour {c65} should be shorter than frontal {c0}");
    }
}
