//! The end-to-end recognition pipeline.

use crate::signature::{
    signature_from_contour, trace_contour_packed_with, trace_contour_with, ShapeSignature,
    SignatureError, SignatureScratch, SignatureStats,
};
use crate::timing::StageTimings;
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::threshold::{
    binarize_bytes_into, binarize_into, binarize_packed_into, otsu_threshold,
};
use hdc_raster::{
    largest_component_packed_with, largest_component_with, morphology, BitMask, Bitmap,
    Connectivity, GrayImage, LabelScratch,
};
use hdc_sax::{IndexMatch, IndexMatchRef, QueryScratch, SaxIndex, SaxParams, SaxWord};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// How frames are binarised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentationMode {
    /// Fixed threshold: pixels strictly above the value are foreground.
    Fixed(u8),
    /// Otsu's adaptive threshold per frame.
    Otsu,
}

/// Which kernel family the silhouette stages run on.
///
/// All three produce bit-identical masks, contours and decisions
/// (property-tested in `tests/packed_equivalence.rs`); they differ only in
/// speed. The byte and packed paths are retained as oracles and as the
/// honest "before" baselines for the committed benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum KernelPath {
    /// One byte per pixel ([`Bitmap`]): the original kernels.
    Byte,
    /// 64 pixels per `u64` word ([`BitMask`]): word-parallel bit ops,
    /// including the SWAR packed binariser.
    Packed,
    /// Byte-compare binarisation (one branch-free byte op per pixel, which
    /// the compiler vectorises) followed by a single gather-multiply pack
    /// into the [`BitMask`] layout, then the word-parallel
    /// morphology/labelling/contour kernels. Combines the fastest binariser
    /// with the fastest silhouette kernels.
    #[default]
    Hybrid,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Segmentation mode.
    pub segmentation: SegmentationMode,
    /// Kernel family for the silhouette stages (segment → morphology →
    /// component → contour). Decisions are identical either way.
    pub kernels: KernelPath,
    /// Whether to apply a morphological opening after segmentation
    /// (removes sensor speckle at the cost of one pass over the frame).
    pub denoise: bool,
    /// Signature length (samples after resampling).
    pub signature_len: usize,
    /// SAX parameters for the sign database.
    pub sax: SaxParams,
    /// Acceptance threshold on the exact rotation-invariant distance.
    /// Calibration replaces this with a margin-derived value.
    pub accept_threshold: f64,
    /// Ambiguity (ratio) test: the best match is accepted only when its
    /// distance is at most this fraction of the runner-up's (a different
    /// label). Near the dead angle every sign collapses to the same
    /// silhouette — the ratio test is what turns that collapse into a
    /// rejection instead of an arbitrary pick.
    pub ambiguity_ratio: f64,
    /// Minimum blob area in pixels for the signaller to count as present.
    pub min_blob_area: usize,
}

impl Default for PipelineConfig {
    /// Defaults used across the reproduction: fixed threshold at 128 (the
    /// synthetic frames are high-contrast, as are the paper's daylight
    /// frames), 128-sample signatures, SAX(16, 4), opening disabled.
    fn default() -> Self {
        PipelineConfig {
            segmentation: SegmentationMode::Fixed(128),
            kernels: KernelPath::default(),
            denoise: false,
            signature_len: 128,
            sax: SaxParams::default(),
            accept_threshold: 6.0,
            ambiguity_ratio: 0.8,
            min_blob_area: 64,
        }
    }
}

/// The outcome of recognising one frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecognitionResult {
    /// The accepted sign label, or `None` when nothing matched within the
    /// threshold (unknown pose, dead angle, no signaller, …).
    pub decision: Option<String>,
    /// The best database match regardless of threshold (diagnostics).
    pub best: Option<IndexMatch>,
    /// The extracted signature, when one could be computed.
    pub signature: Option<ShapeSignature>,
    /// The SAX word of the query frame, when a signature existed.
    pub word: Option<SaxWord>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Why no signature was available (when `signature` is `None`).
    pub failure: Option<String>,
}

impl RecognitionResult {
    fn empty(timings: StageTimings, failure: String) -> Self {
        RecognitionResult {
            decision: None,
            best: None,
            signature: None,
            word: None,
            timings,
            failure: Some(failure),
        }
    }
}

/// Why a frame produced no decision, without allocating the message string
/// (the steady-state loop must stay allocation-free even on reject frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFailure {
    /// The segmented frame contained no foreground blob at all.
    NoBlob,
    /// The largest blob was below the configured minimum area.
    BlobTooSmall {
        /// Area of the largest blob, in pixels.
        area: usize,
        /// The configured minimum.
        required: usize,
    },
    /// Contour tracing / signature extraction failed.
    Signature(SignatureError),
}

impl fmt::Display for FrameFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameFailure::NoBlob => write!(f, "no foreground blob"),
            FrameFailure::BlobTooSmall { area, required } => {
                write!(f, "blob area {area} below minimum {required}")
            }
            FrameFailure::Signature(e) => e.fmt(f),
        }
    }
}

impl FrameFailure {
    /// Maps to the enrollment-path error type ([`SignatureError`]), matching
    /// what [`RecognitionPipeline::signature_of`] has always reported: an
    /// empty mask and an undersized blob both surface as signature errors.
    fn into_signature_error(self) -> SignatureError {
        match self {
            FrameFailure::NoBlob => SignatureError::EmptyMask,
            FrameFailure::BlobTooSmall { area, required } => SignatureError::BlobTooSmall {
                contour_points: area,
                required,
            },
            FrameFailure::Signature(e) => e,
        }
    }
}

/// The allocation-free outcome of [`RecognitionPipeline::recognize_with`]:
/// the label is borrowed from the sign database and the signature series
/// stays in the [`FrameScratch`] (readable via [`FrameScratch::signature_series`]).
#[derive(Debug, Clone, Copy)]
pub struct FrameResult<'a> {
    /// The accepted sign label, or `None` when nothing matched within the
    /// threshold.
    pub decision: Option<&'a str>,
    /// The best database match regardless of threshold (diagnostics).
    pub best: Option<IndexMatchRef<'a>>,
    /// Exact distance to the best template of a *different* label, when one
    /// exists (the ambiguity-test denominator).
    pub runner_up: Option<f64>,
    /// Signature metadata, when a signature was extracted.
    pub stats: Option<SignatureStats>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Why no signature was available (when `stats` is `None`).
    pub failure: Option<FrameFailure>,
}

impl<'a> FrameResult<'a> {
    pub(crate) fn failed(timings: StageTimings, failure: FrameFailure) -> Self {
        FrameResult {
            decision: None,
            best: None,
            runner_up: None,
            stats: None,
            timings,
            failure: Some(failure),
        }
    }
}

/// Every buffer the recognition loop needs, allocated once and reused across
/// frames: after a warm-up frame per resolution, recognising through
/// [`RecognitionPipeline::recognize_with`] performs no heap allocation.
#[derive(Debug, Clone)]
pub struct FrameScratch {
    /// Binarised frame.
    mask: Bitmap,
    /// Morphological-opening intermediate (erosion output).
    eroded: Bitmap,
    /// Morphological-opening output.
    opened: Bitmap,
    /// Isolated largest-component mask.
    blob: Bitmap,
    /// Binarised frame as 0/1 bytes ([`KernelPath::Hybrid`]'s pack input).
    mask_u8: GrayImage,
    /// Binarised frame, bit-packed ([`KernelPath::Packed`] / Hybrid).
    mask_bits: BitMask,
    /// Packed morphological-opening intermediate.
    eroded_bits: BitMask,
    /// Packed morphological-opening output.
    opened_bits: BitMask,
    /// Packed isolated largest-component mask.
    blob_bits: BitMask,
    /// Connected-component labelling buffers.
    label: LabelScratch,
    /// Contour + signature buffers.
    sig: SignatureScratch,
    /// SAX query buffers.
    query: QueryScratch,
}

impl FrameScratch {
    /// Fresh scratch; buffers grow to frame size on first use.
    pub fn new() -> Self {
        FrameScratch {
            mask: Bitmap::new(1, 1),
            eroded: Bitmap::new(1, 1),
            opened: Bitmap::new(1, 1),
            blob: Bitmap::new(1, 1),
            mask_u8: GrayImage::new(1, 1),
            mask_bits: BitMask::new(1, 1),
            eroded_bits: BitMask::new(1, 1),
            opened_bits: BitMask::new(1, 1),
            blob_bits: BitMask::new(1, 1),
            label: LabelScratch::new(),
            sig: SignatureScratch::new(),
            query: QueryScratch::new(),
        }
    }

    /// The z-normalised signature series of the most recently recognised
    /// frame (empty before the first successful frame).
    pub fn signature_series(&self) -> &[f64] {
        self.sig.series()
    }
}

impl Default for FrameScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The full recognition pipeline: segmentation → blob isolation → contour →
/// signature → SAX database match.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct RecognitionPipeline {
    config: PipelineConfig,
    index: SaxIndex,
}

impl RecognitionPipeline {
    /// Creates a pipeline with an empty sign database.
    pub fn new(config: PipelineConfig) -> Self {
        RecognitionPipeline {
            index: SaxIndex::new(config.sax, config.signature_len),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The underlying sign database.
    pub fn index(&self) -> &SaxIndex {
        &self.index
    }

    /// Number of enrolled sign templates.
    pub fn template_count(&self) -> usize {
        self.index.len()
    }

    /// The shared front half of the pipeline — segment → isolate largest blob
    /// → trace contour → signature — used by both the enrollment path
    /// ([`RecognitionPipeline::signature_of`], which discards the timings)
    /// and the timed recognition path. On success the signature series is in
    /// `scratch.sig` and its metadata is returned.
    pub(crate) fn signature_stages(
        &self,
        frame: &GrayImage,
        scratch: &mut FrameScratch,
        timings: &mut StageTimings,
    ) -> Result<SignatureStats, FrameFailure> {
        let threshold = match self.config.segmentation {
            SegmentationMode::Fixed(t) => t,
            SegmentationMode::Otsu => otsu_threshold(frame),
        };
        let comp = match self.config.kernels {
            KernelPath::Byte => {
                let t0 = Instant::now();
                binarize_into(frame, threshold, &mut scratch.mask);
                if self.config.denoise {
                    morphology::open_into(&scratch.mask, &mut scratch.eroded, &mut scratch.opened);
                }
                timings.segment_us = t0.elapsed().as_micros() as u64;
                let mask = if self.config.denoise {
                    &scratch.opened
                } else {
                    &scratch.mask
                };
                let t1 = Instant::now();
                let comp = largest_component_with(
                    mask,
                    Connectivity::Eight,
                    &mut scratch.blob,
                    &mut scratch.label,
                );
                timings.component_us = t1.elapsed().as_micros() as u64;
                comp
            }
            KernelPath::Packed | KernelPath::Hybrid => {
                let t0 = Instant::now();
                if self.config.kernels == KernelPath::Hybrid {
                    // byte-compare binarise (vectorised), then one
                    // gather-multiply pack into the word layout
                    binarize_bytes_into(frame, threshold, &mut scratch.mask_u8);
                    scratch.mask_bits.pack_from_bytes(&scratch.mask_u8);
                } else {
                    binarize_packed_into(frame, threshold, &mut scratch.mask_bits);
                }
                if self.config.denoise {
                    morphology::open_packed_into(
                        &scratch.mask_bits,
                        &mut scratch.eroded_bits,
                        &mut scratch.opened_bits,
                    );
                }
                timings.segment_us = t0.elapsed().as_micros() as u64;
                let mask = if self.config.denoise {
                    &scratch.opened_bits
                } else {
                    &scratch.mask_bits
                };
                let t1 = Instant::now();
                let comp = largest_component_packed_with(
                    mask,
                    Connectivity::Eight,
                    &mut scratch.blob_bits,
                    &mut scratch.label,
                );
                timings.component_us = t1.elapsed().as_micros() as u64;
                comp
            }
        };
        let Some(comp) = comp else {
            return Err(FrameFailure::NoBlob);
        };
        if comp.area < self.config.min_blob_area {
            return Err(FrameFailure::BlobTooSmall {
                area: comp.area,
                required: self.config.min_blob_area,
            });
        }

        let t2 = Instant::now();
        let traced = match self.config.kernels {
            KernelPath::Byte => trace_contour_with(&scratch.blob, &mut scratch.sig),
            KernelPath::Packed | KernelPath::Hybrid => {
                trace_contour_packed_with(&scratch.blob_bits, &mut scratch.sig)
            }
        };
        timings.contour_us = t2.elapsed().as_micros() as u64;
        traced.map_err(FrameFailure::Signature)?;

        let t3 = Instant::now();
        let stats = signature_from_contour(&mut scratch.sig, self.config.signature_len);
        timings.signature_us = t3.elapsed().as_micros() as u64;
        Ok(stats)
    }

    /// Extracts a signature from a raw frame (enrollment path, untimed).
    ///
    /// # Errors
    /// [`SignatureError`] when no usable blob exists in the frame.
    pub fn signature_of(&self, frame: &GrayImage) -> Result<ShapeSignature, SignatureError> {
        let mut scratch = FrameScratch::new();
        let mut timings = StageTimings::default();
        let stats = self
            .signature_stages(frame, &mut scratch, &mut timings)
            .map_err(FrameFailure::into_signature_error)?;
        Ok(ShapeSignature {
            series: scratch.sig.series().to_vec(),
            contour_len: stats.contour_len,
            centroid: stats.centroid,
            mean_radius: stats.mean_radius,
        })
    }

    /// Enrolls a canonical template frame under a label.
    ///
    /// # Errors
    /// [`SignatureError`] when the frame contains no usable signaller blob.
    pub fn enroll(
        &mut self,
        label: impl Into<String>,
        frame: &GrayImage,
    ) -> Result<(), SignatureError> {
        let sig = self.signature_of(frame)?;
        self.index.insert(label, &sig.series);
        Ok(())
    }

    /// Calibrates the acceptance threshold from the enrolled templates: a
    /// fraction of the smallest inter-template rotation-invariant distance,
    /// so that templates never collide and queries must be closer to a
    /// template than templates are to each other.
    ///
    /// Returns the new threshold. No-op (returns the current threshold) with
    /// fewer than two templates.
    pub fn calibrate_threshold(&mut self, margin_fraction: f64) -> f64 {
        let templates = self.index.templates();
        let mut min_pair = f64::INFINITY;
        for i in 0..templates.len() {
            for j in (i + 1)..templates.len() {
                let (d, _) = hdc_timeseries::min_rotated_euclidean(
                    &templates[i].series,
                    &templates[j].series,
                    1,
                )
                .expect("templates are canonical equal-length series");
                min_pair = min_pair.min(d);
            }
        }
        if min_pair.is_finite() {
            self.config.accept_threshold = min_pair * margin_fraction;
        }
        self.config.accept_threshold
    }

    /// Default margin fraction used by [`RecognitionPipeline::calibrate_from_views`].
    pub const DEFAULT_MARGIN_FRACTION: f64 = 0.95;

    /// One-call setup matching the paper's protocol: enroll the three
    /// marshalling signs from their canonical full-on (0° azimuth) views and
    /// calibrate the acceptance threshold.
    ///
    /// The paper: *"Using the 0° relative azimuth image as the canonical
    /// reference…"*.
    ///
    /// # Panics
    /// Panics if the canonical views produce no usable silhouettes (the
    /// caller supplied a degenerate view specification).
    pub fn calibrate_from_views(&mut self, canonical: &ViewSpec) {
        for sign in MarshallingSign::ALL {
            let frame = render_sign(sign, canonical);
            self.enroll(sign.label(), &frame)
                .expect("canonical view must show the signaller");
        }
        self.calibrate_threshold(Self::DEFAULT_MARGIN_FRACTION);
    }

    /// Recognises one frame, timing every stage.
    ///
    /// Thin allocating wrapper over [`RecognitionPipeline::recognize_with`]
    /// that materialises the owned diagnostics (label, signature, SAX word).
    pub fn recognize(&self, frame: &GrayImage) -> RecognitionResult {
        let mut scratch = FrameScratch::new();
        let r = self.recognize_with(&mut scratch, frame);
        if let Some(failure) = r.failure {
            return RecognitionResult::empty(r.timings, failure.to_string());
        }
        let stats = r.stats.expect("successful frames carry signature stats");
        let series = scratch.sig.series().to_vec();
        let word = self.index.encode(&series);
        RecognitionResult {
            decision: r.decision.map(str::to_owned),
            best: r.best.map(IndexMatchRef::into_owned),
            signature: Some(ShapeSignature {
                series,
                contour_len: stats.contour_len,
                centroid: stats.centroid,
                mean_radius: stats.mean_radius,
            }),
            word: Some(word),
            timings: r.timings,
            failure: None,
        }
    }

    /// Recognises one frame through caller-provided scratch buffers: the
    /// steady-state form of [`RecognitionPipeline::recognize`] that performs
    /// no heap allocation after the first frame at a given resolution.
    ///
    /// The decision logic (acceptance threshold + ambiguity ratio) is
    /// identical to `recognize`; the result borrows its labels from the sign
    /// database and leaves the signature series in the scratch
    /// ([`FrameScratch::signature_series`]).
    pub fn recognize_with<'a>(
        &'a self,
        scratch: &mut FrameScratch,
        frame: &GrayImage,
    ) -> FrameResult<'a> {
        let mut timings = StageTimings::default();
        let stats = match self.signature_stages(frame, scratch, &mut timings) {
            Ok(stats) => stats,
            Err(failure) => return FrameResult::failed(timings, failure),
        };
        self.classify_pass(scratch, stats, timings)
    }

    /// The back half of [`RecognitionPipeline::recognize_with`]: SAX search
    /// over the signature already sitting in `scratch.sig`, then the
    /// acceptance-threshold + ambiguity-ratio decision. Split out so the
    /// temporal gate ([`crate::temporal`]) can recompute a signature and
    /// still skip this stage when the signature is within its cached-ε.
    pub(crate) fn classify_pass<'a>(
        &'a self,
        scratch: &mut FrameScratch,
        stats: SignatureStats,
        mut timings: StageTimings,
    ) -> FrameResult<'a> {
        let t = Instant::now();
        let matched = self
            .index
            .best_two_with(scratch.sig.series(), &mut scratch.query);
        timings.classify_us = t.elapsed().as_micros() as u64;

        let (best, runner_up) = match matched {
            Some((b, r)) => (Some(b), r),
            None => (None, None),
        };
        let decision = best
            .as_ref()
            .filter(|m| {
                let within = m.distance <= self.config.accept_threshold;
                let unambiguous = runner_up
                    .map(|r| m.distance <= self.config.ambiguity_ratio * r)
                    .unwrap_or(true);
                within && unambiguous
            })
            .map(|m| m.label);

        FrameResult {
            decision,
            best,
            runner_up,
            stats: Some(stats),
            timings,
            failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrated() -> RecognitionPipeline {
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        p
    }

    #[test]
    fn recognises_all_three_signs_frontal() {
        let p = calibrated();
        for sign in MarshallingSign::ALL {
            let frame = render_sign(sign, &ViewSpec::paper_default(0.0, 5.0, 3.0));
            let r = p.recognize(&frame);
            assert_eq!(r.decision.as_deref(), Some(sign.label()), "{sign}");
            assert!(r.best.unwrap().distance < 1e-6, "self-match is exact");
        }
    }

    #[test]
    fn recognises_within_altitude_window() {
        // the paper's E2 claim: an altitude window around the canonical view
        // (theirs 2–5 m; our capsule figure gives 2.5–6 m — same shape,
        // shifted by the synthetic body geometry, see EXPERIMENTS.md E2)
        let p = calibrated();
        for alt in [2.5, 3.0, 4.0, 5.0, 6.0] {
            let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, alt, 3.0));
            let r = p.recognize(&frame);
            assert_eq!(r.decision.as_deref(), Some("No"), "altitude {alt}");
        }
    }

    #[test]
    fn rejects_outside_altitude_window() {
        let p = calibrated();
        for alt in [1.0, 1.5, 10.0] {
            let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, alt, 3.0));
            let r = p.recognize(&frame);
            assert_ne!(
                r.decision.as_deref(),
                Some("No"),
                "altitude {alt} is outside the window"
            );
        }
    }

    #[test]
    fn azimuth_window_boundaries() {
        // recognisable in the frontal cone, rejected beyond the critical
        // azimuth (paper: erratic > 65°; our figure: > ~32°)
        let p = calibrated();
        for az in [0.0, 15.0, 30.0] {
            let frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(az, 5.0, 3.0));
            assert_eq!(
                p.recognize(&frame).decision.as_deref(),
                Some("Yes"),
                "azimuth {az} inside the cone"
            );
        }
        for az in [40.0, 50.0, 65.0, 90.0] {
            let frame = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(az, 5.0, 3.0));
            assert_eq!(
                p.recognize(&frame).decision,
                None,
                "azimuth {az} beyond the cone"
            );
        }
    }

    #[test]
    fn rejects_empty_frame() {
        let p = calibrated();
        let r = p.recognize(&GrayImage::new(640, 480));
        assert!(r.decision.is_none());
        assert!(r.failure.as_deref() == Some("no foreground blob"));
    }

    #[test]
    fn rejects_tiny_blob() {
        let p = calibrated();
        let mut frame = GrayImage::new(640, 480);
        frame.set(10, 10, 255);
        frame.set(11, 10, 255);
        let r = p.recognize(&frame);
        assert!(r.decision.is_none());
        assert!(r.failure.unwrap().contains("below minimum"));
    }

    #[test]
    fn side_view_is_rejected() {
        // 90° azimuth: the sign collapses into the torso — the dead angle
        let p = calibrated();
        let frame = render_sign(
            MarshallingSign::No,
            &ViewSpec::paper_default(90.0, 5.0, 3.0),
        );
        let r = p.recognize(&frame);
        assert_ne!(
            r.decision.as_deref(),
            Some("No"),
            "side view must not read as No"
        );
    }

    #[test]
    fn timings_are_recorded() {
        let p = calibrated();
        let frame = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 5.0, 3.0),
        );
        let r = p.recognize(&frame);
        assert!(r.timings.total_us() > 0);
        assert!(r.timings.segment_us > 0);
        assert!(r.timings.classify_us > 0);
    }

    #[test]
    fn calibration_sets_threshold_from_margin() {
        let mut p = RecognitionPipeline::new(PipelineConfig::default());
        let before = p.config().accept_threshold;
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        let after = p.config().accept_threshold;
        assert_ne!(before, after);
        assert_eq!(p.template_count(), 3);
        assert!(after > 0.0);
    }

    #[test]
    fn otsu_mode_works_too() {
        let cfg = PipelineConfig {
            segmentation: SegmentationMode::Otsu,
            ..Default::default()
        };
        let mut p = RecognitionPipeline::new(cfg);
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        let frame = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 4.0, 3.0),
        );
        let r = p.recognize(&frame);
        assert_eq!(r.decision.as_deref(), Some("Yes"));
    }

    #[test]
    fn denoise_survives_speckle() {
        use rand::{rngs::SmallRng, SeedableRng};
        let cfg = PipelineConfig {
            denoise: true,
            ..Default::default()
        };
        let mut p = RecognitionPipeline::new(cfg);
        p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
        let mut frame = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 4.0, 3.0),
        );
        let mut rng = SmallRng::seed_from_u64(99);
        hdc_raster::noise::add_salt_pepper(&mut frame, 0.02, &mut rng);
        let r = p.recognize(&frame);
        assert_eq!(
            r.decision.as_deref(),
            Some("Yes"),
            "opening removes speckle"
        );
    }

    #[test]
    fn scratch_path_matches_allocating_path() {
        // One reused scratch across a mixed stream of frames (different
        // signs, views, failures) must reproduce `recognize` exactly.
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let mut views = vec![];
        for az in [0.0, 15.0, 40.0, 90.0] {
            for sign in MarshallingSign::ALL {
                views.push(render_sign(sign, &ViewSpec::paper_default(az, 5.0, 3.0)));
            }
        }
        views.push(GrayImage::new(64, 64)); // no blob
        for frame in &views {
            let owned = p.recognize(frame);
            let lean = p.recognize_with(&mut scratch, frame);
            assert_eq!(lean.decision.map(str::to_owned), owned.decision);
            assert_eq!(lean.best.map(IndexMatchRef::into_owned), owned.best);
            assert_eq!(
                lean.failure.map(|f| f.to_string()),
                owned.failure,
                "failure strings must match the historical ones"
            );
            match (&lean.stats, &owned.signature) {
                (Some(st), Some(sig)) => {
                    assert_eq!(scratch.signature_series(), &sig.series[..]);
                    assert_eq!(st.contour_len, sig.contour_len);
                    assert_eq!(st.centroid, sig.centroid);
                    assert_eq!(st.mean_radius, sig.mean_radius);
                }
                (None, None) => {}
                _ => panic!("stats and signature must agree on availability"),
            }
        }
    }

    #[test]
    fn scratch_path_times_contour_and_signature_separately() {
        let p = calibrated();
        let mut scratch = FrameScratch::new();
        let frame = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 5.0, 3.0),
        );
        let r = p.recognize_with(&mut scratch, &frame);
        assert!(r.failure.is_none());
        assert!(r.timings.segment_us > 0);
        // contour and signature are measured independently now (no 50/50
        // split); both stages do real work on a full silhouette, so totals
        // must be recorded — but we can only assert the sum robustly since
        // either stage may round to 0 µs on a fast machine.
        assert!(r.timings.total_us() > 0);
    }

    #[test]
    fn oblique_frame_processes_faster_than_frontal() {
        // the paper's 27 ms (65°) < 38 ms (0°) ordering comes from the
        // smaller silhouette: check the contour is shorter at 65°
        let p = calibrated();
        let f0 = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let f65 = render_sign(
            MarshallingSign::No,
            &ViewSpec::paper_default(65.0, 5.0, 3.0),
        );
        let r0 = p.recognize(&f0);
        let r65 = p.recognize(&f65);
        let c0 = r0.signature.unwrap().contour_len;
        let c65 = r65.signature.unwrap().contour_len;
        assert!(
            c65 < c0,
            "oblique contour {c65} should be shorter than frontal {c0}"
        );
    }
}
