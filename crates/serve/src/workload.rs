//! The canonical serving workloads behind the golden digests.
//!
//! Three named regimes, each a complete `(frames, arrivals, config)` bundle
//! that [`crate::serve`] turns into a digestable trace:
//!
//! * **steady** — a healthy fleet: 30 fps cameras with timing jitter, load
//!   well under capacity, but a resident bound *below* the fleet size so the
//!   LRU/spill/restore machinery runs constantly while nothing is ever late;
//! * **bursty** — event-triggered cameras: short 120 fps bursts and long
//!   quiet gaps against a 30 fps sustained budget, so the token bucket's
//!   backpressure (reject-budget) carries the regulation;
//! * **overload** — offered load ≈ 2× service capacity with gating off, so
//!   the bounded queue and the frame deadline must degrade the service by
//!   rejection and shedding while decided-frame latency stays bounded.
//!
//! Everything here is pure: frames are rendered from the figure model with
//! seeded jitter, arrivals are seeded, costs are virtual. The same bundles
//! feed the conformance tests, the property suite and `serve_goldens`, so a
//! digest mismatch always means the *scheduler* changed.

use crate::arrivals::{ArrivalSpec, BurstSpec};
use crate::server::{CostModel, ServeConfig, StreamBudget};
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::noise::add_salt_pepper;
use hdc_raster::GrayImage;
use hdc_vision::temporal::TemporalConfig;
use hdc_vision::{PipelineConfig, RecognitionPipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Where the blessed serving digests live (workspace-relative, resolved
/// through the crate manifest so it works from any test cwd).
pub fn golden_path() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/serve_digests.txt"
    )
}

/// The calibrated pipeline all serving goldens and tests share (default
/// kernel path, paper-default calibration views — the `bench` recipe).
pub fn golden_pipeline() -> RecognitionPipeline {
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    p
}

/// Golden-workload frame geometry: small enough that the conformance suite
/// serves thousands of frames in CI, large enough that recognition is real.
const GOLDEN_WIDTH: u32 = 96;
const GOLDEN_HEIGHT: u32 = 72;

/// A camera view of the standard scene scaled to the golden frame size,
/// rotated to `azimuth_deg`.
fn golden_view(azimuth_deg: f64) -> ViewSpec {
    let mut v = ViewSpec::paper_default(azimuth_deg, 5.0, 3.0);
    v.width = GOLDEN_WIDTH;
    v.height = GOLDEN_HEIGHT;
    v.focal_px = GOLDEN_WIDTH as f64;
    v
}

/// Frames per jittered keyframe (camera oversampling — strict-gate food).
const DUPS: usize = 3;
/// Jittered keyframes per held sign.
const KEYFRAMES: usize = 2;

/// One golden frame set: two held marshalling signs, each as `KEYFRAMES`
/// seeded sensor-jitter re-rolls × `DUPS` byte-identical oversampled
/// repeats (12 frames). Distinct sets differ in azimuth and sign pairing,
/// so streams that share a set share pixels but nothing else.
fn golden_frame_set(set: usize) -> Vec<GrayImage> {
    let view = golden_view(8.0 * set as f64);
    let mut rng = SmallRng::seed_from_u64(0x901d_e500 ^ set as u64);
    let all = MarshallingSign::ALL;
    let mut frames = Vec::with_capacity(2 * KEYFRAMES * DUPS);
    for s in 0..2 {
        let sign = all[(set + s) % all.len()];
        let base = render_sign(sign, &view);
        for _ in 0..KEYFRAMES {
            let mut keyframe = base.clone();
            add_salt_pepper(&mut keyframe, 0.002, &mut rng);
            for _ in 0..DUPS {
                frames.push(keyframe.clone());
            }
        }
    }
    frames
}

/// The three distinct frame sets the golden workloads cycle streams over.
pub fn golden_frame_sets() -> Vec<Vec<GrayImage>> {
    (0..3).map(golden_frame_set).collect()
}

/// One named canonical workload: its arrival process and serving config.
/// Pair with [`golden_frame_sets`] and [`golden_pipeline`] to reproduce its
/// blessed digest.
#[derive(Debug, Clone, Copy)]
pub struct NamedWorkload {
    /// Stable name, the key in `tests/golden/serve_digests.txt`.
    pub name: &'static str,
    /// The seeded arrival process.
    pub arrivals: ArrivalSpec,
    /// The serving configuration.
    pub config: ServeConfig,
}

/// **steady**: 16 cameras at ~30 fps with jitter across 2 shards — light
/// load, but only 6 resident gate-state slots per shard for 8 streams, so
/// every service round evicts, spills and restores while the strict gate
/// keeps eating the oversampled duplicates. Expected shape: zero sheds,
/// zero rejects, constant evict/restore churn.
pub fn steady() -> NamedWorkload {
    NamedWorkload {
        name: "steady",
        arrivals: ArrivalSpec {
            streams: 16,
            frames_per_stream: 48,
            period_us: 33_333,
            jitter_us: 2_000,
            burst: None,
            seed: 0xDA7A_0001,
        },
        config: ServeConfig {
            shards: 2,
            queue_cap: 16,
            resident_cap: 6,
            deadline_us: 50_000,
            budget: StreamBudget { fps: 30, burst: 4 },
            costs: CostModel::default(),
            gate: TemporalConfig::strict(),
            spill: true,
        },
    }
}

/// **bursty**: 12 event-triggered cameras across 3 shards, waking every
/// ~0.4 s for a 6-frame burst at 120 fps against a 30 fps / burst-3 budget
/// — the token bucket, not the queue, regulates the load. Expected shape:
/// heavy reject-budget, no sheds, approximate gate live inside bursts.
pub fn bursty() -> NamedWorkload {
    NamedWorkload {
        name: "bursty",
        arrivals: ArrivalSpec {
            streams: 12,
            frames_per_stream: 36,
            period_us: 8_333,
            jitter_us: 700,
            burst: Some(BurstSpec {
                burst_len: 6,
                gap_us: 400_000,
            }),
            seed: 0xDA7A_0002,
        },
        config: ServeConfig {
            shards: 3,
            queue_cap: 8,
            resident_cap: 4,
            deadline_us: 40_000,
            budget: StreamBudget { fps: 30, burst: 3 },
            costs: CostModel::default(),
            gate: TemporalConfig::approximate(),
            spill: true,
        },
    }
}

/// **overload**: 64 ungated streams across 2 shards offering ≈2.1× each
/// shard's service capacity (2 ms full runs, ~33 fps per stream, 32 streams
/// per shard), with an ample budget so regulation falls entirely on the
/// bounded queue and the 40 ms frame deadline. Expected shape: substantial
/// shedding and queue rejection, decided-frame latency bounded by
/// deadline + service cost.
pub fn overload() -> NamedWorkload {
    NamedWorkload {
        name: "overload",
        arrivals: ArrivalSpec {
            streams: 64,
            frames_per_stream: 32,
            period_us: 30_000,
            jitter_us: 1_500,
            burst: None,
            seed: 0xDA7A_0003,
        },
        config: ServeConfig {
            shards: 2,
            queue_cap: 24,
            resident_cap: 48,
            deadline_us: 40_000,
            budget: StreamBudget { fps: 60, burst: 8 },
            costs: CostModel {
                full_run_us: 2_000,
                ..CostModel::default()
            },
            gate: TemporalConfig::off(),
            spill: false,
        },
    }
}

/// All canonical workloads, in golden-manifest order.
pub fn canonical_workloads() -> Vec<NamedWorkload> {
    vec![steady(), bursty(), overload()]
}

/// Renders golden-manifest rows (`name digest decided shed rejected`) as the
/// committed text form, stable field widths for reviewable diffs.
pub fn format_manifest(rows: &[(String, String, usize, usize, usize)]) -> String {
    let mut out = String::from(
        "# serving golden digests: workload, FNV-1a/64 trace digest, decided, shed, rejected\n\
         # regenerate with: cargo run --release -p hdc-serve --bin serve_goldens -- --bless\n",
    );
    for (name, digest, decided, shed, rejected) in rows {
        out.push_str(&format!(
            "{name:<12} {digest} {decided:>6} {shed:>6} {rejected:>6}\n"
        ));
    }
    out
}

/// Parses a committed golden manifest back into rows, ignoring comments and
/// blank lines.
pub fn parse_manifest(text: &str) -> Vec<(String, String, usize, usize, usize)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            Some((
                it.next()?.to_owned(),
                it.next()?.to_owned(),
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_sets_are_real_distinct_and_oversampled() {
        let sets = golden_frame_sets();
        assert_eq!(sets.len(), 3);
        for set in &sets {
            assert_eq!(set.len(), 2 * KEYFRAMES * DUPS);
            assert!(set
                .iter()
                .all(|f| f.width() == GOLDEN_WIDTH && f.height() == GOLDEN_HEIGHT));
            // oversampled duplicates are byte-identical; keyframes differ
            assert_eq!(set[0].pixels(), set[1].pixels());
            assert_ne!(set[0].pixels(), set[DUPS].pixels());
        }
        assert_ne!(sets[0][0].pixels(), sets[1][0].pixels());
        assert_ne!(sets[1][0].pixels(), sets[2][0].pixels());
    }

    #[test]
    fn frame_sets_are_pure() {
        assert_eq!(golden_frame_set(1), golden_frame_set(1));
    }

    #[test]
    fn manifest_round_trips() {
        let rows = vec![
            (
                "steady".to_owned(),
                "0123456789abcdef".to_owned(),
                700,
                0,
                2,
            ),
            (
                "overload".to_owned(),
                "fedcba9876543210".to_owned(),
                9,
                41,
                8,
            ),
        ];
        assert_eq!(parse_manifest(&format_manifest(&rows)), rows);
    }

    #[test]
    fn workload_names_are_unique_and_match_the_manifest_order() {
        let names: Vec<_> = canonical_workloads().iter().map(|w| w.name).collect();
        assert_eq!(names, ["steady", "bursty", "overload"]);
    }

    #[test]
    fn overload_really_offers_about_twice_capacity() {
        let w = overload();
        let streams_per_shard = w.arrivals.streams / w.config.shards;
        let offered_fps = streams_per_shard as f64 * 1e6 / w.arrivals.period_us as f64;
        let capacity_fps = 1e6 / w.config.costs.full_run_us as f64;
        let ratio = offered_fps / capacity_fps;
        assert!(
            (1.8..=2.5).contains(&ratio),
            "overload ratio {ratio:.2} drifted out of the ~2x band"
        );
    }
}
