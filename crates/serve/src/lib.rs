//! Deterministic many-stream serving layer over the recognition engine.
//!
//! The paper's collaborative-environment vision implies a supervisor station
//! watching *many* drones and cameras at once, and the production metric for
//! that shape of load is not aggregate fps but **per-stream decision latency
//! against an SLO**: how late is each camera's accepted/rejected verdict,
//! and how many streams can one station sustain before the tail blows past
//! the deadline? This crate is that front end, built so the whole thing
//! stays golden-testable:
//!
//! * **Seeded arrivals on a virtual clock** ([`arrivals`]): every stream's
//!   frame arrival times come from a per-stream [`hdc_runtime::SplitMix64`]
//!   substream; the decision path never reads wall time, so the entire
//!   serving trace is a pure function of `(workload, config)`.
//! * **Sharded deterministic scheduler** ([`server`]): streams hash to a
//!   fixed number of shards (a config property, *not* the worker count);
//!   each shard runs an independent discrete-event loop over its streams —
//!   admission, queueing, eviction, shedding, service. Shards fan out over
//!   the [`hdc_runtime::WorkPool`], whose index-addressed results make the
//!   merged trace **byte-identical at any `--threads N`**.
//! * **Admission control with per-stream budgets**: a token bucket per
//!   stream (frames/s with a burst allowance) pushes back on streams that
//!   outrun their budget, and a bounded shard queue rejects load the shard
//!   provably cannot serve in time — overload degrades by early rejection,
//!   never by unbounded queueing.
//! * **LRU eviction of idle gate state**: resident
//!   [`hdc_vision::temporal::StreamRecognizer`] state is capacity-bounded
//!   per shard; the least-recently-used idle stream is evicted (never one
//!   with a frame in service), optionally spilling a
//!   [`hdc_vision::temporal::GateCheckpoint`] so re-admission restores warm
//!   gate state instead of paying cold full runs.
//! * **Frame-deadline shedding**: a frame whose service would start past
//!   its arrival deadline is dropped *before* it touches the pipeline and
//!   counted, bounding the latency of everything that is served.
//! * **Golden-digestable event trace** ([`trace`]): every admit / reject /
//!   shed / evict / restore / decide lands in one canonical, totally
//!   ordered event log whose FNV-1a/64 digest is committed under
//!   `tests/golden/` and asserted at `--threads 1/2/4` in CI.
//!
//! Service *costs* are virtual microseconds from a fixed [`server::CostModel`]
//! keyed by how the temporal gate resolved the frame — the recognition
//! itself (pixels in, decision out) is real and runs through the exact
//! [`hdc_vision::RecognitionPipeline`] machinery the batch benches measure.
//! Virtual costing is what separates *scheduling correctness* (deterministic,
//! asserted by goldens and property tests) from *hardware speed* (measured
//! by `bench_serve` and reported in `BENCH_serve.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod server;
pub mod trace;
pub mod workload;

pub use arrivals::{ArrivalSpec, BurstSpec};
pub use server::{serve, CostModel, ServeConfig, ServeInput, ServeReport, StreamBudget};
pub use trace::{EventKind, ServeEvent};
