//! The canonical serving event trace and its golden digest.
//!
//! Every scheduling decision the server takes — admit, reject, shed, evict,
//! cold-start, restore, start, decide — is recorded as one [`ServeEvent`]
//! with its virtual timestamp. The trace is reduced to a canonical
//! one-line-per-event text form and hashed with the workspace's shared
//! FNV-1a/64 ([`hdc_raster::digest`]); the hex digest is what gets
//! committed under `tests/golden/serve_digests.txt` and compared in CI at
//! several worker counts (the same discipline as the scenario matrix).
//!
//! **Total order.** Shards emit events concurrently and service completions
//! are recorded out of arrival order, so the canonical form sorts by
//! `(time, stream, frame, kind rank)`. Each frame receives at most one
//! event of each kind and streams are globally numbered, so this key is
//! unique — the sort is a total order and the merged trace is independent
//! of shard interleaving and worker count by construction.

use hdc_runtime::Micros;
use std::fmt;
use std::fmt::Write as _;

/// What happened to a frame (or a resident stream) at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Frame passed admission and entered the shard queue.
    Admit,
    /// Frame rejected at admission: its stream outran its token-bucket
    /// budget (backpressure to the producer).
    RejectBudget,
    /// Frame rejected at admission: the shard queue was full.
    RejectQueue,
    /// Frame dropped at dequeue: service would have started `late_us` past
    /// its deadline — it never touched the pipeline.
    Shed {
        /// How far past the deadline service would have started.
        late_us: Micros,
    },
    /// The serving stream faulted in and the resident set was full: the
    /// least-recently-used idle stream `victim` lost its gate state.
    Evict {
        /// The stream whose resident gate state was discarded/spilled.
        victim: u32,
    },
    /// The serving stream faulted in with no spilled checkpoint: fresh gate
    /// state (its next frame pays a full pipeline run).
    ColdStart,
    /// The serving stream faulted in and its spilled checkpoint was
    /// restored: warm gate state survives eviction.
    Restore,
    /// Service of the frame began.
    Start,
    /// Recognition completed: the decision (accepted sign label or `-`) and
    /// the arrival-to-completion latency.
    Decide {
        /// Accepted sign label, if any.
        label: Option<String>,
        /// Decision latency (queueing + service) in virtual microseconds.
        latency_us: Micros,
    },
}

impl EventKind {
    /// Rank used as the final sort-key component; also fixes the order of
    /// same-instant events of one frame (admit < … < start < decide).
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::Admit => 0,
            EventKind::RejectBudget => 1,
            EventKind::RejectQueue => 2,
            EventKind::Shed { .. } => 3,
            EventKind::Evict { .. } => 4,
            EventKind::ColdStart => 5,
            EventKind::Restore => 6,
            EventKind::Start => 7,
            EventKind::Decide { .. } => 8,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Admit => write!(f, "admit"),
            EventKind::RejectBudget => write!(f, "reject-budget"),
            EventKind::RejectQueue => write!(f, "reject-queue"),
            EventKind::Shed { late_us } => write!(f, "shed late={late_us}"),
            EventKind::Evict { victim } => write!(f, "evict victim=s{victim:04}"),
            EventKind::ColdStart => write!(f, "cold-start"),
            EventKind::Restore => write!(f, "restore"),
            EventKind::Start => write!(f, "start"),
            EventKind::Decide { label, latency_us } => write!(
                f,
                "decide latency={latency_us} label={}",
                label.as_deref().unwrap_or("-")
            ),
        }
    }
}

/// One scheduling decision: time, stream, frame, what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeEvent {
    /// Virtual timestamp in microseconds.
    pub t_us: Micros,
    /// Global stream index.
    pub stream: u32,
    /// Frame index within the stream's arrival sequence.
    pub frame: u32,
    /// What happened.
    pub kind: EventKind,
}

impl ServeEvent {
    /// The unique total-order key (see the module docs).
    pub fn sort_key(&self) -> (Micros, u32, u32, u8) {
        (self.t_us, self.stream, self.frame, self.kind.rank())
    }

    /// The event's canonical one-line text form.
    pub fn canonical_line(&self) -> String {
        format!(
            "{:>12} s{:04} f{:04} {}",
            self.t_us, self.stream, self.frame, self.kind
        )
    }
}

/// Sorts `events` into the canonical total order in place.
pub fn sort_canonical(events: &mut [ServeEvent]) {
    events.sort_unstable_by_key(|e| e.sort_key());
}

/// Reduces a canonically sorted event list to the text the digest is
/// computed over (one line per event).
pub fn canonical_trace(events: &[ServeEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(out, "{}", e.canonical_line());
    }
    out
}

/// The 16-hex-character FNV-1a/64 digest of a canonical trace.
pub fn digest_hex(trace: &str) -> String {
    format!("{:016x}", hdc_raster::digest::fnv1a64(trace.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Micros, stream: u32, frame: u32, kind: EventKind) -> ServeEvent {
        ServeEvent {
            t_us: t,
            stream,
            frame,
            kind,
        }
    }

    #[test]
    fn sort_is_total_and_rank_breaks_same_instant_ties() {
        let mut events = vec![
            ev(
                5,
                0,
                0,
                EventKind::Decide {
                    label: None,
                    latency_us: 5,
                },
            ),
            ev(5, 0, 1, EventKind::Admit),
            ev(5, 0, 0, EventKind::Start),
            ev(3, 1, 0, EventKind::Admit),
        ];
        sort_canonical(&mut events);
        let kinds: Vec<u8> = events.iter().map(|e| e.kind.rank()).collect();
        assert_eq!(events[0].t_us, 3);
        // same (t, stream): frame 0's start+decide precede frame 1's admit
        assert_eq!(kinds[1..], [EventKind::Start.rank(), 8, 0]);
    }

    #[test]
    fn canonical_lines_are_fixed_width_and_stable() {
        let e = ev(
            123,
            7,
            2,
            EventKind::Decide {
                label: Some("Yes".into()),
                latency_us: 456,
            },
        );
        assert_eq!(
            e.canonical_line(),
            "         123 s0007 f0002 decide latency=456 label=Yes"
        );
        assert_eq!(
            ev(1, 2, 3, EventKind::Evict { victim: 9 }).canonical_line(),
            "           1 s0002 f0003 evict victim=s0009"
        );
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = canonical_trace(&[ev(1, 0, 0, EventKind::Admit)]);
        let b = canonical_trace(&[ev(2, 0, 0, EventKind::Admit)]);
        assert_eq!(digest_hex(&a), digest_hex(&a));
        assert_ne!(digest_hex(&a), digest_hex(&b));
        // empty-string FNV-1a/64 offset basis
        assert_eq!(digest_hex(""), "cbf29ce484222325");
    }
}
