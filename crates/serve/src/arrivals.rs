//! Seeded arrival processes: when each stream's frames reach the server.
//!
//! Every arrival time is exact integer microseconds derived from a
//! per-stream [`SplitMix64`] substream of one root seed — a pure function
//! of `(spec, stream index)`. Streams never consult each other or a wall
//! clock, so a workload's full arrival schedule is reproducible bit-for-bit
//! on any machine at any worker count, which is what makes the serving
//! trace golden-testable.
//!
//! The generator covers the three canonical serving regimes:
//! * **steady** — fixed nominal period with bounded uniform jitter (a
//!   camera at ~30 fps with sensor timing noise);
//! * **bursty** — the same, punctuated by long off-gaps every
//!   [`BurstSpec::burst_len`] frames (event-triggered cameras, wake/sleep
//!   duty cycles) with a faster in-burst cadence;
//! * **overload** — a period chosen below the service capacity of the
//!   configured shard count, so shedding and rejection are exercised.

use hdc_runtime::{Micros, SplitMix64};

/// Burst structure layered over the nominal cadence: after every
/// `burst_len` frames the stream goes quiet for `gap_us` before the next
/// burst begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// Frames per burst (must be ≥ 1).
    pub burst_len: usize,
    /// Quiet gap inserted between bursts, in virtual microseconds.
    pub gap_us: Micros,
}

/// A seeded arrival process for a fleet of streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalSpec {
    /// Number of concurrent streams.
    pub streams: usize,
    /// Arrivals (frames offered) per stream.
    pub frames_per_stream: usize,
    /// Nominal inter-arrival period in virtual microseconds (33_333 ≈ 30 fps).
    pub period_us: Micros,
    /// Uniform jitter in `[0, jitter_us]` added to every gap (0 = strictly
    /// periodic).
    pub jitter_us: Micros,
    /// Optional burst/gap structure.
    pub burst: Option<BurstSpec>,
    /// Root seed; stream `i` draws from `SplitMix64::stream(seed, i)`.
    pub seed: u64,
}

impl ArrivalSpec {
    /// Total frames the whole fleet offers.
    pub fn offered(&self) -> usize {
        self.streams * self.frames_per_stream
    }

    /// The arrival times of one stream's frames, strictly increasing, in
    /// virtual microseconds. Pure in `(self, stream)`.
    ///
    /// Each stream starts at a seeded phase offset inside one period (so a
    /// fleet never arrives in lock-step), then advances by
    /// `period + U[0, jitter]` per frame, with the burst gap inserted at
    /// burst boundaries.
    ///
    /// # Panics
    /// Panics if `period_us` is zero, if `stream` is out of range, or if a
    /// configured burst has `burst_len == 0`.
    pub fn stream_arrivals(&self, stream: usize) -> Vec<Micros> {
        assert!(self.period_us > 0, "arrival period must be positive");
        assert!(stream < self.streams, "stream {stream} out of range");
        let mut rng = SplitMix64::stream(self.seed, stream as u64);
        let mut t = rng.below(self.period_us); // phase offset
        let mut out = Vec::with_capacity(self.frames_per_stream);
        for frame in 0..self.frames_per_stream {
            if let Some(burst) = self.burst {
                assert!(burst.burst_len > 0, "burst_len must be positive");
                if frame > 0 && frame % burst.burst_len == 0 {
                    t += burst.gap_us;
                }
            }
            out.push(t);
            let jitter = if self.jitter_us > 0 {
                rng.below(self.jitter_us + 1)
            } else {
                0
            };
            t += self.period_us + jitter;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArrivalSpec {
        ArrivalSpec {
            streams: 4,
            frames_per_stream: 32,
            period_us: 33_333,
            jitter_us: 2_000,
            burst: None,
            seed: 7,
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_pure() {
        let s = spec();
        for stream in 0..s.streams {
            let a = s.stream_arrivals(stream);
            assert_eq!(a.len(), s.frames_per_stream);
            assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
            assert_eq!(a, s.stream_arrivals(stream), "pure in (spec, stream)");
        }
    }

    #[test]
    fn streams_are_phase_decorrelated() {
        let s = spec();
        assert_ne!(s.stream_arrivals(0), s.stream_arrivals(1));
        // phase offsets land inside the first period
        for stream in 0..s.streams {
            assert!(s.stream_arrivals(stream)[0] < s.period_us);
        }
    }

    #[test]
    fn gaps_stay_within_period_plus_jitter() {
        let s = spec();
        let a = s.stream_arrivals(2);
        for w in a.windows(2) {
            let gap = w[1] - w[0];
            assert!(gap >= s.period_us && gap <= s.period_us + s.jitter_us);
        }
    }

    #[test]
    fn bursts_insert_the_off_gap() {
        let mut s = spec();
        s.jitter_us = 0;
        s.burst = Some(BurstSpec {
            burst_len: 8,
            gap_us: 500_000,
        });
        let a = s.stream_arrivals(0);
        for (i, w) in a.windows(2).enumerate() {
            let gap = w[1] - w[0];
            if (i + 1) % 8 == 0 {
                assert_eq!(gap, s.period_us + 500_000, "burst boundary at {i}");
            } else {
                assert_eq!(gap, s.period_us);
            }
        }
    }

    #[test]
    fn offered_is_the_product() {
        assert_eq!(spec().offered(), 4 * 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_stream_rejected() {
        spec().stream_arrivals(99);
    }
}
