//! The sharded deterministic serving scheduler.
//!
//! **Model.** Streams hash to `shards` independent schedulers
//! (`stream % shards` — the serving analogue of consistent hashing). Each
//! shard owns one virtual service unit (a core of the modeled station), a
//! bounded FIFO admission queue, per-stream token buckets, and a
//! capacity-bounded LRU set of resident [`StreamRecognizer`] gate states.
//! The shard replays its streams' seeded arrivals in virtual-time order:
//!
//! ```text
//!            ┌ budget empty ──────────► reject-budget (backpressure)
//! arrival ───┤ queue full ────────────► reject-queue
//!            └ else ──────────────────► admit → FIFO queue
//!
//!            ┌ start > arrival+deadline ► shed (never touches the pipeline)
//! dequeue ───┤ gate state not resident ─► [evict LRU idle → spill?]
//!            │                            cold-start | restore
//!            └ serve ───────────────────► start … decide (virtual cost by
//!                                          gate outcome) → latency sample
//! ```
//!
//! **Why this is deterministic at any `--threads N`.** The shard count is a
//! *config* property; worker threads only decide which shards run
//! concurrently. Each shard's outcome is a pure function of its own streams
//! (arrival times from per-stream `SplitMix64`, service costs from the
//! virtual [`CostModel`], recognition from the deterministic pipeline), the
//! [`hdc_runtime::WorkPool`] reassembles shard outcomes by index, and the
//! merged event trace is sorted by a unique total-order key — so the bytes
//! of the trace, and hence its golden digest, cannot depend on scheduling.
//!
//! **What is real and what is virtual.** Recognition is real: every served
//! frame runs through the exact [`RecognitionPipeline`] gate ladder, and
//! decide events carry real decisions. Time is virtual: queueing/service
//! delays come from the cost model, so latency percentiles measure the
//! *scheduling* behaviour (they are reproducible), while `bench_serve`
//! separately reports the real wall-clock cost of driving the whole thing.

use crate::arrivals::ArrivalSpec;
use crate::trace::{sort_canonical, EventKind, ServeEvent};
use hdc_raster::GrayImage;
use hdc_runtime::{Micros, VirtualClock, WorkPool};
use hdc_vision::temporal::{GateCheckpoint, GateCounters, StreamRecognizer, TemporalConfig};
use hdc_vision::{FrameScratch, RecognitionPipeline};
use std::collections::{HashMap, VecDeque};

/// Virtual service cost (microseconds) per gate outcome, plus the fixed
/// overheads of shedding and residency fault-in. Defaults approximate the
/// measured shape of the VGA pipeline (BENCH_stream.json): a full run costs
/// ~25× a strict identity hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Full pipeline run (every gate missed, or gating off).
    pub full_run_us: Micros,
    /// Byte-identical reuse (strict gate / identity pre-check).
    pub strict_hit_us: Micros,
    /// Tile-tolerance reuse.
    pub approx_hit_us: Micros,
    /// Signature recomputed, SAX search skipped.
    pub sig_shortcut_us: Micros,
    /// Dropping an already-late frame at dequeue.
    pub shed_us: Micros,
    /// Residency miss: installing (cold or restored) gate state.
    pub fault_in_us: Micros,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            full_run_us: 420,
            strict_hit_us: 18,
            approx_hit_us: 90,
            sig_shortcut_us: 210,
            shed_us: 2,
            fault_in_us: 30,
        }
    }
}

/// Per-stream admission budget: a token bucket holding up to `burst`
/// frames, refilling at `fps` frames per virtual second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamBudget {
    /// Sustained admission rate in frames per second (must be ≥ 1).
    pub fps: u64,
    /// Burst allowance in frames (bucket capacity, must be ≥ 1).
    pub burst: u64,
}

/// Serving-layer configuration. Every field participates in the golden
/// digest (changing any of them is a behavioural change).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Scheduler shard count (fixed by config — NOT the worker count).
    pub shards: usize,
    /// Admission queue bound per shard.
    pub queue_cap: usize,
    /// Resident gate-state bound per shard (LRU beyond it).
    pub resident_cap: usize,
    /// Frame deadline: service starting later than `arrival + deadline_us`
    /// sheds the frame.
    pub deadline_us: Micros,
    /// Per-stream admission budget.
    pub budget: StreamBudget,
    /// Virtual service costs.
    pub costs: CostModel,
    /// Temporal gate mode for the resident recognisers.
    pub gate: TemporalConfig,
    /// Spill evicted gate state to a [`GateCheckpoint`] and restore on
    /// re-admission (`false` = eviction discards state; re-admission
    /// cold-starts).
    pub spill: bool,
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.queue_cap >= 1, "need a positive queue bound");
        assert!(self.resident_cap >= 1, "need a positive resident bound");
        assert!(self.budget.fps >= 1, "budget fps must be positive");
        assert!(self.budget.burst >= 1, "budget burst must be positive");
    }
}

/// The frames behind a workload: `stream` serves frame `f` from
/// `frame_sets[stream % frame_sets.len()][f % set.len()]`. Distinct streams
/// may share pixel content (many cameras, one scene class) without sharing
/// any scheduler or gate state — which is what lets capacity searches scale
/// to thousands of streams without rendering thousands of distinct sets.
#[derive(Debug, Clone, Copy)]
pub struct ServeInput<'a> {
    /// The distinct frame sequences streams cycle through.
    pub frame_sets: &'a [Vec<GrayImage>],
    /// When each stream's frames arrive.
    pub arrivals: &'a ArrivalSpec,
}

impl ServeInput<'_> {
    fn validate(&self) {
        assert!(!self.frame_sets.is_empty(), "need at least one frame set");
        assert!(
            self.frame_sets.iter().all(|s| !s.is_empty()),
            "every frame set needs at least one frame"
        );
    }

    /// The frame stream `stream` offers as its `frame`-th arrival.
    pub fn frame_for(&self, stream: usize, frame: usize) -> &GrayImage {
        let set = &self.frame_sets[stream % self.frame_sets.len()];
        &set[frame % set.len()]
    }
}

/// Per-stream serving outcome counters. Conservation invariants (pinned by
/// the property suite):
/// `offered = admitted + rejected_budget + rejected_queue` and
/// `admitted = decided + shed` (the queue fully drains before the report
/// exists, so nothing is left in flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamServeStats {
    /// Frames the arrival process offered.
    pub offered: usize,
    /// Frames past admission (budget + queue bound).
    pub admitted: usize,
    /// Frames rejected: stream outran its token-bucket budget.
    pub rejected_budget: usize,
    /// Frames rejected: shard queue full.
    pub rejected_queue: usize,
    /// Admitted frames dropped at dequeue for missing their deadline.
    pub shed: usize,
    /// Admitted frames that completed recognition (decision produced,
    /// accepted or not).
    pub decided: usize,
    /// Decided frames whose decision accepted a sign label.
    pub accepted: usize,
    /// Times this stream's resident gate state was evicted.
    pub evicted: usize,
    /// Residency faults that installed fresh (cold) gate state.
    pub cold_starts: usize,
    /// Residency faults that restored a spilled checkpoint.
    pub restores: usize,
    /// How the temporal gate resolved this stream's served frames.
    pub gate: GateCounters,
    /// Worst decision latency of this stream's decided frames.
    pub max_latency_us: Micros,
}

/// The serving outcome: per-stream counters, the canonical event trace,
/// and the decision-latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-stream counters, indexed by global stream id.
    pub per_stream: Vec<StreamServeStats>,
    /// The canonical (totally ordered) event trace.
    pub events: Vec<ServeEvent>,
    /// Decision latencies of all decided frames, sorted ascending.
    pub latencies_us: Vec<Micros>,
    /// Deepest any shard queue got.
    pub queue_peak: usize,
    /// Shard count that produced the report.
    pub shards: usize,
    /// Worker count that drove the shards (does not affect the trace).
    pub workers: usize,
}

macro_rules! stat_total {
    ($(#[$doc:meta])* $name:ident, $field:ident) => {
        $(#[$doc])*
        pub fn $name(&self) -> usize {
            self.per_stream.iter().map(|s| s.$field).sum()
        }
    };
}

impl ServeReport {
    stat_total!(
        /// Total frames offered by the arrival process.
        offered, offered
    );
    stat_total!(
        /// Total frames past admission.
        admitted, admitted
    );
    stat_total!(
        /// Total budget rejections (backpressure).
        rejected_budget, rejected_budget
    );
    stat_total!(
        /// Total queue-full rejections.
        rejected_queue, rejected_queue
    );
    stat_total!(
        /// Total deadline sheds.
        shed, shed
    );
    stat_total!(
        /// Total decided frames.
        decided, decided
    );
    stat_total!(
        /// Total decided frames with an accepted sign label.
        accepted, accepted
    );
    stat_total!(
        /// Total gate-state evictions.
        evictions, evicted
    );
    stat_total!(
        /// Total cold residency faults.
        cold_starts, cold_starts
    );
    stat_total!(
        /// Total checkpoint restores.
        restores, restores
    );

    /// Shed fraction of admitted frames (0 when nothing was admitted).
    pub fn shed_rate(&self) -> f64 {
        let admitted = self.admitted();
        if admitted == 0 {
            0.0
        } else {
            self.shed() as f64 / admitted as f64
        }
    }

    /// Nearest-rank percentile of the decision-latency distribution
    /// (`q` in (0, 100]; 0 when nothing was decided).
    pub fn latency_percentile_us(&self, q: f64) -> Micros {
        assert!(q > 0.0 && q <= 100.0, "percentile out of range: {q}");
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let rank = ((q / 100.0) * n as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, n) - 1]
    }

    /// Median decision latency.
    pub fn p50_us(&self) -> Micros {
        self.latency_percentile_us(50.0)
    }

    /// 95th-percentile decision latency.
    pub fn p95_us(&self) -> Micros {
        self.latency_percentile_us(95.0)
    }

    /// 99th-percentile decision latency.
    pub fn p99_us(&self) -> Micros {
        self.latency_percentile_us(99.0)
    }

    /// The canonical trace text (one line per event).
    pub fn canonical_trace(&self) -> String {
        crate::trace::canonical_trace(&self.events)
    }

    /// The FNV-1a/64 golden digest of the canonical trace.
    pub fn digest(&self) -> String {
        crate::trace::digest_hex(&self.canonical_trace())
    }
}

/// A frame waiting in a shard's admission queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    stream: usize,
    frame: u32,
    arrival_us: Micros,
}

/// One resident gate state.
struct Resident {
    stream: usize,
    last_used_us: Micros,
    rec: StreamRecognizer,
}

/// Everything one shard accumulates while replaying its arrivals.
struct ShardState<'a> {
    config: &'a ServeConfig,
    clock: VirtualClock,
    /// When the shard's service unit frees up.
    free_at: Micros,
    queue: VecDeque<Queued>,
    /// µtokens (1 frame = 1_000_000) and last-refill time per stream.
    buckets: HashMap<usize, (u64, Micros)>,
    resident: Vec<Resident>,
    spilled: HashMap<usize, GateCheckpoint>,
    stats: HashMap<usize, StreamServeStats>,
    events: Vec<ServeEvent>,
    latencies: Vec<Micros>,
    queue_peak: usize,
}

/// One µtoken-scaled frame.
const TOKEN: u64 = 1_000_000;

impl<'a> ShardState<'a> {
    fn new(config: &'a ServeConfig) -> Self {
        ShardState {
            config,
            clock: VirtualClock::new(),
            free_at: 0,
            queue: VecDeque::new(),
            buckets: HashMap::new(),
            resident: Vec::new(),
            spilled: HashMap::new(),
            stats: HashMap::new(),
            events: Vec::new(),
            latencies: Vec::new(),
            queue_peak: 0,
        }
    }

    fn push_event(&mut self, t_us: Micros, stream: usize, frame: u32, kind: EventKind) {
        self.events.push(ServeEvent {
            t_us,
            stream: stream as u32,
            frame,
            kind,
        });
    }

    /// Token-bucket admission check for one frame of `stream` at `now`.
    fn budget_admits(&mut self, stream: usize, now: Micros) -> bool {
        let budget = self.config.budget;
        let (tokens, last) = self
            .buckets
            .entry(stream)
            .or_insert((budget.burst * TOKEN, 0));
        *tokens = (*tokens + (now - *last) * budget.fps).min(budget.burst * TOKEN);
        *last = now;
        if *tokens >= TOKEN {
            *tokens -= TOKEN;
            true
        } else {
            false
        }
    }

    /// One arrival: budget check, queue-bound check, admit.
    fn offer(&mut self, t_us: Micros, stream: usize, frame: u32) {
        self.clock.advance_to(t_us);
        self.stats.entry(stream).or_default().offered += 1;
        if !self.budget_admits(stream, t_us) {
            self.stats.entry(stream).or_default().rejected_budget += 1;
            self.push_event(t_us, stream, frame, EventKind::RejectBudget);
            return;
        }
        if self.queue.len() >= self.config.queue_cap {
            self.stats.entry(stream).or_default().rejected_queue += 1;
            self.push_event(t_us, stream, frame, EventKind::RejectQueue);
            return;
        }
        self.stats.entry(stream).or_default().admitted += 1;
        self.push_event(t_us, stream, frame, EventKind::Admit);
        self.queue.push_back(Queued {
            stream,
            frame,
            arrival_us: t_us,
        });
        self.queue_peak = self.queue_peak.max(self.queue.len());
    }

    /// Ensures `stream`'s gate state is resident at `now`, evicting the LRU
    /// idle stream if the set is full. Returns the slot index.
    ///
    /// The eviction invariant — never evict a stream with an in-flight
    /// frame — is structural here: a shard serves one frame at a time and
    /// faults residency in only at service start, when the sole in-flight
    /// stream is the one faulting in (which is not resident, so it cannot
    /// be its own victim).
    fn fault_in(&mut self, stream: usize, frame: u32, now: Micros) -> (usize, bool) {
        if let Some(i) = self.resident.iter().position(|r| r.stream == stream) {
            self.resident[i].last_used_us = now;
            return (i, false);
        }
        let slot = if self.resident.len() < self.config.resident_cap {
            self.resident.push(Resident {
                stream,
                last_used_us: now,
                rec: StreamRecognizer::new(self.config.gate),
            });
            self.resident.len() - 1
        } else {
            // LRU victim, smallest stream id on ties — deterministic.
            let victim_slot = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.last_used_us, r.stream))
                .map(|(i, _)| i)
                .expect("resident_cap >= 1");
            let victim = self.resident[victim_slot].stream;
            debug_assert_ne!(victim, stream, "a stream cannot evict itself");
            if self.config.spill {
                let ck = self.resident[victim_slot].rec.checkpoint();
                self.spilled.insert(victim, ck);
            }
            self.stats.entry(victim).or_default().evicted += 1;
            self.push_event(
                now,
                stream,
                frame,
                EventKind::Evict {
                    victim: victim as u32,
                },
            );
            self.resident[victim_slot].stream = stream;
            self.resident[victim_slot].last_used_us = now;
            self.resident[victim_slot].rec.reset();
            victim_slot
        };
        if let Some(ck) = self.spilled.remove(&stream) {
            self.resident[slot].rec.restore(&ck);
            self.stats.entry(stream).or_default().restores += 1;
            self.push_event(now, stream, frame, EventKind::Restore);
        } else {
            self.stats.entry(stream).or_default().cold_starts += 1;
            self.push_event(now, stream, frame, EventKind::ColdStart);
        }
        (slot, true)
    }

    /// Serves queued frames whose service would start at or before `limit`
    /// (shedding the ones already past their deadline).
    fn drain_until(
        &mut self,
        limit: Micros,
        pipeline: &RecognitionPipeline,
        scratch: &mut FrameScratch,
        input: &ServeInput<'_>,
    ) {
        while let Some(&head) = self.queue.front() {
            let start = self.free_at.max(head.arrival_us);
            if start > limit {
                break;
            }
            self.queue.pop_front();
            let deadline = head.arrival_us + self.config.deadline_us;
            if start > deadline {
                // late: drop before it touches the pipeline
                self.stats.entry(head.stream).or_default().shed += 1;
                self.push_event(
                    start,
                    head.stream,
                    head.frame,
                    EventKind::Shed {
                        late_us: start - deadline,
                    },
                );
                self.free_at = start + self.config.costs.shed_us;
                continue;
            }
            let (slot, faulted) = self.fault_in(head.stream, head.frame, start);
            self.push_event(start, head.stream, head.frame, EventKind::Start);

            let frame_px = input.frame_for(head.stream, head.frame as usize);
            let rec = &mut self.resident[slot].rec;
            let before = rec.counters();
            let decision = rec.recognize(pipeline, scratch, frame_px).decision.clone();
            let outcome = rec.counters().since(&before);
            debug_assert_eq!(outcome.frames(), 1);

            let costs = self.config.costs;
            let mut cost = if outcome.full_runs == 1 {
                costs.full_run_us
            } else if outcome.strict_hits == 1 {
                costs.strict_hit_us
            } else if outcome.approx_hits == 1 {
                costs.approx_hit_us
            } else {
                costs.sig_shortcut_us
            };
            if faulted {
                cost += costs.fault_in_us;
            }
            let done = start + cost;
            let latency = done - head.arrival_us;
            self.free_at = done;
            self.resident[slot].last_used_us = done;

            let stats = self.stats.entry(head.stream).or_default();
            stats.decided += 1;
            stats.gate = stats.gate.plus(&outcome);
            stats.max_latency_us = stats.max_latency_us.max(latency);
            if decision.is_some() {
                stats.accepted += 1;
            }
            self.latencies.push(latency);
            self.push_event(
                done,
                head.stream,
                head.frame,
                EventKind::Decide {
                    label: decision,
                    latency_us: latency,
                },
            );
        }
    }
}

/// What one shard hands back to the merger.
struct ShardOutcome {
    per_stream: Vec<(usize, StreamServeStats)>,
    events: Vec<ServeEvent>,
    latencies: Vec<Micros>,
    queue_peak: usize,
}

/// Replays one shard's arrivals through its scheduler.
fn run_shard(
    pipeline: &RecognitionPipeline,
    input: &ServeInput<'_>,
    config: &ServeConfig,
    shard: usize,
    scratch: &mut FrameScratch,
) -> ShardOutcome {
    let locals: Vec<usize> = (shard..input.arrivals.streams)
        .step_by(config.shards)
        .collect();
    let mut arrivals: Vec<(Micros, usize, u32)> = Vec::new();
    for &s in &locals {
        for (f, &t) in input.arrivals.stream_arrivals(s).iter().enumerate() {
            arrivals.push((t, s, f as u32));
        }
    }
    arrivals.sort_unstable();

    let mut st = ShardState::new(config);
    for &(t, s, f) in &arrivals {
        st.drain_until(t, pipeline, scratch, input);
        st.offer(t, s, f);
    }
    st.drain_until(Micros::MAX, pipeline, scratch, input);

    let per_stream = locals
        .iter()
        .map(|&s| (s, st.stats.get(&s).copied().unwrap_or_default()))
        .collect();
    ShardOutcome {
        per_stream,
        events: st.events,
        latencies: st.latencies,
        queue_peak: st.queue_peak,
    }
}

/// Serves the workload: replays every shard's seeded arrivals through its
/// deterministic scheduler (shards fan out over `pool`) and merges the
/// outcomes into one canonical report. The report — counters, latencies,
/// trace, digest — is byte-identical at every worker count.
///
/// # Panics
/// Panics on an invalid config (zero shards/bounds/budget) or empty frame
/// sets.
pub fn serve(
    pipeline: &RecognitionPipeline,
    input: &ServeInput<'_>,
    config: &ServeConfig,
    pool: &WorkPool,
) -> ServeReport {
    config.validate();
    input.validate();
    let shard_ids: Vec<usize> = (0..config.shards).collect();
    let outcomes = pool.map_indexed(
        &shard_ids,
        |_| FrameScratch::new(),
        |scratch, _, &shard| run_shard(pipeline, input, config, shard, scratch),
    );

    let mut per_stream = vec![StreamServeStats::default(); input.arrivals.streams];
    let mut events = Vec::new();
    let mut latencies = Vec::new();
    let mut queue_peak = 0;
    for outcome in outcomes {
        for (stream, stats) in outcome.per_stream {
            per_stream[stream] = stats;
        }
        events.extend(outcome.events);
        latencies.extend(outcome.latencies);
        queue_peak = queue_peak.max(outcome.queue_peak);
    }
    sort_canonical(&mut events);
    latencies.sort_unstable();
    ServeReport {
        per_stream,
        events,
        latencies_us: latencies,
        queue_peak,
        shards: config.shards,
        workers: pool.workers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            queue_cap: 8,
            resident_cap: 2,
            deadline_us: 50_000,
            budget: StreamBudget { fps: 30, burst: 2 },
            costs: CostModel::default(),
            gate: TemporalConfig::strict(),
            spill: true,
        }
    }

    #[test]
    fn token_bucket_admits_bursts_and_refills_exactly() {
        let cfg = config();
        let mut st = ShardState::new(&cfg);
        // burst allowance: exactly `burst` back-to-back frames
        assert!(st.budget_admits(0, 0));
        assert!(st.budget_admits(0, 0));
        assert!(!st.budget_admits(0, 0), "burst of 2 exhausted");
        // at 30 fps one token takes ceil(1e6/30) = 33_334 us to accrue
        assert!(!st.budget_admits(0, 33_333));
        assert!(st.budget_admits(0, 33_334));
        // streams do not share buckets
        assert!(st.budget_admits(1, 0));
    }

    #[test]
    fn bucket_never_exceeds_its_burst_cap() {
        let cfg = config();
        let mut st = ShardState::new(&cfg);
        st.budget_admits(0, 0);
        // a very long idle refills to the cap, not beyond it
        for i in 0..2 {
            assert!(
                st.budget_admits(0, 10_000_000 + i),
                "capped burst frame {i}"
            );
        }
        assert!(
            !st.budget_admits(0, 10_000_001),
            "cap is burst, not burst+idle"
        );
    }

    fn report_with_latencies(latencies: Vec<Micros>) -> ServeReport {
        ServeReport {
            per_stream: Vec::new(),
            events: Vec::new(),
            latencies_us: latencies,
            queue_peak: 0,
            shards: 1,
            workers: 1,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let r = report_with_latencies((1..=100).collect());
        assert_eq!(r.p50_us(), 50);
        assert_eq!(r.p95_us(), 95);
        assert_eq!(r.p99_us(), 99);
        assert_eq!(r.latency_percentile_us(100.0), 100);
        assert_eq!(r.latency_percentile_us(0.5), 1);
        let one = report_with_latencies(vec![7]);
        assert_eq!(one.p50_us(), 7);
        assert_eq!(one.p99_us(), 7);
        assert_eq!(report_with_latencies(Vec::new()).p99_us(), 0);
    }

    #[test]
    fn frame_mapping_cycles_sets_and_frames() {
        let sets = vec![
            vec![GrayImage::new(2, 2), GrayImage::new(3, 3)],
            vec![GrayImage::new(4, 4)],
        ];
        let arrivals = ArrivalSpec {
            streams: 3,
            frames_per_stream: 4,
            period_us: 1000,
            jitter_us: 0,
            burst: None,
            seed: 1,
        };
        let input = ServeInput {
            frame_sets: &sets,
            arrivals: &arrivals,
        };
        assert_eq!(input.frame_for(0, 0).width(), 2);
        assert_eq!(input.frame_for(0, 1).width(), 3);
        assert_eq!(input.frame_for(0, 2).width(), 2, "frames cycle");
        assert_eq!(input.frame_for(1, 5).width(), 4, "stream 1 -> set 1");
        assert_eq!(input.frame_for(2, 1).width(), 3, "sets cycle");
    }

    #[test]
    fn a_tiny_serve_run_conserves_every_frame() {
        let pipeline = workload::golden_pipeline();
        let frame_sets = workload::golden_frame_sets();
        let arrivals = ArrivalSpec {
            streams: 6,
            frames_per_stream: 12,
            period_us: 33_333,
            jitter_us: 1_000,
            burst: None,
            seed: 42,
        };
        let input = ServeInput {
            frame_sets: &frame_sets,
            arrivals: &arrivals,
        };
        let pool = WorkPool::with_threads(Some(2));
        let report = serve(&pipeline, &input, &config(), &pool);
        assert_eq!(report.offered(), arrivals.offered());
        assert_eq!(
            report.offered(),
            report.admitted() + report.rejected_budget() + report.rejected_queue()
        );
        assert_eq!(report.admitted(), report.decided() + report.shed());
        assert_eq!(report.decided(), report.latencies_us.len());
        assert!(report.accepted() > 0, "held signs should be recognised");
        // every decided frame resolved through the gate exactly once
        let gate_frames: usize = report.per_stream.iter().map(|s| s.gate.frames()).sum();
        assert_eq!(gate_frames, report.decided());
        assert_eq!(report.digest().len(), 16);
    }
}
