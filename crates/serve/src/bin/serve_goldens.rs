//! Serving golden-trace conformance entry point (the CI `serving` steps).
//!
//! Serves the three canonical workloads (steady / bursty / overload) through
//! the deterministic scheduler and compares each canonical trace digest
//! against the blessed manifest in `tests/golden/serve_digests.txt`.
//!
//! * `--threads N` sizes the work pool the shards fan out over. The serving
//!   trace is byte-identical at every worker count by construction — CI runs
//!   this binary at `--threads 1`, `2` and `4` against the *same* manifest
//!   to prove it;
//! * `--bless` rewrites the manifest from the current run (review the
//!   behavioural diff first);
//! * any digest drift or violated workload-shape expectation exits non-zero.

use hdc_runtime::{threads_from_args, WorkPool};
use hdc_serve::workload::{
    canonical_workloads, format_manifest, golden_frame_sets, golden_path, golden_pipeline,
    parse_manifest,
};
use hdc_serve::{serve, ServeInput, ServeReport};
use std::process::ExitCode;

/// The per-workload structural expectations that must hold before a digest
/// is even worth comparing (a digest of a degenerate run is still a digest).
fn shape_violations(name: &str, report: &ServeReport) -> Vec<String> {
    let mut v = Vec::new();
    let mut expect = |ok: bool, what: &str| {
        if !ok {
            v.push(format!("{name}: expected {what}"));
        }
    };
    expect(report.decided() > 0, "some decided frames");
    expect(
        report.offered() == report.admitted() + report.rejected_budget() + report.rejected_queue(),
        "offered = admitted + rejections",
    );
    expect(
        report.admitted() == report.decided() + report.shed(),
        "admitted = decided + shed",
    );
    match name {
        "steady" => {
            expect(report.shed() == 0, "no sheds under light steady load");
            expect(
                report.rejected_budget() == 0 && report.rejected_queue() == 0,
                "no rejections under light steady load",
            );
            expect(report.evictions() > 0, "resident bound forces evictions");
            expect(report.restores() > 0, "spill makes evictions restorable");
        }
        "bursty" => {
            expect(
                report.rejected_budget() > 0,
                "token bucket pushes back on bursts",
            );
            expect(report.shed() == 0, "budget regulation prevents sheds");
        }
        "overload" => {
            expect(report.shed() > 0, "2x load sheds late frames");
            expect(
                report.rejected_queue() > 0,
                "2x load overflows the bounded queue",
            );
        }
        _ => v.push(format!("{name}: unknown workload")),
    }
    v
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let bless = args.iter().any(|a| a == "--bless");
    let pool = WorkPool::with_threads(threads_from_args(&args));
    let pipeline = golden_pipeline();
    let frame_sets = golden_frame_sets();

    let mut rows: Vec<(String, String, usize, usize, usize)> = Vec::new();
    let mut violations = Vec::new();
    println!(
        "serving {} canonical workloads on {} worker(s)...",
        canonical_workloads().len(),
        pool.workers()
    );
    for w in canonical_workloads() {
        let input = ServeInput {
            frame_sets: &frame_sets,
            arrivals: &w.arrivals,
        };
        let report = serve(&pipeline, &input, &w.config, &pool);
        println!(
            "  {:<10} {}  offered {:>5}  decided {:>5}  shed {:>4}  rejected {:>4}  \
             evict {:>4}  p99 {:>6}us",
            w.name,
            report.digest(),
            report.offered(),
            report.decided(),
            report.shed(),
            report.rejected_budget() + report.rejected_queue(),
            report.evictions(),
            report.p99_us()
        );
        violations.extend(shape_violations(w.name, &report));
        rows.push((
            w.name.to_owned(),
            report.digest(),
            report.decided(),
            report.shed(),
            report.rejected_budget() + report.rejected_queue(),
        ));
    }
    for v in &violations {
        eprintln!("  SHAPE VIOLATION: {v}");
    }
    if !violations.is_empty() {
        return ExitCode::FAILURE;
    }

    if bless {
        std::fs::create_dir_all(std::path::Path::new(golden_path()).parent().unwrap())
            .expect("create tests/golden");
        std::fs::write(golden_path(), format_manifest(&rows)).expect("write golden manifest");
        println!("blessed {} rows into {}", rows.len(), golden_path());
        return ExitCode::SUCCESS;
    }

    let committed = match std::fs::read_to_string(golden_path()) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "no golden manifest at {} ({e}); run with --bless to create it",
                golden_path()
            );
            return ExitCode::FAILURE;
        }
    };
    let committed_rows = parse_manifest(&committed);
    let mut drift = 0;
    for row in &rows {
        match committed_rows.iter().find(|c| c.0 == row.0) {
            Some(c) if c == row => {}
            Some(c) => {
                eprintln!(
                    "GOLDEN DRIFT {}: have {}/{}d/{}s/{}r, committed {}/{}d/{}s/{}r",
                    row.0, row.1, row.2, row.3, row.4, c.1, c.2, c.3, c.4
                );
                drift += 1;
            }
            None => {
                eprintln!("GOLDEN DRIFT {}: not in the committed manifest", row.0);
                drift += 1;
            }
        }
    }
    for c in &committed_rows {
        if !rows.iter().any(|r| r.0 == c.0) {
            eprintln!("GOLDEN DRIFT {}: committed but no longer produced", c.0);
            drift += 1;
        }
    }
    if drift > 0 {
        eprintln!("{drift} golden serving-trace mismatches (bless after reviewing the diff)");
        return ExitCode::FAILURE;
    }
    println!("all {} serving digests match", rows.len());
    ExitCode::SUCCESS
}
