//! Golden serving-trace conformance and the canonical-workload behaviour
//! tests.
//!
//! The three canonical workloads must reproduce their blessed digests —
//! at worker counts 1, 2 and 4, from one in-process run each — and the
//! regimes must keep the *shape* the goldens were blessed with: steady
//! serves everything while churning the LRU, bursty regulates by budget,
//! overload degrades by shedding with bounded decided-frame latency.
//! Eviction plus re-admission must also be decision-equivalent to an
//! uninterrupted stream, spilled or not.

use hdc_runtime::WorkPool;
use hdc_serve::workload::{
    canonical_workloads, golden_frame_sets, golden_path, golden_pipeline, parse_manifest, steady,
};
use hdc_serve::{serve, EventKind, ServeInput, ServeReport};
use hdc_vision::temporal::StreamRecognizer;
use hdc_vision::FrameScratch;

fn run(w: &hdc_serve::workload::NamedWorkload, threads: usize) -> ServeReport {
    let pipeline = golden_pipeline();
    let frame_sets = golden_frame_sets();
    let input = ServeInput {
        frame_sets: &frame_sets,
        arrivals: &w.arrivals,
    };
    serve(
        &pipeline,
        &input,
        &w.config,
        &WorkPool::with_threads(Some(threads)),
    )
}

#[test]
fn canonical_digests_match_the_blessed_manifest_at_1_2_and_4_workers() {
    let manifest = std::fs::read_to_string(golden_path())
        .expect("blessed manifest missing - run serve_goldens --bless");
    let committed = parse_manifest(&manifest);
    assert_eq!(committed.len(), 3, "three canonical workloads are blessed");
    for w in canonical_workloads() {
        let row = committed
            .iter()
            .find(|c| c.0 == w.name)
            .unwrap_or_else(|| panic!("workload {} not in the blessed manifest", w.name));
        for threads in [1usize, 2, 4] {
            let report = run(&w, threads);
            assert_eq!(
                report.digest(),
                row.1,
                "{} digest drifted at {threads} worker(s)",
                w.name
            );
            assert_eq!(report.decided(), row.2, "{} decided count", w.name);
            assert_eq!(report.shed(), row.3, "{} shed count", w.name);
            assert_eq!(
                report.rejected_budget() + report.rejected_queue(),
                row.4,
                "{} rejected count",
                w.name
            );
        }
    }
}

#[test]
fn steady_serves_everything_while_churning_the_lru() {
    let report = run(&steady(), 2);
    assert_eq!(report.decided(), report.offered(), "nothing lost");
    assert_eq!(
        report.shed() + report.rejected_budget() + report.rejected_queue(),
        0
    );
    assert!(report.evictions() > 0, "resident bound below fleet size");
    assert!(report.restores() > 0, "spilled state comes back warm");
    // restored gate state keeps eating the oversampled duplicates: the
    // strict gate must hit despite constant eviction churn
    let hits: usize = report.per_stream.iter().map(|s| s.gate.strict_hits).sum();
    assert!(
        hits * 2 > report.decided(),
        "strict hits {hits} should dominate {} decided frames",
        report.decided()
    );
    assert!(report.p99_us() <= steady().config.deadline_us);
}

#[test]
fn bursty_is_regulated_by_the_token_bucket_not_the_queue() {
    let report = run(&hdc_serve::workload::bursty(), 2);
    assert!(report.rejected_budget() > 0, "bursts outrun the budget");
    assert_eq!(report.shed(), 0, "admitted frames are never late");
    assert_eq!(report.rejected_queue(), 0, "backpressure precedes queueing");
    assert_eq!(
        report.decided() + report.rejected_budget(),
        report.offered()
    );
}

#[test]
fn overload_degrades_by_shedding_with_bounded_decided_latency() {
    let w = hdc_serve::workload::overload();
    let report = run(&w, 2);
    assert!(report.shed() > 0, "2x load must shed");
    assert!(
        report.rejected_queue() > 0,
        "2x load must overflow the queue"
    );
    assert!(
        report.shed_rate() > 0.05,
        "shedding is substantial, not incidental"
    );
    assert!(report.queue_peak <= w.config.queue_cap);
    // the whole point of shedding: decided frames stay bounded even at 2x
    let bound = w.config.deadline_us + w.config.costs.full_run_us + w.config.costs.fault_in_us;
    assert!(
        report.p99_us() <= bound,
        "p99 {} exceeds the structural bound {bound}",
        report.p99_us()
    );
    assert!(*report.latencies_us.last().unwrap() <= bound);
}

/// Eviction + re-admission must be decision-equivalent to an uninterrupted
/// stream: replaying exactly the frames a stream had *served* (shed frames
/// never touch the recogniser) through a fresh recogniser must reproduce
/// the decisions in the trace — whether evicted state was spilled and
/// restored or discarded and cold-started.
#[test]
fn eviction_and_readmission_are_decision_equivalent_to_an_uninterrupted_stream() {
    for spill in [true, false] {
        let mut w = steady();
        w.config.spill = spill;
        // shrink so the replay stays cheap but eviction still churns
        w.arrivals.streams = 8;
        w.arrivals.frames_per_stream = 24;
        w.config.resident_cap = 3;
        let report = run(&w, 2);
        assert!(report.evictions() > 0, "the property needs real churn");

        let pipeline = golden_pipeline();
        let frame_sets = golden_frame_sets();
        let input = ServeInput {
            frame_sets: &frame_sets,
            arrivals: &w.arrivals,
        };
        let mut scratch = FrameScratch::new();
        for stream in 0..w.arrivals.streams {
            let mut decided = Vec::new();
            for e in &report.events {
                if e.stream as usize == stream {
                    if let EventKind::Decide { label, .. } = &e.kind {
                        decided.push((e.frame as usize, label.clone()));
                    }
                }
            }
            let mut rec = StreamRecognizer::new(w.config.gate);
            for (frame, served_label) in &decided {
                let fresh = rec
                    .recognize(&pipeline, &mut scratch, input.frame_for(stream, *frame))
                    .decision
                    .clone();
                assert_eq!(
                    &fresh, served_label,
                    "stream {stream} frame {frame} diverged (spill={spill})"
                );
            }
        }
    }
}
