//! Property tests for the serving layer's scheduling invariants.
//!
//! Random workloads (stream counts, cadences, bursts) against random
//! configs (shards, bounds, budgets, gates, costs) must always satisfy:
//!
//! * **conservation** — every offered frame is admitted or rejected, and
//!   every admitted frame is decided or shed (nothing is silently dropped,
//!   nothing left in flight);
//! * **eviction safety** — the LRU never evicts a stream while one of its
//!   frames is in service;
//! * **boundedness** — queue depth never exceeds its bound, and every
//!   decided frame's latency is ≤ deadline + worst-case service cost;
//! * **determinism** — the full report (trace, counters, latencies) is
//!   identical at every worker count;
//! * **trace well-formedness** — the canonical sort key is strictly
//!   increasing, i.e. a genuine total order.
//!
//! The pipeline here is real but the frames are tiny synthetic patterns:
//! these properties are about the *scheduler*, which must hold whatever the
//! recogniser decides.

use hdc_raster::GrayImage;
use hdc_runtime::WorkPool;
use hdc_serve::{
    serve, ArrivalSpec, BurstSpec, CostModel, EventKind, ServeConfig, ServeInput, ServeReport,
    StreamBudget,
};
use hdc_vision::temporal::TemporalConfig;
use hdc_vision::{PipelineConfig, RecognitionPipeline};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

/// One shared uncalibrated pipeline: with an empty template database every
/// full run resolves quickly to "no match", which is all the scheduler
/// properties need.
fn pipeline() -> &'static RecognitionPipeline {
    static PIPELINE: OnceLock<RecognitionPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| RecognitionPipeline::new(PipelineConfig::default()))
}

/// Tiny distinct frame sets (with in-set duplicates, so gates can hit).
fn tiny_sets() -> &'static Vec<Vec<GrayImage>> {
    static SETS: OnceLock<Vec<Vec<GrayImage>>> = OnceLock::new();
    SETS.get_or_init(|| {
        (0..2u8)
            .map(|set| {
                let mut frames = Vec::new();
                for k in 0..3u8 {
                    let mut img = GrayImage::new(24, 18);
                    for (i, px) in img.pixels_mut().iter_mut().enumerate() {
                        *px = if (i as u8).wrapping_mul(7) > k.wrapping_mul(85) + set * 40 {
                            255
                        } else {
                            0
                        };
                    }
                    // duplicate each keyframe once: strict-gate food
                    frames.push(img.clone());
                    frames.push(img);
                }
                frames
            })
            .collect()
    })
}

fn arb_gate() -> impl Strategy<Value = TemporalConfig> {
    prop_oneof![
        Just(TemporalConfig::off()),
        Just(TemporalConfig::strict()),
        Just(TemporalConfig::approximate()),
    ]
}

fn arb_spec() -> impl Strategy<Value = ArrivalSpec> {
    (
        1usize..10,
        1usize..16,
        500u64..40_000,
        0u64..4_000,
        prop_oneof![
            Just(None),
            (1usize..5, 1_000u64..200_000)
                .prop_map(|(burst_len, gap_us)| Some(BurstSpec { burst_len, gap_us })),
        ],
        any::<u64>(),
    )
        .prop_map(
            |(streams, frames_per_stream, period_us, jitter_us, burst, seed)| ArrivalSpec {
                streams,
                frames_per_stream,
                period_us,
                jitter_us,
                burst,
                seed,
            },
        )
}

fn arb_config() -> impl Strategy<Value = ServeConfig> {
    (
        1usize..4,
        1usize..6,
        1usize..4,
        1_000u64..60_000,
        (1u64..200, 1u64..5),
        100u64..5_000,
        arb_gate(),
        any::<bool>(),
    )
        .prop_map(
            |(
                shards,
                queue_cap,
                resident_cap,
                deadline_us,
                (fps, burst),
                full_run_us,
                gate,
                spill,
            )| {
                ServeConfig {
                    shards,
                    queue_cap,
                    resident_cap,
                    deadline_us,
                    budget: StreamBudget { fps, burst },
                    costs: CostModel {
                        full_run_us,
                        ..CostModel::default()
                    },
                    gate,
                    spill,
                }
            },
        )
}

/// Worst virtual cost any single decided frame can incur.
fn worst_case_cost(costs: &CostModel) -> u64 {
    costs
        .full_run_us
        .max(costs.strict_hit_us)
        .max(costs.approx_hit_us)
        .max(costs.sig_shortcut_us)
        + costs.fault_in_us
}

/// Checks every scheduling invariant one report must satisfy.
fn check_invariants(report: &ServeReport, spec: &ArrivalSpec, config: &ServeConfig) {
    // --- conservation, totals and per stream ---
    assert_eq!(report.offered(), spec.offered());
    assert_eq!(
        report.offered(),
        report.admitted() + report.rejected_budget() + report.rejected_queue(),
        "every offered frame is admitted or rejected"
    );
    assert_eq!(
        report.admitted(),
        report.decided() + report.shed(),
        "every admitted frame is decided or shed - nothing stays in flight"
    );
    for (s, st) in report.per_stream.iter().enumerate() {
        assert_eq!(
            st.offered,
            st.admitted + st.rejected_budget + st.rejected_queue,
            "stream {s} conservation at admission"
        );
        assert_eq!(
            st.admitted,
            st.decided + st.shed,
            "stream {s} conservation past admission"
        );
        assert_eq!(st.gate.frames(), st.decided, "stream {s} gate attribution");
    }

    // --- trace is a genuine total order ---
    for w in report.events.windows(2) {
        assert!(
            w[0].sort_key() < w[1].sort_key(),
            "duplicate or misordered trace key: {:?} then {:?}",
            w[0],
            w[1]
        );
    }

    // --- no admitted frame is silently dropped ---
    let mut admitted = BTreeSet::new();
    let mut resolved = BTreeSet::new();
    for e in &report.events {
        match &e.kind {
            EventKind::Admit => {
                admitted.insert((e.stream, e.frame));
            }
            EventKind::Shed { .. } | EventKind::Decide { .. } => {
                assert!(
                    resolved.insert((e.stream, e.frame)),
                    "frame s{}/f{} resolved twice",
                    e.stream,
                    e.frame
                );
            }
            _ => {}
        }
    }
    assert_eq!(
        admitted, resolved,
        "admitted frames == decided + shed frames"
    );

    // --- boundedness ---
    assert!(
        report.queue_peak <= config.queue_cap,
        "queue bound respected"
    );
    let latency_bound = config.deadline_us + worst_case_cost(&config.costs);
    for &l in &report.latencies_us {
        assert!(
            l <= latency_bound,
            "decided latency {l} exceeds deadline {} + worst service {}",
            config.deadline_us,
            worst_case_cost(&config.costs)
        );
    }

    // --- eviction safety: victims are never mid-service ---
    let mut started: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut intervals: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for e in &report.events {
        match &e.kind {
            EventKind::Start => {
                started.insert((e.stream, e.frame), e.t_us);
            }
            EventKind::Decide { .. } => {
                let s = started
                    .remove(&(e.stream, e.frame))
                    .expect("decide after start");
                intervals.entry(e.stream).or_default().push((s, e.t_us));
            }
            _ => {}
        }
    }
    assert!(started.is_empty(), "every started frame decides");
    for e in &report.events {
        if let EventKind::Evict { victim } = e.kind {
            if let Some(iv) = intervals.get(&victim) {
                for &(s, d) in iv {
                    assert!(
                        !(s < e.t_us && e.t_us < d),
                        "stream {victim} evicted at {} while in service [{s}, {d})",
                        e.t_us
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_workloads_satisfy_every_scheduling_invariant(
        spec in arb_spec(),
        config in arb_config(),
    ) {
        let input = ServeInput { frame_sets: tiny_sets(), arrivals: &spec };
        let pool = WorkPool::with_threads(Some(2));
        let report = serve(pipeline(), &input, &config, &pool);
        check_invariants(&report, &spec, &config);
    }

    #[test]
    fn the_report_is_identical_at_every_worker_count(
        spec in arb_spec(),
        config in arb_config(),
    ) {
        let input = ServeInput { frame_sets: tiny_sets(), arrivals: &spec };
        let reference = serve(pipeline(), &input, &config, &WorkPool::with_threads(Some(1)));
        for workers in [2usize, 3] {
            let mut got = serve(
                pipeline(),
                &input,
                &config,
                &WorkPool::with_threads(Some(workers)),
            );
            // the recorded worker count is metadata, not behaviour
            got.workers = reference.workers;
            prop_assert_eq!(&got, &reference, "worker count {} diverged", workers);
        }
    }
}
