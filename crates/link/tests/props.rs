//! Property tests for the datalink's determinism and reliability contracts.
//!
//! * **Channel determinism** — a [`LossyChannel`]'s full delivery schedule
//!   is a pure function of `(seed, quality, send times)`: replaying the same
//!   sends yields a byte-identical schedule, and driving *other* channels in
//!   any interleaving (the multi-worker case) never changes a single
//!   channel's observed order.
//! * **Endpoint reliability** — under any drop/dup/jitter pattern with
//!   loss < 1, every payload is delivered exactly once, in order, and the
//!   retransmit queue eventually drains.

use hdc_link::{Endpoint, EndpointConfig, Frame, LeaseConfig, LinkQuality, LossyChannel};
use proptest::prelude::*;

/// A quality model drawn from safe (recoverable) ranges.
fn quality(drop_p: f64, dup_p: f64, jitter_s: f64) -> LinkQuality {
    LinkQuality::clean()
        .with_drop(drop_p)
        .with_dup(dup_p)
        .with_jitter(jitter_s)
}

/// Runs one channel over a fixed send schedule, polling every 0.1 s, and
/// returns the full delivery schedule (poll step, payload).
fn schedule(q: LinkQuality, seed: u64, sends: &[u32]) -> Vec<(usize, u32)> {
    let mut ch = LossyChannel::new(q, seed);
    let mut out = Vec::new();
    let steps = sends.len() + 50;
    for k in 0..steps {
        let now = k as f64 * 0.1;
        if let Some(&m) = sends.get(k) {
            ch.send(now, m);
        }
        for m in ch.poll(now) {
            out.push((k, m));
        }
    }
    out
}

proptest! {
    #[test]
    fn same_seed_same_schedule(seed in any::<u64>(),
                               drop_p in 0.0f64..0.9,
                               dup_p in 0.0f64..0.9,
                               jitter in 0.0f64..2.0,
                               sends in prop::collection::vec(0u32..10_000, 1..120)) {
        let q = quality(drop_p, dup_p, jitter);
        prop_assert_eq!(schedule(q, seed, &sends), schedule(q, seed, &sends));
    }

    #[test]
    fn interleaving_across_channels_changes_nothing(
            seed in any::<u64>(),
            drop_p in 0.0f64..0.9,
            jitter in 0.0f64..2.0,
            sends in prop::collection::vec(0u32..10_000, 1..100),
            channels in 2usize..5) {
        // Reference: each channel driven alone, sequentially.
        let q = quality(drop_p, 0.3, jitter);
        let alone: Vec<_> = (0..channels)
            .map(|c| schedule(q, seed.wrapping_add(c as u64), &sends))
            .collect();

        // Interleaved: all channels pumped round-robin in the same loop —
        // the schedule each receiver observes must be identical, because
        // every decision depends only on (that channel's seed, msg index).
        let mut chs: Vec<LossyChannel<u32>> = (0..channels)
            .map(|c| LossyChannel::new(q, seed.wrapping_add(c as u64)))
            .collect();
        let mut outs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); channels];
        let steps = sends.len() + 50;
        for k in 0..steps {
            let now = k as f64 * 0.1;
            // permute the pump order per step (worst-case scheduling skew)
            for c in 0..channels {
                let c = (c + k) % channels;
                if let Some(&m) = sends.get(k) {
                    chs[c].send(now, m);
                }
            }
            for c in 0..channels {
                let c = (channels - 1) - ((c + k) % channels);
                for m in chs[c].poll(now) {
                    outs[c].push((k, m));
                }
            }
        }
        for (c, got) in outs.iter().enumerate() {
            prop_assert_eq!(got, &alone[c], "channel {} drifted under interleaving", c);
        }
    }

    #[test]
    fn endpoint_delivers_exactly_once_in_order(
            seed in any::<u64>(),
            drop_p in 0.0f64..0.6,
            dup_p in 0.0f64..0.6,
            jitter in 0.0f64..1.0,
            n in 1u32..60) {
        let q = quality(drop_p, dup_p, jitter);
        let mut a: Endpoint<u32, u32> =
            Endpoint::new(EndpointConfig::default(), LeaseConfig::default(), seed, 0.0);
        let mut b: Endpoint<u32, u32> =
            Endpoint::new(EndpointConfig::default(), LeaseConfig::default(), seed ^ 1, 0.0);
        let mut ab: LossyChannel<Frame<u32>> = LossyChannel::new(q, seed.wrapping_add(2));
        let mut ba: LossyChannel<Frame<u32>> = LossyChannel::new(q, seed.wrapping_add(3));
        for i in 0..n {
            a.send(0.0, i);
        }
        let mut got = Vec::new();
        // generous horizon: worst-case loss at 60% still recovers well inside
        for k in 0..4000 {
            let now = k as f64 * 0.1;
            for f in a.tick(now) {
                ab.send(now, f);
            }
            for f in b.tick(now) {
                ba.send(now, f);
            }
            for f in ab.poll(now) {
                got.extend(b.handle(now, f));
            }
            for f in ba.poll(now) {
                a.handle(now, f);
            }
            if !a.has_unacked() && got.len() == n as usize {
                break;
            }
        }
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
        prop_assert!(!a.has_unacked(), "retransmit queue must drain");
        prop_assert_eq!(b.stats().delivered, u64::from(n));
    }
}
