//! `hdc-link` — a deterministic fault-tolerant datalink for the fleet.
//!
//! Every drone↔supervisor interaction in the workspace used to be an
//! in-process call; the one thing that fails first in the field — the radio
//! link — could not fail at all. This crate supplies the missing transport
//! layer in three pieces, all dependency-free and seed-deterministic:
//!
//! * [`LossyChannel`] — a simulated radio path. Per-message drop,
//!   duplication, bounded reordering (latency jitter), base latency and a
//!   scheduled partition window, with every decision derived from a
//!   SplitMix64 mix of `(channel seed, message index)` — the same discipline
//!   `hdc-runtime` uses for worker-count-independent sweeps, so a trace is
//!   byte-identical no matter how the simulation is scheduled.
//! * [`Endpoint`] — reliable delivery on top of a lossy channel: sequence
//!   numbers, cumulative acks, bounded retransmission with exponential
//!   backoff and seeded jitter, and a receive-side dedup/reorder window that
//!   delivers each message **exactly once, in order** — redelivered commands
//!   are effect-idempotent by construction.
//! * heartbeat **leases** ([`LeaseConfig`]) — both sides emit periodic
//!   heartbeats; a side that hears nothing for the lease timeout declares
//!   the link lost. The drone side reacts with an autonomous safe-hold and
//!   retreat; the supervisor side marks the drone lost and re-dispatches its
//!   remaining work (see `hdc-core::session` and `hdc-orchard::fleet`).
//!
//! Time is the caller's simulation clock (seconds); nothing here reads a
//! wall clock or a global RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod endpoint;

pub use channel::{ChannelStats, LinkQuality, LossyChannel};
pub use endpoint::{Endpoint, EndpointConfig, EndpointStats, Frame, LeaseConfig};

/// One SplitMix64 step: advances `state` and returns the next word.
/// The workspace-standard mixer for derived deterministic streams.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a random word to a uniform `f64` in `[0, 1)` (53-bit precision).
pub(crate) fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut a));
    }

    #[test]
    fn unit_f64_is_in_range() {
        let mut s = 7u64;
        for _ in 0..1000 {
            let u = unit_f64(splitmix64(&mut s));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
