//! `hdc-link` — a deterministic fault-tolerant datalink for the fleet.
//!
//! Every drone↔supervisor interaction in the workspace used to be an
//! in-process call; the one thing that fails first in the field — the radio
//! link — could not fail at all. This crate supplies the missing transport
//! layer in three pieces, all dependency-free and seed-deterministic:
//!
//! * [`LossyChannel`] — a simulated radio path. Per-message drop,
//!   duplication, bounded reordering (latency jitter), base latency and a
//!   scheduled partition window, with every decision derived from a
//!   SplitMix64 mix of `(channel seed, message index)` — the same discipline
//!   `hdc-runtime` uses for worker-count-independent sweeps, so a trace is
//!   byte-identical no matter how the simulation is scheduled.
//! * [`Endpoint`] — reliable delivery on top of a lossy channel: sequence
//!   numbers, cumulative acks, bounded retransmission with exponential
//!   backoff and seeded jitter, and a receive-side dedup/reorder window that
//!   delivers each message **exactly once, in order** — redelivered commands
//!   are effect-idempotent by construction.
//! * heartbeat **leases** ([`LeaseConfig`]) — both sides emit periodic
//!   heartbeats; a side that hears nothing for the lease timeout declares
//!   the link lost. The drone side reacts with an autonomous safe-hold and
//!   retreat; the supervisor side marks the drone lost and re-dispatches its
//!   remaining work (see `hdc-core::session` and `hdc-orchard::fleet`).
//!
//! Time is the caller's simulation clock (seconds); nothing here reads a
//! wall clock or a global RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod endpoint;

pub use channel::{ChannelStats, LinkQuality, LossyChannel};
pub use endpoint::{Endpoint, EndpointConfig, EndpointStats, Frame, LeaseConfig};

// All derived randomness (channel decision streams, retransmission jitter)
// routes through `hdc_runtime::SplitMix64` — this crate carried a private
// copy before the shared implementation existed. The state evolution is
// identical, so channel schedules are byte-for-byte what they always were
// (the 52 golden scenario digests pin this).

#[cfg(test)]
mod tests {
    use hdc_runtime::{unit_f64, SplitMix64, GOLDEN_GAMMA};

    #[test]
    fn shared_splitmix_matches_the_old_private_stream() {
        // The retired private helper advanced `state += GAMMA` then applied
        // the finaliser — exactly `SplitMix64::new(state).next_u64()`. Pin
        // the equivalence so channel streams can never silently shift.
        let legacy = |state: &mut u64| -> u64 {
            *state = state.wrapping_add(GOLDEN_GAMMA);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = 42u64;
        let mut shared = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(legacy(&mut state), shared.next_u64());
        }
    }

    #[test]
    fn unit_f64_is_in_range() {
        let mut s = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = unit_f64(s.next_u64());
            assert!((0.0..1.0).contains(&u));
        }
    }
}
