//! Reliable endpoints and heartbeat leases over a lossy channel.
//!
//! An [`Endpoint`] is one side of a bidirectional link: it *sends* payloads
//! of type `S` reliably and *receives* payloads of type `R`. Reliability is
//! the classic recipe — sequence numbers on data, cumulative acks, bounded
//! retransmission with exponential backoff and seeded jitter, and a
//! receive-side reorder/dedup window that delivers each sequence number
//! **exactly once, in order**. Redelivered frames are therefore
//! effect-idempotent at the application layer by construction: the second
//! copy of a command never reaches the caller.
//!
//! The endpoint also carries the liveness machinery: it emits a
//! [`Frame::Heartbeat`] every [`LeaseConfig::heartbeat_interval_s`] and
//! timestamps every frame it hears. [`Endpoint::lease_expired`] is the
//! supervision predicate both sides poll — the drone to trigger its
//! autonomous safe-hold, the supervisor to declare the drone lost.
//!
//! Everything is driven by the caller's simulation clock. The only
//! randomness is the retransmission jitter, drawn from a SplitMix64 stream
//! owned by the endpoint, so a link exchange is a pure function of
//! `(configs, seeds, traffic)`.

use hdc_runtime::SplitMix64;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Retransmission and windowing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndpointConfig {
    /// Initial retransmission timeout, seconds.
    pub resend_timeout_s: f64,
    /// Exponential backoff factor per retransmission of the same frame.
    pub backoff: f64,
    /// Ceiling on the backed-off timeout, seconds.
    pub max_resend_timeout_s: f64,
    /// Seeded jitter added to every timeout: `timeout * (1 + frac * u)`
    /// with `u` uniform in `[0, 1)` (desynchronises retransmission bursts).
    pub jitter_frac: f64,
    /// Receive window: how far ahead of the next expected sequence number a
    /// data frame may be buffered. Frames beyond it are discarded (the
    /// sender's retransmission recovers them later).
    pub window: u64,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            resend_timeout_s: 0.4,
            backoff: 2.0,
            max_resend_timeout_s: 3.2,
            jitter_frac: 0.25,
            window: 64,
        }
    }
}

/// Heartbeat/lease supervision parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// How often each side emits a heartbeat, seconds.
    pub heartbeat_interval_s: f64,
    /// Silence longer than this expires the lease, seconds.
    pub timeout_s: f64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            heartbeat_interval_s: 0.5,
            timeout_s: 3.0,
        }
    }
}

/// What travels on the wire in one direction: data, acks for the *other*
/// direction's data, and heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<T> {
    /// A sequenced payload.
    Data {
        /// Sequence number, starting at 1.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Cumulative acknowledgement: every sequence number `<= cumulative`
    /// has been received in order.
    Ack {
        /// Highest in-order sequence number received.
        cumulative: u64,
    },
    /// Liveness beacon (also implicitly carried by any other frame).
    Heartbeat,
}

/// Endpoint traffic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Distinct payloads accepted for sending.
    pub data_sent: u64,
    /// Data frames retransmitted (beyond each payload's first emission).
    pub retransmits: u64,
    /// Ack frames emitted.
    pub acks_sent: u64,
    /// Heartbeat frames emitted.
    pub heartbeats_sent: u64,
    /// Payloads delivered to the application (exactly once each).
    pub delivered: u64,
    /// Received data frames discarded as duplicates.
    pub duplicates_discarded: u64,
    /// Received data frames discarded as beyond the receive window.
    pub out_of_window_discarded: u64,
}

/// One unacknowledged outbound payload.
#[derive(Debug, Clone)]
struct TxSlot<S> {
    seq: u64,
    payload: S,
    resend_at: f64,
    attempt: u32,
}

/// One side of a reliable bidirectional link: sends `S`, receives `R`.
/// See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct Endpoint<S, R> {
    config: EndpointConfig,
    lease: LeaseConfig,
    jitter_rng: SplitMix64,
    // --- transmit side ---
    next_seq: u64,
    unacked: VecDeque<TxSlot<S>>,
    // --- receive side ---
    next_expected: u64,
    reorder_buf: BTreeMap<u64, R>,
    ack_due: bool,
    // --- lease ---
    last_heard: f64,
    last_beat: f64,
    stats: EndpointStats,
}

impl<S: Clone, R> Endpoint<S, R> {
    /// An endpoint created at simulation time `now` (the lease clock starts
    /// satisfied — a drone is not "lost" before the first heartbeat slot).
    pub fn new(config: EndpointConfig, lease: LeaseConfig, seed: u64, now: f64) -> Self {
        Endpoint {
            config,
            lease,
            jitter_rng: SplitMix64::new(seed),
            next_seq: 1,
            unacked: VecDeque::new(),
            next_expected: 1,
            reorder_buf: BTreeMap::new(),
            ack_due: false,
            last_heard: now,
            last_beat: now,
            stats: EndpointStats::default(),
        }
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// Whether any sent payload is still awaiting acknowledgement.
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Number of payloads sent but not yet acknowledged. Callers pushing
    /// bulk traffic should keep this below the peer's receive window, or
    /// frames beyond it are discarded on arrival and retransmitted later.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Time the peer was last heard from (any frame).
    pub fn last_heard(&self) -> f64 {
        self.last_heard
    }

    /// Whether the peer has been silent past the lease timeout.
    pub fn lease_expired(&self, now: f64) -> bool {
        now - self.last_heard > self.lease.timeout_s
    }

    /// Queues one payload for reliable delivery. It is first transmitted by
    /// the next [`Endpoint::tick`].
    pub fn send(&mut self, now: f64, payload: S) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.data_sent += 1;
        self.unacked.push_back(TxSlot {
            seq,
            payload,
            resend_at: now,
            attempt: 0,
        });
    }

    /// The backed-off, jittered timeout for a frame's `attempt`-th
    /// retransmission.
    fn timeout(&mut self, attempt: u32) -> f64 {
        let base = (self.config.resend_timeout_s * self.config.backoff.powi(attempt as i32))
            .min(self.config.max_resend_timeout_s);
        let u = self.jitter_rng.next_unit_f64();
        base * (1.0 + self.config.jitter_frac * u)
    }

    /// Earliest time this endpoint will have work for [`Endpoint::tick`]:
    /// the soonest retransmission slot, the next heartbeat slot, or `now`
    /// itself when an ack is pending. Event-driven schedulers use this to
    /// skip polling a quiet link.
    pub fn next_due(&self, now: f64) -> f64 {
        let mut due = self.last_beat + self.lease.heartbeat_interval_s;
        for slot in &self.unacked {
            due = due.min(slot.resend_at);
        }
        if self.ack_due {
            due = due.min(now);
        }
        due
    }

    /// Emits every frame due at `now`: first transmissions, retransmissions,
    /// a pending ack, and the heartbeat. The caller forwards them into its
    /// outbound channel.
    pub fn tick(&mut self, now: f64) -> Vec<Frame<S>> {
        let mut out = Vec::new();
        for i in 0..self.unacked.len() {
            if self.unacked[i].resend_at <= now {
                let (seq, attempt, payload) = {
                    let slot = &self.unacked[i];
                    (slot.seq, slot.attempt, slot.payload.clone())
                };
                if attempt > 0 {
                    self.stats.retransmits += 1;
                }
                let wait = self.timeout(attempt);
                let slot = &mut self.unacked[i];
                slot.attempt += 1;
                slot.resend_at = now + wait;
                out.push(Frame::Data { seq, payload });
            }
        }
        if self.ack_due {
            self.ack_due = false;
            self.stats.acks_sent += 1;
            out.push(Frame::Ack {
                cumulative: self.next_expected - 1,
            });
        }
        if now - self.last_beat >= self.lease.heartbeat_interval_s {
            self.last_beat = now;
            self.stats.heartbeats_sent += 1;
            out.push(Frame::Heartbeat);
        }
        out
    }

    /// Processes one inbound frame; returns the payloads that became
    /// deliverable, in sequence order. Every frame refreshes the lease.
    pub fn handle(&mut self, now: f64, frame: Frame<R>) -> Vec<R> {
        self.last_heard = now;
        match frame {
            Frame::Heartbeat => Vec::new(),
            Frame::Ack { cumulative } => {
                while self
                    .unacked
                    .front()
                    .is_some_and(|slot| slot.seq <= cumulative)
                {
                    self.unacked.pop_front();
                }
                Vec::new()
            }
            Frame::Data { seq, payload } => {
                self.ack_due = true;
                if seq < self.next_expected {
                    self.stats.duplicates_discarded += 1;
                    return Vec::new();
                }
                if seq >= self.next_expected + self.config.window {
                    self.stats.out_of_window_discarded += 1;
                    return Vec::new();
                }
                if self.reorder_buf.insert(seq, payload).is_some() {
                    self.stats.duplicates_discarded += 1;
                }
                let mut delivered = Vec::new();
                while let Some(p) = self.reorder_buf.remove(&self.next_expected) {
                    self.next_expected += 1;
                    self.stats.delivered += 1;
                    delivered.push(p);
                }
                delivered
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{LinkQuality, LossyChannel};

    type Ep = Endpoint<u32, u32>;

    fn pair(now: f64) -> (Ep, Ep) {
        (
            Endpoint::new(EndpointConfig::default(), LeaseConfig::default(), 1, now),
            Endpoint::new(EndpointConfig::default(), LeaseConfig::default(), 2, now),
        )
    }

    /// Pumps both directions for `steps` of `dt`, collecting what each side
    /// delivers.
    fn pump(
        a: &mut Ep,
        b: &mut Ep,
        ab: &mut LossyChannel<Frame<u32>>,
        ba: &mut LossyChannel<Frame<u32>>,
        t0: f64,
        steps: usize,
        dt: f64,
    ) -> (Vec<u32>, Vec<u32>) {
        let (mut at_a, mut at_b) = (Vec::new(), Vec::new());
        for k in 0..steps {
            let now = t0 + k as f64 * dt;
            for f in a.tick(now) {
                ab.send(now, f);
            }
            for f in b.tick(now) {
                ba.send(now, f);
            }
            for f in ab.poll(now) {
                at_b.extend(b.handle(now, f));
            }
            for f in ba.poll(now) {
                at_a.extend(a.handle(now, f));
            }
        }
        (at_a, at_b)
    }

    #[test]
    fn clean_link_delivers_in_order_exactly_once() {
        let (mut a, mut b) = pair(0.0);
        let mut ab = LossyChannel::new(LinkQuality::clean(), 10);
        let mut ba = LossyChannel::new(LinkQuality::clean(), 11);
        for i in 0..20 {
            a.send(0.0, i);
        }
        let (_, at_b) = pump(&mut a, &mut b, &mut ab, &mut ba, 0.0, 50, 0.1);
        assert_eq!(at_b, (0..20).collect::<Vec<_>>());
        assert!(!a.has_unacked(), "acks must drain the retransmit queue");
        assert_eq!(b.stats().delivered, 20);
    }

    #[test]
    fn heavy_loss_is_recovered_by_retransmission() {
        let (mut a, mut b) = pair(0.0);
        let mut ab = LossyChannel::new(LinkQuality::clean().with_drop(0.5), 20);
        let mut ba = LossyChannel::new(LinkQuality::clean().with_drop(0.5), 21);
        for i in 0..30 {
            a.send(0.0, i);
        }
        let (_, at_b) = pump(&mut a, &mut b, &mut ab, &mut ba, 0.0, 1200, 0.1);
        assert_eq!(at_b, (0..30).collect::<Vec<_>>());
        assert!(a.stats().retransmits > 0, "loss must force retransmissions");
        assert!(!a.has_unacked());
    }

    #[test]
    fn duplication_and_reordering_never_deliver_twice_or_out_of_order() {
        let (mut a, mut b) = pair(0.0);
        let q = LinkQuality::clean().with_dup(0.6).with_jitter(0.8);
        let mut ab = LossyChannel::new(q, 30);
        let mut ba = LossyChannel::new(q, 31);
        for i in 0..40 {
            a.send(0.0, i);
        }
        let (_, at_b) = pump(&mut a, &mut b, &mut ab, &mut ba, 0.0, 600, 0.1);
        assert_eq!(at_b, (0..40).collect::<Vec<_>>());
        assert!(b.stats().duplicates_discarded > 0, "dup window must engage");
    }

    #[test]
    fn lease_expires_during_a_partition_and_recovers_after() {
        let lease = LeaseConfig {
            heartbeat_interval_s: 0.5,
            timeout_s: 2.0,
        };
        let mut a: Ep = Endpoint::new(EndpointConfig::default(), lease, 1, 0.0);
        let mut b: Ep = Endpoint::new(EndpointConfig::default(), lease, 2, 0.0);
        // both directions partitioned from t=3 for 4 s
        let q = LinkQuality::clean().with_partition(3.0, 4.0);
        let mut ab = LossyChannel::new(q, 40);
        let mut ba = LossyChannel::new(q, 41);
        let mut expired_at = None;
        let mut recovered = false;
        for k in 0..120 {
            let now = k as f64 * 0.1;
            for f in a.tick(now) {
                ab.send(now, f);
            }
            for f in b.tick(now) {
                ba.send(now, f);
            }
            for f in ab.poll(now) {
                b.handle(now, f);
            }
            for f in ba.poll(now) {
                a.handle(now, f);
            }
            if b.lease_expired(now) && expired_at.is_none() {
                expired_at = Some(now);
            }
            if expired_at.is_some() && !b.lease_expired(now) {
                recovered = true;
            }
        }
        let expired_at = expired_at.expect("partition must expire the lease");
        assert!(
            expired_at > 3.0 && expired_at < 7.0,
            "expired at {expired_at}"
        );
        assert!(recovered, "heartbeats must refresh the lease after healing");
    }

    #[test]
    fn window_bounds_the_reorder_buffer() {
        let cfg = EndpointConfig {
            window: 4,
            ..Default::default()
        };
        let mut b: Ep = Endpoint::new(cfg, LeaseConfig::default(), 2, 0.0);
        // seq 6 is beyond next_expected(1) + window(4): discarded
        assert!(b
            .handle(
                0.1,
                Frame::Data {
                    seq: 6,
                    payload: 60
                }
            )
            .is_empty());
        assert_eq!(b.stats().out_of_window_discarded, 1);
        // in-window out-of-order frames buffer and flush in order
        assert!(b.handle(0.2, Frame::Data { seq: 2, payload: 2 }).is_empty());
        let got = b.handle(0.3, Frame::Data { seq: 1, payload: 1 });
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn next_due_covers_retransmit_heartbeat_and_pending_ack() {
        let mut a: Ep = Endpoint::new(EndpointConfig::default(), LeaseConfig::default(), 1, 0.0);
        // quiet endpoint: only the heartbeat slot is due
        assert_eq!(a.next_due(0.0), 0.5);
        // an unsent payload is due immediately (first transmission slot)
        a.send(0.2, 7);
        assert_eq!(a.next_due(0.2), 0.2);
        let frames = a.tick(0.2);
        assert!(matches!(frames[0], Frame::Data { seq: 1, .. }));
        // after emission, next_due is the backed-off retransmission slot,
        // which tick(now) at that time honours
        let due = a.next_due(0.3);
        assert!(
            due > 0.3,
            "retransmit slot must be in the future, got {due}"
        );
        assert!(
            a.tick(due - 1e-9).is_empty() || due >= 0.5,
            "nothing due before the slot"
        );
        // a received data frame makes an ack due no later than right now
        let _ = a.handle(1.0, Frame::Data { seq: 1, payload: 9 });
        assert!(a.next_due(1.0) <= 1.0);
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let cfg = EndpointConfig {
            jitter_frac: 0.0,
            ..Default::default()
        };
        let mut a: Ep = Endpoint::new(cfg, LeaseConfig::default(), 1, 0.0);
        a.send(0.0, 9);
        let mut emissions = Vec::new();
        let mut t = 0.0;
        while emissions.len() < 5 && t < 60.0 {
            for f in a.tick(t) {
                if matches!(f, Frame::Data { .. }) {
                    emissions.push(t);
                }
            }
            t += 0.05;
        }
        assert_eq!(emissions.len(), 5);
        let gaps: Vec<f64> = emissions.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps[1] > gaps[0], "backoff must grow: {gaps:?}");
        assert!(
            gaps.iter().all(|g| *g <= 3.2 + 0.1),
            "capped at max: {gaps:?}"
        );
    }
}
